"""Tests for the initial-weight decay schedule (Algorithm 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import InitialWeightDecay


class TestInitialWeightDecay:
    def test_paper_defaults(self):
        decay = InitialWeightDecay()
        assert decay.decay == pytest.approx(0.9)
        assert decay.zero_after == 1000

    def test_multiplier_at_zero_is_one(self):
        assert InitialWeightDecay().multiplier(0) == 1.0

    def test_multiplier_decays_geometrically(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=1000)
        assert decay.multiplier(1) == pytest.approx(0.9)
        assert decay.multiplier(10) == pytest.approx(0.9 ** 10)

    def test_hard_zero_at_cutoff(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=1000)
        assert decay.multiplier(999) > 0.0
        assert decay.multiplier(1000) == 0.0
        assert decay.multiplier(5000) == 0.0

    def test_is_zero(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=100)
        assert not decay.is_zero(99)
        assert decay.is_zero(100)

    def test_disabled_decay_never_zero(self):
        decay = InitialWeightDecay(decay=1.0, zero_after=None)
        assert not decay.enabled
        assert decay.multiplier(10**6) == 1.0
        assert not decay.is_zero(10**6)

    def test_auto_cutoff_from_fp32_underflow(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=None)
        # 0.9^t underflows FP32 subnormals near t ~ 980.
        assert 900 < decay.zero_after < 1100

    def test_paper_cutoff_is_near_fp32_underflow(self):
        """The paper's 1,000-iteration flush is where FP32 runs out."""
        auto = InitialWeightDecay(decay=0.9, zero_after=None)
        assert abs(auto.zero_after - 1000) < 100

    def test_rejects_bad_decay(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                InitialWeightDecay(decay=bad)

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            InitialWeightDecay().multiplier(-1)

    def test_rejects_negative_cutoff(self):
        with pytest.raises(ValueError):
            InitialWeightDecay(zero_after=-5)

    @given(
        lam=st.floats(0.5, 0.999),
        t=st.integers(0, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotonically_nonincreasing(self, lam, t):
        decay = InitialWeightDecay(decay=lam, zero_after=400)
        assert decay.multiplier(t) >= decay.multiplier(t + 1)

    @given(lam=st.floats(0.5, 0.99))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_one(self, lam):
        decay = InitialWeightDecay(decay=lam, zero_after=None)
        for t in (0, 1, 10, 100):
            assert 0.0 <= decay.multiplier(t) <= 1.0
