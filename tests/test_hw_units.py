"""Tests for the hardware unit models: PRNG/WR, QE, config, area,
interconnect."""

import numpy as np
import pytest

from repro.core.decay import InitialWeightDecay
from repro.hw.area import AreaModel
from repro.hw.config import (
    ArchConfig,
    BASELINE_16x16,
    PROCRUSTES_16x16,
    PROCRUSTES_32x32,
)
from repro.hw.interconnect import traffic_pattern
from repro.hw.prng import WeightRecomputeUnit, xorshift32, xorshift32_stream
from repro.hw.qe_unit import QuantileEngine


class TestXorshift:
    def test_known_first_step(self):
        # x=1: x^=x<<13 -> 8193; ^= >>17 -> 8193; ^= <<5 -> 270369.
        assert int(xorshift32(1)[0]) == 270369

    def test_zero_state_remapped(self):
        assert int(xorshift32(0)[0]) != 0

    def test_stream_deterministic(self):
        a = xorshift32_stream(123, 50)
        b = xorshift32_stream(123, 50)
        np.testing.assert_array_equal(a, b)

    def test_stream_full_period_no_short_cycle(self):
        values = xorshift32_stream(7, 10_000)
        assert len(np.unique(values)) == 10_000

    def test_vectorized_matches_scalar(self):
        states = np.array([1, 2, 3], dtype=np.uint32)
        out = xorshift32(states)
        for i, s in enumerate([1, 2, 3]):
            assert out[i] == xorshift32(s)[0]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            xorshift32_stream(1, -1)


class TestWeightRecomputeUnit:
    def test_stateless_same_index_same_value(self):
        wr = WeightRecomputeUnit(seed=5, sigma=0.1)
        a = wr.initial_weights(np.array([7, 9, 7]))
        assert a[0] == a[2]

    def test_different_seeds_differ(self):
        idx = np.arange(100)
        a = WeightRecomputeUnit(seed=1, sigma=0.1).initial_weights(idx)
        b = WeightRecomputeUnit(seed=2, sigma=0.1).initial_weights(idx)
        assert not np.array_equal(a, b)

    def test_approximately_gaussian(self):
        wr = WeightRecomputeUnit(seed=3, sigma=1.0)
        values = wr.raw_gaussian(np.arange(200_000))
        assert abs(values.mean()) < 0.02
        assert values.std() == pytest.approx(1.0, abs=0.03)
        # Irwin-Hall(3) is bounded: |z| <= 3 after normalization.
        assert np.abs(values).max() <= 3.001
        # Roughly normal tails: ~68% within one sigma.
        within = (np.abs(values) < 1.0).mean()
        assert 0.6 < within < 0.75

    def test_sigma_scales_output(self):
        idx = np.arange(1000)
        small = WeightRecomputeUnit(seed=1, sigma=0.01).initial_weights(idx)
        large = WeightRecomputeUnit(seed=1, sigma=0.1).initial_weights(idx)
        np.testing.assert_allclose(large, small * 10.0, rtol=1e-4)

    def test_decay_schedule_folds_into_scaling(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=100)
        wr = WeightRecomputeUnit(seed=1, sigma=0.5, decay=decay)
        assert wr.scaling_factor(0) == pytest.approx(0.5)
        assert wr.scaling_factor(10) == pytest.approx(0.5 * 0.9**10)
        assert wr.scaling_factor(100) == 0.0

    def test_materialize_tracked_vs_pruned(self):
        decay = InitialWeightDecay(decay=0.9, zero_after=10)
        wr = WeightRecomputeUnit(seed=1, sigma=0.1, decay=decay)
        idx = np.arange(4)
        accum = np.array([1.0, 2.0, 3.0, 4.0])
        tracked = np.array([True, False, True, False])
        out = wr.materialize(idx, accum, tracked, iteration=20)
        # After the flush, tracked weights are exactly their accums and
        # pruned weights are exactly zero.
        np.testing.assert_allclose(out, [1.0, 0.0, 3.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightRecomputeUnit(seed=1, sigma=-1.0)
        with pytest.raises(ValueError):
            WeightRecomputeUnit(seed=1, sigma=1.0, rounds=0)


class TestQuantileEngine:
    def test_filters_against_threshold(self, rng):
        qe = QuantileEngine(sparsity_factor=4.0)
        for _ in range(50):
            qe.filter(rng.normal(size=2048))
        keep = qe.filter(rng.normal(size=2048))
        fraction = keep.mean()
        assert 0.1 < fraction < 0.5  # target 0.25

    def test_stats_accumulate(self, rng):
        qe = QuantileEngine(sparsity_factor=4.0)
        qe.filter(rng.normal(size=100))
        qe.filter(rng.normal(size=100))
        assert qe.stats.observed == 200
        assert qe.stats.retained + qe.stats.discarded == 200

    def test_cycle_throughput(self, rng):
        qe = QuantileEngine(sparsity_factor=4.0, updates_per_cycle=4)
        qe.filter(rng.normal(size=4000))
        assert qe.stats.cycles == 1000

    def test_keeps_up_with_paper_peak(self):
        qe = QuantileEngine(sparsity_factor=7.5)
        assert qe.keeps_up_with(4.0)
        assert not qe.keeps_up_with(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileEngine(4.0, updates_per_cycle=0)


class TestArchConfig:
    def test_baseline_matches_table1(self):
        assert BASELINE_16x16.n_pes == 256
        assert BASELINE_16x16.glb_bytes == 128 * 1024
        assert BASELINE_16x16.rf_bytes_per_pe == 1024
        assert BASELINE_16x16.word_bytes == 4
        assert not BASELINE_16x16.sparse_training_support

    def test_procrustes_adds_units_only(self):
        assert PROCRUSTES_16x16.n_pes == BASELINE_16x16.n_pes
        assert PROCRUSTES_16x16.sparse_training_support

    def test_scaled_quadruples_pes_doubles_glb(self):
        assert PROCRUSTES_32x32.n_pes == 1024
        assert PROCRUSTES_32x32.glb_bytes == 2 * PROCRUSTES_16x16.glb_bytes

    def test_rf_words(self):
        assert BASELINE_16x16.rf_words == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchConfig(pe_rows=0)
        with pytest.raises(ValueError):
            PROCRUSTES_16x16.scaled(0)


class TestAreaModel:
    def test_overheads_match_paper(self):
        model = AreaModel(n_pes=256)
        assert model.area_overhead() == pytest.approx(0.14, abs=0.01)
        assert model.power_overhead() == pytest.approx(0.11, abs=0.01)

    def test_per_pe_components_multiply(self):
        model = AreaModel(n_pes=256)
        baseline_area = model.total_area_um2(include_procrustes=False)
        expected = (18_875.72 + 198_004.71) * 256 + 17_109_596.5
        assert baseline_area == pytest.approx(expected)

    def test_rows_cover_all_components(self):
        rows = AreaModel().rows()
        names = {r["component"] for r in rows}
        assert {"FP32 MAC", "PRNG", "Quantile Engine", "Load Balancer"} <= names

    def test_prng_dwarfed_by_mac(self):
        """The paper's point: WR area 'pales in comparison' to the MAC."""
        rows = {r["component"]: r for r in AreaModel().rows()}
        assert (
            float(rows["PRNG"]["area_um2"])
            < 0.15 * float(rows["FP32 MAC"]["area_um2"])
        )


class TestInterconnect:
    def test_ck_needs_complex_net_for_balancing(self):
        assert traffic_pattern("CK", "fw").needs_complex_interconnect_for_balancing

    def test_kn_balances_on_simple_fabric(self):
        for phase in ("fw", "bw", "wu"):
            assert not traffic_pattern(
                "KN", phase
            ).needs_complex_interconnect_for_balancing

    def test_kn_flow_roles_match_figure11(self):
        pattern = traffic_pattern("KN", "fw")
        assert pattern.flow_for("weights").pattern == "horizontal"
        assert pattern.flow_for("iacts").pattern == "vertical"
        assert pattern.flow_for("psums").pattern == "unicast"

    def test_ck_flow_roles_match_figure3(self):
        pattern = traffic_pattern("CK", "fw")
        assert pattern.flow_for("iacts").pattern == "horizontal"
        assert pattern.flow_for("psums").pattern == "vertical"
        assert pattern.flow_for("weights").pattern == "unicast"

    def test_pq_wu_unbalanceable(self):
        assert traffic_pattern("PQ", "wu").needs_complex_interconnect_for_balancing
        assert not traffic_pattern("PQ", "fw").needs_complex_interconnect_for_balancing

    def test_unknown_inputs_raise(self):
        with pytest.raises(ValueError):
            traffic_pattern("XY", "fw")
        with pytest.raises(ValueError):
            traffic_pattern("KN", "train")
        with pytest.raises(KeyError):
            traffic_pattern("KN", "fw").flow_for("magic")
