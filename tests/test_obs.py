"""Unit tests for the :mod:`repro.obs` telemetry layer.

Covers tracing (span nesting, exception capture, manual lifecycles,
JSONL flush/load, Chrome-trace export and validation), the metrics
registry (snapshot/diff/merge — the cross-process delta protocol),
structured logging (logger prefixing, idempotent configuration,
``log_event`` formatting), and the :class:`RuntimeConfig` knobs that
switch it all on (``trace`` / ``metrics`` / ``log_level`` and their
``REPRO_*`` variables).
"""

import json
import logging
from io import StringIO

import pytest

from repro.api.config import RuntimeConfig, config_scope
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.logs import configure_logging, get_logger, log_event
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# tracing: spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nested_spans_link_parent_and_time_monotonically(self):
        with _trace.capture() as buf:
            with _trace.span("outer", kind="test"):
                with _trace.span("inner"):
                    pass
        spans = buf.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"kind": "test"}
        assert 0 <= inner["dur"] <= outer["dur"]
        assert outer["status"] == "ok"

    def test_exception_recorded_and_reraised(self):
        with _trace.capture() as buf:
            with pytest.raises(ValueError, match="boom"):
                with _trace.span("failing"):
                    raise ValueError("boom")
        (record,) = buf.spans()
        assert record["status"] == "error"
        assert record["error"] == "ValueError: boom"

    def test_events_and_attributes_attach_to_open_span(self):
        with _trace.capture() as buf:
            with _trace.span("job") as sp:
                sp.add_event("retry", attempt=2)
                _trace.add_event("requeued")
                sp.set_attribute("points", 7)
        (record,) = buf.spans()
        names = [e["name"] for e in record["events"]]
        assert names == ["retry", "requeued"]
        assert record["events"][0]["attrs"] == {"attempt": 2}
        assert record["attrs"]["points"] == 7

    def test_start_span_skips_the_stack(self):
        # Event-loop style: the manual span stays open across other
        # stack-managed spans without capturing them as children.
        with _trace.capture() as buf:
            manual = _trace.start_span("serve.job", target="fig9")
            with _trace.span("stacked"):
                assert _trace.current_span().name == "stacked"
            manual.finish()
        stacked, job = buf.spans()
        assert stacked["parent_id"] is None
        assert job["name"] == "serve.job"

    def test_manual_span_writes_to_explicit_buffer_when_disabled(self):
        # No config scope, tracing off: manual_span still records into
        # the buffer it was handed (the serve server owns its own).
        assert not _trace.tracing_enabled()
        buf = _trace.TraceBuffer()
        sp = _trace.manual_span("serve.job", buf, digest="abc")
        sp.finish(error="failed")
        (record,) = buf.spans()
        assert record["status"] == "error"
        assert record["error"] == "failed"

    def test_disabled_span_is_shared_noop_singleton(self):
        assert not _trace.tracing_enabled()
        a = _trace.span("x")
        b = _trace.span("y", attr=1)
        assert a is b
        with a:
            a.add_event("ignored")
            a.set_attribute("k", "v")
        assert _trace.start_span("z") is a
        assert len(_trace.get_buffer()) == 0

    def test_traced_decorator_names_default_to_qualname(self):
        @_trace.traced()
        def sample():
            return 42

        @_trace.traced("custom.name", tag="t")
        def other():
            return 1

        with _trace.capture() as buf:
            assert sample() == 42
            assert other() == 1
        names = [s["name"] for s in buf.spans()]
        assert names[1] == "custom.name"
        assert "sample" in names[0]

    def test_capture_restores_outer_buffer_and_state(self):
        outer = _trace.get_buffer()
        with _trace.capture() as buf:
            assert _trace.tracing_enabled()
            assert _trace.get_buffer() is buf
        assert _trace.get_buffer() is outer
        assert not _trace.tracing_enabled()


# ----------------------------------------------------------------------
# tracing: export / import
# ----------------------------------------------------------------------
class TestTraceExport:
    def make_spans(self):
        with _trace.capture() as buf:
            with _trace.span("outer", network="vgg-s") as sp:
                sp.add_event("checkpoint", step=1)
                with _trace.span("inner"):
                    pass
        return buf

    def test_flush_and_load_roundtrip(self, tmp_path):
        with _trace.capture(trace_dir=str(tmp_path)):
            with _trace.span("a"):
                pass
            first = _trace.flush()
            with _trace.span("b"):
                pass
            second = _trace.flush()
            # Incremental: the second flush appends only the new span
            # to the same per-pid file.
            assert first == second
        loaded = _trace.load_spans(tmp_path)
        assert [s["name"] for s in loaded] == ["a", "b"]
        # Loading the file directly matches loading the directory.
        assert _trace.load_spans(first) == loaded

    def test_flush_without_trace_dir_is_none(self):
        with _trace.capture():
            with _trace.span("a"):
                pass
            assert _trace.flush() is None

    def test_chrome_trace_events(self):
        buf = self.make_spans()
        payload = _trace.chrome_trace(buf.spans())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert [e["name"] for e in instants] == ["checkpoint"]
        outer = next(e for e in complete if e["name"] == "outer")
        inner = next(e for e in complete if e["name"] == "inner")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["network"] == "vgg-s"

    def test_write_chrome_trace_is_loadable_and_valid(self, tmp_path):
        buf = self.make_spans()
        path = _trace.write_chrome_trace(
            tmp_path / "trace.json", buf.spans()
        )
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert (
            _trace.validate_chrome_trace(payload, require_nesting=True)
            == []
        )

    def test_validate_rejects_malformed_payloads(self):
        assert _trace.validate_chrome_trace([]) != []
        assert _trace.validate_chrome_trace({"traceEvents": []}) != []
        missing_dur = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0, "pid": 1, "tid": 1}
            ]
        }
        assert any(
            "dur" in p for p in _trace.validate_chrome_trace(missing_dur)
        )
        orphan = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "a",
                    "ts": 0,
                    "dur": 1,
                    "pid": 1,
                    "tid": 1,
                    "args": {"span_id": "1-1", "parent_id": "1-999"},
                }
            ]
        }
        assert any(
            "missing parent" in p
            for p in _trace.validate_chrome_trace(orphan)
        )

    def test_validate_flags_child_escaping_parent(self):
        payload = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "parent",
                    "ts": 0.0,
                    "dur": 100.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {"span_id": "1-1"},
                },
                {
                    "ph": "X",
                    "name": "child",
                    "ts": 50.0,
                    "dur": 500.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {"span_id": "1-2", "parent_id": "1-1"},
                },
            ]
        }
        problems = _trace.validate_chrome_trace(payload)
        assert any("not contained" in p for p in problems)

    def test_require_nesting_flags_flat_traces(self):
        flat = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "only",
                    "ts": 0.0,
                    "dur": 1.0,
                    "pid": 1,
                    "tid": 1,
                    "args": {"span_id": "1-1"},
                }
            ]
        }
        assert _trace.validate_chrome_trace(flat) == []
        problems = _trace.validate_chrome_trace(flat, require_nesting=True)
        assert problems == ["no nested spans (expected real hierarchy)"]


# ----------------------------------------------------------------------
# tracing: config wiring
# ----------------------------------------------------------------------
class TestTraceConfig:
    def test_config_scope_enables_and_restores(self, tmp_path):
        assert not _trace.tracing_enabled()
        with config_scope(trace=True, trace_dir=str(tmp_path)):
            assert _trace.tracing_enabled()
            with _trace.span("scoped"):
                pass
        assert not _trace.tracing_enabled()
        # The process buffer is cumulative state: the span recorded
        # inside the scope survives scope exit.
        names = [s["name"] for s in _trace.get_buffer().spans()]
        assert "scoped" in names
        _trace.get_buffer().clear()

    def test_span_outside_any_scope_records_nothing(self):
        before = len(_trace.get_buffer())
        with _trace.span("ignored"):
            pass
        assert len(_trace.get_buffer()) == before


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("depth", 4)
        reg.set_gauge("depth", 2)
        reg.observe("wall_s", 1.0)
        reg.observe("wall_s", 3.0)
        payload = reg.as_dict()
        assert payload["counters"] == {"hits": 3}
        assert payload["gauges"] == {"depth": 2.0}
        assert payload["histograms"]["wall_s"] == {
            "count": 2,
            "total": 4.0,
            "min": 1.0,
            "max": 3.0,
        }

    def test_empty_registry_serializes_as_empty_dict(self):
        assert MetricsRegistry().as_dict() == {}

    def test_from_dict_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 2.0)
        clone = MetricsRegistry.from_dict(reg.as_dict())
        assert clone.as_dict() == reg.as_dict()

    def test_diff_subtracts_counts_and_keeps_current_gauges(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.observe("wall_s", 1.0)
        before = reg.snapshot()
        reg.inc("hits", 3)
        reg.inc("misses")
        reg.set_gauge("depth", 9)
        reg.observe("wall_s", 5.0)
        delta = reg.diff(before).as_dict()
        # Unchanged counters drop out entirely.
        assert delta["counters"] == {"hits": 3, "misses": 1}
        assert delta["gauges"] == {"depth": 9.0}
        assert delta["histograms"]["wall_s"]["count"] == 1
        assert delta["histograms"]["wall_s"]["total"] == 5.0

    def test_diff_of_nothing_is_empty(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        assert reg.diff(reg.snapshot()).as_dict() == {}

    def test_merge_folds_worker_deltas(self):
        parent = MetricsRegistry()
        parent.inc("points", 2)
        parent.observe("wall_s", 2.0)
        delta = {
            "counters": {"points": 3},
            "gauges": {"depth": 1.0},
            "histograms": {
                "wall_s": {
                    "count": 1,
                    "total": 7.0,
                    "min": 7.0,
                    "max": 7.0,
                }
            },
        }
        parent.merge(delta)  # wire-format mapping
        parent.merge(MetricsRegistry.from_dict(delta))  # registry form
        assert parent.counters["points"] == 8
        assert parent.histograms["wall_s"] == {
            "count": 3,
            "total": 16.0,
            "min": 2.0,
            "max": 7.0,
        }


class TestMetricsModule:
    def test_disabled_module_calls_are_noops(self):
        base = _metrics.registry().as_dict()
        assert not _metrics.metrics_enabled()
        _metrics.inc("ignored")
        _metrics.observe("ignored", 1.0)
        _metrics.set_gauge("ignored", 1.0)
        assert _metrics.registry().as_dict() == base
        assert _metrics.snapshot() is None
        assert _metrics.delta_dict(None) is None

    def test_scope_enables_and_registry_survives_exit(self):
        with config_scope(metrics=True):
            assert _metrics.metrics_enabled()
            before = _metrics.snapshot()
            assert before is not None
            _metrics.inc("obs.test.counter", 2)
            delta = _metrics.delta_dict(before)
            assert delta == {"counters": {"obs.test.counter": 2}}
        assert not _metrics.metrics_enabled()
        # Cumulative process state: the count survives the scope.
        assert _metrics.registry().counters["obs.test.counter"] >= 2
        with _metrics.registry()._lock:
            _metrics.registry().counters.pop("obs.test.counter", None)

    def test_empty_delta_ships_as_none(self):
        with config_scope(metrics=True):
            before = _metrics.snapshot()
            assert _metrics.delta_dict(before) is None


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
class TestLogs:
    def teardown_method(self):
        # Drop any handler a test installed.
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_get_logger_prefixes_under_repro(self):
        assert (
            get_logger("sweep.cache")
            is get_logger("repro.sweep.cache")
        )
        assert get_logger("repro").name == "repro"
        assert get_logger("serve").name == "repro.serve"

    def test_configure_logging_is_idempotent(self):
        stream = StringIO()
        root = configure_logging(level="INFO", stream=stream)
        configure_logging(level="DEBUG", stream=stream)
        owned = [
            h
            for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(owned) == 1
        assert root.level == logging.DEBUG

    def test_configure_logging_without_level_stays_silent(self):
        with config_scope(log_level=None):
            assert configure_logging() is None

    def test_configure_logging_reads_config_level(self):
        stream = StringIO()
        root = configure_logging(
            config=RuntimeConfig(log_level="warning"), stream=stream
        )
        assert root.level == logging.WARNING

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="LOUD")

    def test_log_event_formats_sorted_fields(self):
        stream = StringIO()
        configure_logging(level="INFO", stream=stream)
        logger = get_logger("obs.test")
        log_event(
            logger, "cache.quarantined", level=logging.WARNING,
            path="/tmp/x", reason="corrupt",
        )
        line = stream.getvalue()
        assert "cache.quarantined path=/tmp/x reason=corrupt" in line
        assert "repro.obs.test" in line

    def test_log_event_below_level_emits_nothing(self):
        stream = StringIO()
        configure_logging(level="ERROR", stream=stream)
        log_event(
            get_logger("obs.test"), "noise", level=logging.INFO, k=1
        )
        assert stream.getvalue() == ""


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------
class TestObsConfig:
    def test_defaults_are_off(self):
        config = RuntimeConfig.from_env(environ={})
        assert config.trace is False
        assert config.metrics is False
        assert config.trace_dir is None
        assert config.log_level is None

    def test_env_parsing(self):
        config = RuntimeConfig.from_env(
            environ={
                "REPRO_TRACE": "1",
                "REPRO_METRICS": "1",
                "REPRO_TRACE_DIR": "/tmp/traces",
                "REPRO_LOG_LEVEL": "debug",
            }
        )
        assert config.trace is True
        assert config.metrics is True
        assert config.trace_dir == "/tmp/traces"
        assert config.log_level == "debug"

    def test_env_zero_means_off(self):
        config = RuntimeConfig.from_env(
            environ={"REPRO_TRACE": "0", "REPRO_METRICS": "0"}
        )
        assert config.trace is False
        assert config.metrics is False

    def test_effective_trace_dir_falls_back_to_cache_root(self):
        explicit = RuntimeConfig(trace_dir="/tmp/t")
        assert explicit.effective_trace_dir() == "/tmp/t"
        rooted = RuntimeConfig(cache_root="/tmp/root")
        assert rooted.effective_trace_dir() == "/tmp/root/traces"
        assert RuntimeConfig().effective_trace_dir() is None

    def test_bad_log_level_rejected_at_construction(self):
        with pytest.raises(ValueError, match="log_level"):
            RuntimeConfig(log_level="LOUD")
