"""Tests for the behavioural CSB training engine.

These are the fidelity proofs for Section IV-B: weights held only in
CSB form serve all three training phases, with the backward pass going
through the in-place 180-degree rotation and the weight update
producing QE-filtered compressed gradients.
"""

import numpy as np
import pytest

from repro.hw.config import ArchConfig
from repro.hw.engine import SparseTrainingEngine
from repro.hw.qe_unit import QuantileEngine
from repro.nn import functional as F
from repro.sparse.csb import CSBTensor


@pytest.fixture
def arch():
    return ArchConfig(name="t", pe_rows=4, pe_cols=4)


def sparse_weights(rng, shape=(8, 3, 3, 3), density=0.3):
    dense = rng.normal(size=shape)
    dense[rng.uniform(size=shape) > density] = 0.0
    return dense


class TestForward:
    def test_matches_dense_conv(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        engine = SparseTrainingEngine(arch)
        result = engine.forward(x, csb, padding=1)
        ref, _ = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(result.tensor, ref)

    def test_cycles_scale_with_sparsity(self, arch, rng):
        x = rng.normal(size=(4, 3, 8, 8))
        engine = SparseTrainingEngine(arch)
        dense = CSBTensor.from_dense(rng.normal(size=(8, 3, 3, 3)))
        sparse = CSBTensor.from_dense(sparse_weights(rng, density=0.2))
        assert (
            engine.forward(x, sparse, padding=1).cycles
            < engine.forward(x, dense, padding=1).cycles
        )

    def test_macs_count_nnz_only(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        result = SparseTrainingEngine(arch).forward(x, csb, padding=1)
        assert result.macs == np.count_nonzero(w) * 64 * 4


class TestBackward:
    def test_matches_autograd_dx(self, arch, rng):
        """The CSB rotation produces exactly the backward operator."""
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        y, cache = F.conv2d(x, w, padding=1)
        dy = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dy, cache)
        result = SparseTrainingEngine(arch).backward(dy, csb, padding=1)
        np.testing.assert_allclose(result.tensor, ref_dx, atol=1e-12)

    @pytest.mark.parametrize("padding", [0, 1, 2])
    def test_padding_variants(self, arch, rng, padding):
        w = sparse_weights(rng, shape=(4, 2, 3, 3))
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(2, 2, 9, 9))
        y, cache = F.conv2d(x, w, padding=padding)
        dy = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dy, cache)
        result = SparseTrainingEngine(arch).backward(dy, csb, padding=padding)
        np.testing.assert_allclose(result.tensor, ref_dx, atol=1e-12)

    def test_5x5_kernels(self, arch, rng):
        """Different kernel sizes, per-layer block shapes (IV-B)."""
        w = sparse_weights(rng, shape=(4, 2, 5, 5))
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(2, 2, 10, 10))
        y, cache = F.conv2d(x, w, padding=2)
        dy = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dy, cache)
        result = SparseTrainingEngine(arch).backward(dy, csb, padding=2)
        np.testing.assert_allclose(result.tensor, ref_dx, atol=1e-12)


class TestWeightUpdate:
    def test_matches_autograd_dweight(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        y, cache = F.conv2d(x, w, padding=1)
        dy = rng.normal(size=y.shape)
        _, ref_dw, _ = F.conv2d_backward(dy, cache)
        result, keep, _ = SparseTrainingEngine(arch).weight_update(
            x, dy, csb, padding=1
        )
        np.testing.assert_allclose(result.tensor, ref_dw, atol=1e-10)
        assert keep.all()  # no QE attached: everything written back

    def test_qe_filters_gradients(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        dy = rng.normal(size=(4, 8, 8, 8))
        qe = QuantileEngine(sparsity_factor=4.0)
        # Warm the threshold so the filter actually bites.
        for _ in range(40):
            qe.filter(rng.normal(size=4096))
        engine = SparseTrainingEngine(arch, qe=qe)
        result, keep, surviving = engine.weight_update(x, dy, csb, padding=1)
        assert 0 < keep.sum() < keep.size
        # The compressed write-back holds exactly the survivors.
        np.testing.assert_allclose(
            surviving.to_dense(), np.where(keep, result.tensor, 0.0)
        )

    def test_wu_cycles_follow_activation_sparsity(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        dy = rng.normal(size=(4, 8, 8, 8))
        dense_x = rng.normal(size=(4, 3, 8, 8))
        sparse_x = dense_x * (rng.uniform(size=dense_x.shape) < 0.3)
        engine = SparseTrainingEngine(arch)
        dense_cycles = engine.weight_update(dense_x, dy, csb, padding=1)[0].cycles
        sparse_cycles = engine.weight_update(sparse_x, dy, csb, padding=1)[0].cycles
        assert sparse_cycles < 0.6 * dense_cycles


class TestTrainStep:
    def test_all_phases_run(self, arch, rng):
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        dy = rng.normal(size=(4, 8, 8, 8))
        phases = SparseTrainingEngine(arch).train_step(x, dy, csb, padding=1)
        assert set(phases) == {"fw", "bw", "wu"}
        for result in phases.values():
            assert result.cycles > 0
            assert np.isfinite(result.tensor).all()

    def test_fw_bw_same_weight_macs(self, arch, rng):
        """fw and bw execute the same sparse MAC volume when the
        spatial extents match (stride 1, same padding)."""
        w = sparse_weights(rng)
        csb = CSBTensor.from_dense(w)
        x = rng.normal(size=(4, 3, 8, 8))
        dy = rng.normal(size=(4, 8, 8, 8))
        phases = SparseTrainingEngine(arch).train_step(x, dy, csb, padding=1)
        assert phases["fw"].macs == pytest.approx(phases["bw"].macs, rel=0.2)
