"""Tests for the compressed-sparse-block format (Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.blocks import BlockGrid, conv_grid, fc_grid
from repro.sparse.csb import CSBTensor


def random_sparse(rng, shape, density=0.25):
    dense = rng.normal(size=shape)
    dense[rng.uniform(size=shape) > density] = 0.0
    return dense


class TestBlockGrid:
    def test_conv_grid_shape(self):
        grid = conv_grid((8, 4, 3, 3))
        assert grid.grid_shape == (8, 4)
        assert grid.block_shape == (3, 3)
        assert grid.n_blocks == 32
        assert grid.block_size == 9

    def test_fc_grid_padding(self):
        grid = fc_grid((10, 14), block_size=8)
        assert grid.grid_shape == (2, 2)

    def test_conv_blocks_roundtrip(self, rng):
        grid = conv_grid((4, 3, 3, 3))
        dense = rng.normal(size=(4, 3, 3, 3))
        np.testing.assert_allclose(
            grid.from_blocks(grid.to_blocks(dense)), dense
        )

    def test_fc_blocks_roundtrip_with_padding(self, rng):
        grid = fc_grid((10, 13), block_size=4)
        dense = rng.normal(size=(10, 13))
        np.testing.assert_allclose(
            grid.from_blocks(grid.to_blocks(dense)), dense
        )

    def test_block_index(self):
        grid = conv_grid((4, 3, 3, 3))
        assert grid.block_index(0, 0) == 0
        assert grid.block_index(1, 0) == 3
        with pytest.raises(ValueError):
            grid.block_index(1)

    def test_shape_mismatch_raises(self, rng):
        grid = conv_grid((4, 3, 3, 3))
        with pytest.raises(ValueError):
            grid.to_blocks(rng.normal(size=(4, 3, 5, 5)))

    def test_fc_grid_validation(self):
        with pytest.raises(ValueError):
            fc_grid((4, 4), block_size=0)


class TestCSBTensor:
    def test_conv_roundtrip(self, rng):
        dense = random_sparse(rng, (6, 4, 3, 3))
        csb = CSBTensor.from_dense(dense)
        np.testing.assert_allclose(csb.to_dense(), dense)

    def test_fc_roundtrip(self, rng):
        dense = random_sparse(rng, (20, 30))
        csb = CSBTensor.from_dense(dense, fc_block_size=8)
        np.testing.assert_allclose(csb.to_dense(), dense)

    def test_nnz_and_density(self, rng):
        dense = random_sparse(rng, (4, 4, 3, 3), density=0.3)
        csb = CSBTensor.from_dense(dense)
        assert csb.nnz == np.count_nonzero(dense)
        assert csb.density == pytest.approx(
            np.count_nonzero(dense) / dense.size
        )

    def test_block_nnz_from_pointer_differences(self, rng):
        """Section IV-B: tile density via pointer arithmetic alone."""
        dense = random_sparse(rng, (5, 3, 3, 3))
        csb = CSBTensor.from_dense(dense)
        per_kernel = np.count_nonzero(
            dense.reshape(15, 9), axis=1
        )
        np.testing.assert_array_equal(csb.block_nnz(), per_kernel)

    def test_gather_block(self, rng):
        dense = random_sparse(rng, (2, 2, 3, 3))
        csb = CSBTensor.from_dense(dense)
        np.testing.assert_allclose(csb.gather_block(3), dense[1, 1])

    def test_rotation_matches_dense_rotation(self, rng):
        """Kernels rotate 180 degrees for the backward pass."""
        dense = random_sparse(rng, (4, 3, 3, 3))
        rotated = CSBTensor.from_dense(dense).rotate_180().to_dense()
        np.testing.assert_allclose(rotated, dense[:, :, ::-1, ::-1])

    def test_rotation_is_value_reversal_per_block(self, rng):
        """The packed values simply reverse — no decompression needed."""
        dense = random_sparse(rng, (2, 2, 3, 3))
        csb = CSBTensor.from_dense(dense)
        rotated = csb.rotate_180()
        for b in range(csb.grid.n_blocks):
            np.testing.assert_allclose(
                rotated.block_values(b), csb.block_values(b)[::-1]
            )

    def test_rotation_rejected_for_fc(self, rng):
        csb = CSBTensor.from_dense(random_sparse(rng, (8, 8)))
        with pytest.raises(ValueError):
            csb.rotate_180()

    def test_transpose_matches_dense_transpose(self, rng):
        dense = random_sparse(rng, (12, 20))
        transposed = CSBTensor.from_dense(
            dense, fc_block_size=4
        ).transpose().to_dense()
        np.testing.assert_allclose(transposed, dense.T)

    def test_transpose_rejected_for_conv(self, rng):
        csb = CSBTensor.from_dense(random_sparse(rng, (2, 2, 3, 3)))
        with pytest.raises(ValueError):
            csb.transpose()

    def test_double_transforms_are_identity(self, rng):
        conv = CSBTensor.from_dense(random_sparse(rng, (3, 2, 3, 3)))
        np.testing.assert_allclose(
            conv.rotate_180().rotate_180().to_dense(), conv.to_dense()
        )
        fc = CSBTensor.from_dense(random_sparse(rng, (9, 7)), fc_block_size=4)
        np.testing.assert_allclose(
            fc.transpose().transpose().to_dense(), fc.to_dense()
        )

    def test_storage_accounting(self, rng):
        dense = random_sparse(rng, (4, 4, 3, 3), density=0.25)
        csb = CSBTensor.from_dense(dense)
        bits = csb.storage_bits()
        assert bits["values"] == csb.nnz * 32
        assert bits["masks"] == 16 * 9
        assert bits["pointers"] == 17 * 32

    def test_compression_beats_dense_when_sparse(self, rng):
        dense = random_sparse(rng, (32, 32, 3, 3), density=0.1)
        csb = CSBTensor.from_dense(dense)
        assert csb.compression_ratio() > 2.0

    def test_tile_nnz_sums_match(self, rng):
        dense = random_sparse(rng, (16, 8, 3, 3))
        csb = CSBTensor.from_dense(dense)
        tiles = csb.tile_nnz(axis=0, tile=4)
        assert tiles.shape == (4,)
        assert tiles.sum() == csb.nnz

    def test_unsupported_ndim(self, rng):
        with pytest.raises(ValueError):
            CSBTensor.from_dense(rng.normal(size=(3, 3, 3)))

    @given(
        k=st.integers(1, 6),
        c=st.integers(1, 6),
        r=st.sampled_from([1, 3, 5]),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_conv(self, k, c, r, density, seed):
        gen = np.random.default_rng(seed)
        dense = random_sparse(gen, (k, c, r, r), density=density)
        csb = CSBTensor.from_dense(dense)
        np.testing.assert_allclose(csb.to_dense(), dense)
        np.testing.assert_allclose(
            csb.rotate_180().to_dense(), dense[:, :, ::-1, ::-1]
        )

    @given(
        rows=st.integers(1, 25),
        cols=st.integers(1, 25),
        block=st.integers(1, 8),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_fc(self, rows, cols, block, density, seed):
        gen = np.random.default_rng(seed)
        dense = random_sparse(gen, (rows, cols), density=density)
        csb = CSBTensor.from_dense(dense, fc_block_size=block)
        np.testing.assert_allclose(csb.to_dense(), dense)
        np.testing.assert_allclose(csb.transpose().to_dense(), dense.T)

    def test_mask_grid_decoupling_supports_mixed_kernel_sizes(self, rng):
        """Different layers use different block sizes (Section IV-B)."""
        k3 = CSBTensor.from_dense(random_sparse(rng, (2, 2, 3, 3)))
        k5 = CSBTensor.from_dense(random_sparse(rng, (2, 2, 5, 5)))
        assert k3.grid.block_size == 9
        assert k5.grid.block_size == 25
        grid = BlockGrid(
            dense_shape=(2, 2, 5, 5),
            grid_shape=(2, 2),
            block_shape=(5, 5),
            kind="conv",
        )
        assert grid.n_blocks == 4
