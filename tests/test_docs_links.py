"""Docs integrity: every relative link in the markdown tree resolves.

Scans ``README.md``, ``docs/*.md``, and the other root-level markdown
files for inline links and checks that relative targets exist on disk
(anchors are stripped; external ``http(s)``/``mailto`` links are out
of scope for an offline test).  The CI docs job runs exactly this
module, so a renamed doc or a typo'd path fails before merge.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target), skipping images' size hints.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Markdown files whose links must resolve.
DOC_FILES = sorted(
    p.relative_to(REPO_ROOT)
    for p in [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
    if p.exists()
)


def _links(path: Path) -> list[str]:
    return _LINK.findall(path.read_text())


def test_doc_tree_present():
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names
    assert {"architecture.md", "explore.md", "figure-index.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=str)
def test_relative_links_resolve(doc: Path):
    source = REPO_ROOT / doc
    broken = []
    for target in _links(source):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (source.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc}: broken relative links {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=str)
def test_docs_mention_no_missing_paths(doc: Path):
    """Backtick'd repo paths in docs must exist on disk."""
    text = (REPO_ROOT / doc).read_text()
    pattern = r"`((?:src/repro|tests|benchmarks|examples|docs)/[\w/.-]+?)`"
    missing = [
        ref
        for ref in re.findall(pattern, text)
        if not (REPO_ROOT / ref).exists()
    ]
    assert not missing, f"{doc}: references missing paths {missing}"
