"""Tests for the layer classes and composite blocks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Concat,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Residual,
    Sequential,
)
from tests.conftest import numeric_gradient


class TestParameter:
    def test_prunable_flag(self, rng):
        p = Parameter("w", rng.normal(size=(2, 2)), prunable=True)
        assert p.prunable and p.size == 4 and p.shape == (2, 2)

    def test_zero_grad(self, rng):
        p = Parameter("w", rng.normal(size=(2,)))
        p.grad = np.ones(2)
        p.zero_grad()
        assert p.grad is None


class TestConv2dLayer:
    def test_weight_is_prunable_bias_is_not(self, rng):
        layer = Conv2d("c", 3, 8, bias=True, rng=rng)
        prunable = [p.prunable for p in layer.parameters()]
        assert prunable == [True, False]

    def test_forward_backward_roundtrip(self, rng):
        layer = Conv2d("c", 2, 4, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape
        assert layer.weight.grad.shape == layer.weight.data.shape

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2d("c", 2, 4, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 4, 6, 6)))

    def test_first_layer_skips_dx(self, rng):
        layer = Conv2d("c", 2, 4, rng=rng)
        layer.mark_first_layer()
        x = rng.normal(size=(1, 2, 4, 4))
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.size == 0
        assert layer.weight.grad is not None

    def test_group_validation(self, rng):
        with pytest.raises(ValueError):
            Conv2d("c", 3, 4, groups=2, rng=rng)


class TestCompositeLayers:
    def test_sequential_collects_parameters(self, rng):
        seq = Sequential(
            [Conv2d("c", 2, 4, rng=rng), BatchNorm2d("b", 4), ReLU()]
        )
        names = [p.name for p in seq.parameters()]
        assert names == ["c.weight", "b.gamma", "b.beta"]

    def test_sequential_backward_chains(self, rng):
        seq = Sequential(
            [Conv2d("c", 2, 4, rng=rng), ReLU(), MaxPool2d(kernel=2)]
        )
        x = rng.normal(size=(2, 2, 4, 4))
        y = seq.forward(x)
        dx = seq.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_residual_identity_gradient(self, rng):
        """d/dx of (body(x) + x) must include the skip path."""
        body = Conv2d("c", 3, 3, rng=rng)
        block = Residual(body, None, final_relu=False)
        x = rng.normal(size=(1, 3, 4, 4)) * 0.1
        dy = rng.normal(size=(1, 3, 4, 4))

        def loss():
            return float((block.forward(x) * dy).sum())

        block.forward(x)
        dx = block.backward(dy)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-6)

    def test_residual_with_projection_shortcut(self, rng):
        body = Conv2d("c", 2, 6, stride=2, rng=rng)
        shortcut = Conv2d("s", 2, 6, kernel=1, stride=2, padding=0, rng=rng)
        block = Residual(body, shortcut)
        x = rng.normal(size=(2, 2, 8, 8))
        y = block.forward(x)
        assert y.shape == (2, 6, 4, 4)
        dx = block.backward(np.ones_like(y))
        assert dx.shape == x.shape
        assert shortcut.weight.grad is not None

    def test_concat_grows_channels(self, rng):
        body = Conv2d("c", 4, 2, rng=rng)
        layer = Concat(body)
        x = rng.normal(size=(1, 4, 4, 4))
        y = layer.forward(x)
        assert y.shape == (1, 6, 4, 4)
        np.testing.assert_allclose(y[:, :4], x)

    def test_concat_gradient(self, rng):
        body = Conv2d("c", 2, 2, rng=rng)
        layer = Concat(body)
        x = rng.normal(size=(1, 2, 4, 4)) * 0.1
        dy = rng.normal(size=(1, 4, 4, 4))

        def loss():
            return float((layer.forward(x) * dy).sum())

        layer.forward(x)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-6)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x)
        assert y.shape == (2, 48)
        dx = layer.backward(y)
        np.testing.assert_allclose(dx, x)

    def test_relu_records_density(self, rng):
        layer = ReLU()
        layer.forward(rng.normal(size=(10, 10)))
        assert 0.2 < layer.last_density < 0.8

    def test_global_avgpool_layer(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x)
        assert y.shape == (2, 3)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_linear_layer_gradients(self, rng):
        layer = Linear("fc", 6, 3, rng=rng)
        x = rng.normal(size=(4, 6))
        y = layer.forward(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape
        assert layer.weight.grad.shape == (3, 6)
        assert layer.bias.grad.shape == (3,)
