"""Tests for the Eager Pruning accelerator model (Section VII-A)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.eager_accel import (
    EagerPruningAccelerator,
    sorting_cycles,
)
from repro.hw.config import ArchConfig


@pytest.fixture
def arch():
    return ArchConfig(name="t4x4", pe_rows=4, pe_cols=4)


def sparse_mask(rng, shape, density=0.3):
    return rng.uniform(size=shape) < density


class TestSortingCycles:
    def test_zero_for_trivial(self):
        assert sorting_cycles(0) == 0.0
        assert sorting_cycles(1) == 0.0

    def test_matches_stirling_bound(self):
        n = 15_000_000  # VGG-S weight count
        cycles = sorting_cycles(n, comparators=256)
        comparisons = n * math.log2(n) - n / math.log(2.0)
        assert cycles == pytest.approx(comparisons / 256)
        # The paper's Section III-B: >1.3M cycles on a 256-PE device.
        assert cycles > 1.3e6

    def test_validation(self):
        with pytest.raises(ValueError):
            sorting_cycles(100, comparators=0)


class TestEagerAllocation:
    def test_macs_conserved(self, rng, arch):
        mask = sparse_mask(rng, (8, 4, 3, 3))
        result = EagerPruningAccelerator(arch).run_conv(mask, p=5, q=5, n=3)
        assert result.macs == int(mask.sum()) * 5 * 5 * 3

    def test_empty_mask(self, arch):
        mask = np.zeros((4, 4, 3, 3), dtype=bool)
        result = EagerPruningAccelerator(arch).run_conv(mask, p=4, q=4, n=2)
        assert result.cycles == 0.0
        assert result.macs == 0

    def test_rounds_respect_array_size(self, rng, arch):
        mask = sparse_mask(rng, (32, 8, 3, 3))
        result = EagerPruningAccelerator(arch).run_conv(mask, p=4, q=4, n=2)
        for rnd in result.rounds:
            assert rnd.pes_used <= arch.n_pes

    def test_denser_filters_get_more_pes(self, arch):
        mask = np.zeros((2, 16, 3, 3), dtype=bool)
        mask[0] = True  # dense filter: 144 nnz
        mask[1, 0, 0, 0] = True  # nearly empty filter: 1 nnz
        result = EagerPruningAccelerator(arch).run_conv(mask, p=4, q=4, n=1)
        shares = {
            ki: share
            for rnd in result.rounds
            for ki, share in zip(rnd.filters, rnd.pes_per_filter)
        }
        assert shares[0] > shares[1]

    def test_router_traffic_scales_with_split_filters(self, arch):
        # A filter on one PE routes nothing; split filters route
        # (share - 1) * P * Q words each.
        uniform = np.zeros((16, 1, 3, 3), dtype=bool)
        uniform[:, 0, 0, 0] = True  # 16 filters x 1 nnz -> 1 PE each
        result = EagerPruningAccelerator(arch).run_conv(uniform, p=4, q=4, n=1)
        assert result.router_words == 0

        skewed = np.zeros((1, 16, 3, 3), dtype=bool)
        skewed[0] = True  # one dense filter split across the array
        result = EagerPruningAccelerator(arch).run_conv(skewed, p=4, q=4, n=1)
        assert result.router_words > 0

    def test_balances_skewed_masks(self, rng, arch):
        # The scheme's virtue: strong utilization even when one filter
        # dominates — that is the point of density-proportional PEs.
        mask = sparse_mask(rng, (16, 16, 3, 3), density=0.05)
        mask[0] = True
        result = EagerPruningAccelerator(arch).run_conv(mask, p=4, q=4, n=4)
        assert result.utilization > 0.5

    def test_input_validation(self, arch):
        accel = EagerPruningAccelerator(arch)
        with pytest.raises(ValueError):
            accel.run_conv(np.ones((2, 2)), p=4, q=4, n=1)
        with pytest.raises(ValueError):
            accel.run_conv(np.ones((2, 2, 3, 3)), p=0, q=4, n=1)


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(1, 12),
    c=st.integers(1, 8),
    n=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_eager_mac_conservation_property(k, c, n, seed):
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=(k, c, 3, 3)) < 0.3
    arch = ArchConfig(name="t", pe_rows=4, pe_cols=4)
    result = EagerPruningAccelerator(arch).run_conv(mask, p=3, q=3, n=n)
    assert result.macs == int(mask.sum()) * 9 * n
    assert result.cycles >= 0.0
    assert 0.0 <= result.utilization <= 1.0
