"""Deterministic chaos scenarios: faulted sweeps converge bit-identically.

The invariant under test (the reliability layer's reason to exist): a
sweep that suffers injected worker crashes, point errors, timeouts, or
cache corruption — or is killed outright and resumed — produces
results *bit-identical* to an undisturbed serial run.  Bit-identity is
pinned by comparing canonical JSON of the full row set, not just
approximate values.

All faults come from :mod:`repro.reliability.faults` via the config
``faults`` spec, so every scenario is seeded and reproducible; nothing
here depends on timing races except the SIGKILL test, which only
requires "the process died somewhere mid-sweep".
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.api.config import RuntimeConfig, config_scope
from repro.reliability.faults import reset_fault_state
from repro.sweep import (
    ResultCache,
    SweepSpec,
    canonical_json,
    register,
    run_sweep,
)
from repro.sweep import evaluators as ev

#: Serial-run call log (pool workers append to their own copy, so only
#: serial scenarios may assert on it).
CALLS: list[int] = []


@register("chaos-square", version="1")
def _square(*, seed, x):
    CALLS.append(x)
    return {"y": x * x + seed}


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    reset_fault_state()
    CALLS.clear()
    yield
    reset_fault_state()


def spec(n=6, name="chaos", base_seed=3):
    return SweepSpec.grid(name, "chaos-square", {"x": list(range(n))},
                          base_seed=base_seed)


def rows_json(result):
    return canonical_json(result.rows())


def clean_rows():
    """The ground truth: an undisturbed serial run, no cache."""
    return rows_json(run_sweep(spec()))


# ----------------------------------------------------------------------
# single-fault scenarios
# ----------------------------------------------------------------------
class TestSingleFaults:
    def test_point_errors_retried_to_parity(self):
        config = RuntimeConfig(
            faults="seed=2;point-error:max_attempt=1", retries=1
        )
        result = run_sweep(spec(), config=config)
        assert rows_json(result) == clean_rows()
        assert result.reliability["point_errors"] == 6
        assert result.reliability["retries"] == 6

    def test_inline_worker_crash_retried_to_parity(self):
        config = RuntimeConfig(
            faults="worker-crash:max_attempt=1", retries=1
        )
        result = run_sweep(spec(), config=config)
        assert rows_json(result) == clean_rows()
        assert result.reliability["retries"] == 6

    def test_retry_budget_exhaustion_still_raises(self):
        from repro.reliability import InjectedPointError

        config = RuntimeConfig(faults="point-error:match=\"x\":5", retries=2)
        with pytest.raises(InjectedPointError):
            run_sweep(spec(), config=config)

    def test_pool_worker_crash_recovers_to_parity(self):
        # Attempt 1 of any point dies hard (os._exit) inside the pool;
        # the runner must respawn the pool, requeue unfinished points,
        # and converge on exactly the clean results.
        config = RuntimeConfig(
            faults="worker-crash:max_attempt=1", retries=1
        )
        result = run_sweep(
            spec(), executor="process", workers=2, config=config
        )
        assert rows_json(result) == clean_rows()
        assert result.reliability["worker_crashes"] >= 1

    @pytest.mark.skipif(
        not hasattr(__import__("signal"), "SIGALRM"),
        reason="deadline needs SIGALRM",
    )
    def test_timeout_retried_to_parity(self):
        # Attempt 1 of every point stalls past its deadline; attempt 2
        # runs clean.
        config = RuntimeConfig(
            faults="point-timeout:max_attempt=1,delay=0.4",
            retries=1,
            point_timeout_s=0.1,
        )
        result = run_sweep(spec(), config=config)
        assert rows_json(result) == clean_rows()
        assert result.reliability["timeouts"] == 6
        assert result.reliability["retries"] == 6

    def test_env_threading(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=4;point-error:max_attempt=1")
        monkeypatch.setenv("REPRO_RETRIES", "1")
        config = RuntimeConfig.from_env()
        result = run_sweep(spec(), config=config)
        assert rows_json(result) == clean_rows()
        assert result.reliability["point_errors"] == 6


# ----------------------------------------------------------------------
# cache corruption
# ----------------------------------------------------------------------
class TestCacheCorruption:
    def test_injected_write_corruption_quarantined_and_recomputed(
        self, tmp_path
    ):
        # Every write is garbled in place; the re-read must quarantine
        # (never silently miss or return garbage) and recompute.
        config = RuntimeConfig(faults="cache-corrupt")
        cache = ResultCache(tmp_path / "cache")
        with config_scope(config):
            first = run_sweep(spec(), cache=cache, config=config)
        assert rows_json(first) == clean_rows()
        reset_fault_state()
        cache2 = ResultCache(tmp_path / "cache")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = run_sweep(spec(), cache=cache2)
        assert rows_json(second) == clean_rows()
        assert cache2.stats.corrupt == 6
        assert any("quarantined" in str(w.message) for w in caught)
        # Quarantined files are preserved for forensics...
        assert len(cache2.corrupt_entries()) == 6
        # ...and the recompute repopulated every live entry.
        assert len(cache2) == 6

    def test_acceptance_chaos_parity(self, tmp_path):
        """ISSUE acceptance: a sweep under an injected worker crash
        plus one at-rest-corrupted cache entry, resumed, must be
        bit-identical to an uninterrupted serial run."""
        truth = clean_rows()
        cache = ResultCache(tmp_path / "cache")
        config = RuntimeConfig(
            faults="seed=9;worker-crash:max_attempt=1", retries=1
        )
        crashed = run_sweep(
            spec(), cache=cache, executor="process", workers=2,
            config=config,
        )
        assert rows_json(crashed) == truth
        assert crashed.reliability["worker_crashes"] >= 1
        # Corrupt one committed entry at rest (bit rot).
        victim = sorted(cache.root.glob("*/*.json"))[0]
        victim.write_bytes(b"\x00garbage" + victim.read_bytes()[:40])
        # Resume with a fresh cache handle, no faults: the corrupt
        # entry is quarantined, healed from the run manifest, and the
        # evaluator is never called again.
        cache2 = ResultCache(tmp_path / "cache")
        CALLS.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = run_sweep(spec(), cache=cache2)
        assert rows_json(resumed) == truth
        assert CALLS == []  # healed from the manifest, not recomputed
        assert resumed.reliability["manifest_restored"] == 1
        assert cache2.stats.corrupt == 1
        assert len(cache2) == 6  # the healed entry is back on disk


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_without_cache_uses_manifest(self, tmp_path):
        config = RuntimeConfig(faults="point-error:match=\"x\":4")
        with pytest.raises(Exception):
            run_sweep(
                spec(), config=config, manifest_dir=tmp_path / "manifests"
            )
        # Everything except x=4 was journaled; the re-run (faults
        # gone) computes only the failed point — with no cache at all.
        CALLS.clear()
        result = run_sweep(spec(), manifest_dir=tmp_path / "manifests")
        assert CALLS == [4]
        assert rows_json(result) == clean_rows()
        assert result.reliability["manifest_restored"] == 5

    def test_resume_false_recomputes(self, tmp_path):
        run_sweep(spec(), manifest_dir=tmp_path / "manifests")
        CALLS.clear()
        result = run_sweep(
            spec(), manifest_dir=tmp_path / "manifests", resume=False
        )
        assert sorted(CALLS) == [0, 1, 2, 3, 4, 5]
        assert rows_json(result) == clean_rows()

    def test_changed_spec_gets_a_fresh_manifest(self, tmp_path):
        run_sweep(spec(), manifest_dir=tmp_path / "manifests")
        CALLS.clear()
        result = run_sweep(
            spec(base_seed=4), manifest_dir=tmp_path / "manifests"
        )
        # Different seed -> different run key -> nothing restored.
        assert len(CALLS) == 6
        assert "manifest_restored" not in result.reliability

    def test_sigkill_mid_sweep_then_resume_parity(self, tmp_path):
        """The hard-interrupt acceptance case: SIGKILL a sweep process
        mid-run, then resume in a fresh process; the combined result
        must match an undisturbed run and recompute only the missing
        points."""
        cache_dir = tmp_path / "cache"
        script = """
import sys, time
from repro.sweep import ResultCache, SweepSpec, register, run_sweep

@register("chaos-kill", version="1")
def _ev(*, seed, x):
    if x >= 2:
        time.sleep(10.0)  # park until the parent kills us
    return {"y": x * 7}

spec = SweepSpec.grid("kill", "chaos-kill", {"x": list(range(5))})
run_sweep(spec, cache=ResultCache(sys.argv[1]))
"""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(cache_dir)], env=env
        )
        deadline = time.monotonic() + 30.0
        try:
            # Wait until the first points committed, then kill hard.
            while time.monotonic() < deadline:
                if len(list(cache_dir.glob("*/*.json"))) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail("sweep process exited before the kill")
                time.sleep(0.05)
            else:
                pytest.fail("sweep never committed its first points")
            proc.kill()
        finally:
            proc.wait(timeout=30)

        calls: list[int] = []

        @register("chaos-kill", version="1")
        def _ev(*, seed, x):
            calls.append(x)
            return {"y": x * 7}

        try:
            killed_spec = SweepSpec.grid(
                "kill", "chaos-kill", {"x": list(range(5))}
            )
            resumed = run_sweep(killed_spec, cache=ResultCache(cache_dir))
            assert resumed.values("y") == [0, 7, 14, 21, 28]
            assert sorted(calls) == [2, 3, 4]  # only the killed points
            assert resumed.n_cached == 2
        finally:
            ev._REGISTRY.pop("chaos-kill", None)


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_failing_batch_group_degrades_to_serial(self):
        calls: list[str] = []

        @register("chaos-batched", version="1")
        def _scalar(*, seed, g, x):
            calls.append(f"scalar:{g}:{x}")
            return {"y": g * 100 + x}

        @ev.register_batch("chaos-batched", group_by=("g",))
        def _batch(jobs):
            raise RuntimeError("batch core is broken today")

        try:
            grid = SweepSpec.grid(
                "degrade", "chaos-batched",
                {"g": [0, 1], "x": [1, 2, 3]},
            )
            result = run_sweep(grid, executor="batched")
            assert result.values("y") == [1, 2, 3, 101, 102, 103]
            assert result.reliability["batch_fallbacks"] == 2
            assert len(calls) == 6  # every point re-ran serially
        finally:
            ev._REGISTRY.pop("chaos-batched", None)
            ev._BATCH_REGISTRY.pop("chaos-batched", None)

    def test_serial_fuse_aborts_hopeless_sweeps(self):
        from repro.sweep.runner import FAIL_FAST_FUSE

        attempts: list[int] = []

        @register("chaos-hopeless", version="1")
        def _always_fails(*, seed, x):
            attempts.append(x)
            raise RuntimeError("nothing works")

        try:
            grid = SweepSpec.grid(
                "hopeless", "chaos-hopeless", {"x": list(range(40))}
            )
            with pytest.raises(RuntimeError, match="nothing works"):
                run_sweep(grid)
            # The fuse stops a 40-point grid after FAIL_FAST_FUSE
            # consecutive failures with zero successes.
            assert len(attempts) == FAIL_FAST_FUSE
        finally:
            ev._REGISTRY.pop("chaos-hopeless", None)
