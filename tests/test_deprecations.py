"""Deprecation shims for direct experiment-module entry imports.

The supported path to every experiment entry point is the registry
(``repro.api.get_experiment`` / ``repro.api.evaluate``).  Direct
imports like ``from repro.harness.arch_experiments import
run_fig01_potential`` keep working but emit a ``DeprecationWarning``;
library code itself must never take the legacy path (pinned here by an
AST scan of the whole package).
"""

from __future__ import annotations

import ast
import warnings
from pathlib import Path

import pytest

from repro.harness import _deprecation
from repro.harness import arch_experiments, beyond_experiments, training_experiments

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

SHIM_MODULES = {
    "arch_experiments": arch_experiments,
    "training_experiments": training_experiments,
    "beyond_experiments": beyond_experiments,
}

#: Every deprecated name, per module — pulled from the shims themselves
#: so the test can't drift from the source of truth.
DEPRECATED = {
    name: sorted(module._DEPRECATED)
    for name, module in SHIM_MODULES.items()
}


class TestModuleShims:
    @pytest.mark.parametrize("module_name", sorted(SHIM_MODULES))
    def test_direct_attribute_access_warns(self, module_name):
        module = SHIM_MODULES[module_name]
        name = DEPRECATED[module_name][0]
        with pytest.warns(DeprecationWarning, match="experiment registry"):
            func = getattr(module, name)
        assert callable(func)

    @pytest.mark.parametrize("module_name", sorted(SHIM_MODULES))
    def test_every_deprecated_name_still_resolves(self, module_name):
        module = SHIM_MODULES[module_name]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in DEPRECATED[module_name]:
                assert callable(getattr(module, name))

    @pytest.mark.parametrize("module_name", sorted(SHIM_MODULES))
    def test_entry_point_accessor_is_silent(self, module_name):
        module = SHIM_MODULES[module_name]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in DEPRECATED[module_name]:
                assert callable(module.entry_point(name))

    def test_entry_point_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="run_fig01_potential"):
            arch_experiments.entry_point("not_a_real_entry")

    @pytest.mark.parametrize("module_name", sorted(SHIM_MODULES))
    def test_unknown_attribute_raises_attribute_error(self, module_name):
        with pytest.raises(AttributeError, match="bogus_name"):
            getattr(SHIM_MODULES[module_name], "bogus_name")

    @pytest.mark.parametrize("module_name", sorted(SHIM_MODULES))
    def test_dir_still_lists_deprecated_names(self, module_name):
        module = SHIM_MODULES[module_name]
        listed = dir(module)
        for name in DEPRECATED[module_name]:
            assert name in listed

    def test_package_level_access_warns_and_resolves(self):
        import repro.harness as harness

        with pytest.warns(DeprecationWarning, match="experiment registry"):
            func = harness.run_fig01_potential
        assert callable(func)
        assert "run_fig06_decay" in dir(harness)
        with pytest.raises(AttributeError):
            harness.not_an_experiment

    def test_package_building_blocks_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.harness import render_table, run_table2, train_mini

            assert callable(render_table)
            assert callable(run_table2)
            assert callable(train_mini)


class TestRegistryPathIsWarningFree:
    def test_registry_run_does_not_touch_legacy_path(self, tmp_path):
        from repro.api import RuntimeConfig, get_experiment

        config = RuntimeConfig(cache_root=str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = get_experiment("fig01").run(config)
        assert result

    def test_registry_resolves_every_deprecated_entry_silently(self):
        # Loading each experiment's entry function through the registry
        # must use the entry_point accessor, never the warning path.
        from repro.api import list_experiments

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for info in list_experiments():
                pass  # listing alone must not import legacy names


class TestNoLegacyImportsInLibrary:
    """AST scan: library code never imports a deprecated entry name."""

    EXEMPT = {
        SRC / "harness" / "arch_experiments.py",
        SRC / "harness" / "training_experiments.py",
        SRC / "harness" / "beyond_experiments.py",
        SRC / "harness" / "__init__.py",
        SRC / "harness" / "_deprecation.py",
    }

    def test_no_library_module_imports_deprecated_names(self):
        deprecated = set().union(*DEPRECATED.values())
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path in self.EXEMPT:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                if not (node.module or "").startswith("repro.harness"):
                    continue
                for alias in node.names:
                    if alias.name in deprecated:
                        offenders.append(
                            f"{path.relative_to(SRC.parent)}:{node.lineno} "
                            f"imports {alias.name}"
                        )
        assert not offenders, (
            "library code must use module.entry_point(...) or the "
            "registry, not direct deprecated imports:\n"
            + "\n".join(offenders)
        )


def test_install_shims_contract():
    namespace = {"__name__": "fake.module", "keep": lambda: 1, "gone": lambda: 2}
    deprecated, entry_point, getattr_, dir_ = _deprecation.install_shims(
        namespace, ("gone",)
    )
    assert "gone" not in namespace and "keep" in namespace
    assert set(deprecated) == {"gone"}
    assert entry_point("gone")() == 2
    with pytest.warns(DeprecationWarning, match="fake.module"):
        assert getattr_("gone")() == 2
    with pytest.raises(AttributeError):
        getattr_("never_existed")
    assert "gone" in dir_()
