"""Tests for the baseline sparse-training algorithms (Section II-E)."""

import numpy as np
import pytest

from repro.core.baselines import (
    DynamicSparseReparameterization,
    GradualMagnitudePruning,
    GradualMagnitudePruningConfig,
)
from repro.models.vgg import mini_vgg_s
from repro.nn.data import make_blob_images
from repro.nn.layers import Parameter
from repro.nn.trainer import Trainer


def make_params(rng):
    return [
        Parameter("w", rng.normal(size=(32, 32)), prunable=True),
        Parameter("b", rng.normal(size=(8,)), prunable=False),
    ]


def run_steps(opt, params, rng, steps):
    for _ in range(steps):
        for p in params:
            p.grad = rng.normal(size=p.data.shape) * 0.01
        opt.step()


class TestGradualMagnitudePruning:
    def test_starts_dense(self, rng):
        params = make_params(rng)
        opt = GradualMagnitudePruning(params)
        assert opt.achieved_sparsity_factor() == pytest.approx(1.0)

    def test_prunes_gradually_to_target(self, rng):
        params = make_params(rng)
        cfg = GradualMagnitudePruningConfig(
            target_sparsity_factor=3.0, prune_interval=5, prune_fraction=0.3
        )
        opt = GradualMagnitudePruning(params, cfg)
        factors = []
        for _ in range(8):
            run_steps(opt, params, rng, 5)
            factors.append(opt.achieved_sparsity_factor())
        # Monotone non-decreasing sparsity, eventually at/above target.
        assert all(b >= a - 1e-9 for a, b in zip(factors, factors[1:]))
        assert factors[-1] >= 3.0

    def test_stops_at_target(self, rng):
        params = make_params(rng)
        cfg = GradualMagnitudePruningConfig(
            target_sparsity_factor=2.0, prune_interval=2, prune_fraction=0.5
        )
        opt = GradualMagnitudePruning(params, cfg)
        run_steps(opt, params, rng, 30)
        # Once at target, no further pruning rounds fire.
        assert opt.achieved_sparsity_factor() < 6.0

    def test_pruned_weights_are_zero(self, rng):
        params = make_params(rng)
        cfg = GradualMagnitudePruningConfig(prune_interval=3)
        opt = GradualMagnitudePruning(params, cfg)
        run_steps(opt, params, rng, 10)
        mask = opt.masks()["w"]
        assert np.count_nonzero(params[0].data[~mask]) == 0

    def test_drops_smallest_magnitudes(self, rng):
        params = [Parameter("w", np.arange(1.0, 101.0), prunable=True)]
        cfg = GradualMagnitudePruningConfig(
            prune_interval=1, prune_fraction=0.25, lr=1e-9,
            target_sparsity_factor=1.3,
        )
        opt = GradualMagnitudePruning(params, cfg)
        params[0].grad = np.zeros(100)
        opt.step()
        mask = opt.masks()["w"]
        assert not mask[:25].any()
        assert mask[30:].all()

    def test_quantile_selection_avoids_sort(self, rng):
        params = make_params(rng)
        cfg = GradualMagnitudePruningConfig(
            selection="quantile", prune_interval=3, prune_fraction=0.3,
        )
        opt = GradualMagnitudePruning(params, cfg)
        run_steps(opt, params, rng, 20)
        assert opt.achieved_sparsity_factor() > 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GradualMagnitudePruningConfig(target_sparsity_factor=0.5)
        with pytest.raises(ValueError):
            GradualMagnitudePruningConfig(prune_fraction=1.0)
        with pytest.raises(ValueError):
            GradualMagnitudePruningConfig(selection="random")

    def test_trains_mini_network(self):
        train, val = make_blob_images(
            n_classes=3, samples_per_class=16, size=16, seed=5, noise=0.3
        )
        model = mini_vgg_s(n_classes=3, width=8, seed=0)
        cfg = GradualMagnitudePruningConfig(
            target_sparsity_factor=2.0, prune_interval=6,
            prune_fraction=0.15, lr=0.05,
        )
        opt = GradualMagnitudePruning(model.parameters(), cfg)
        history = Trainer(model, opt, train, val, batch_size=8, seed=0).run(4)
        assert history.best_val_accuracy > 0.45
        assert opt.achieved_sparsity_factor() > 1.3


class TestDynamicSparseReparameterization:
    def test_starts_at_target_sparsity(self, rng):
        params = make_params(rng)
        opt = DynamicSparseReparameterization(
            params, target_sparsity_factor=4.0, seed=1
        )
        assert opt.achieved_sparsity_factor() == pytest.approx(4.0, rel=0.25)

    def test_sparsity_constant_through_rewiring(self, rng):
        params = make_params(rng)
        opt = DynamicSparseReparameterization(
            params, target_sparsity_factor=4.0, rewire_interval=3, seed=1
        )
        before = opt.tracked_count()
        run_steps(opt, params, rng, 12)
        assert opt.tracked_count() == before

    def test_mask_moves_over_time(self, rng):
        params = make_params(rng)
        opt = DynamicSparseReparameterization(
            params, target_sparsity_factor=4.0, rewire_interval=2,
            rewire_fraction=0.3, seed=1,
        )
        initial = opt.masks()["w"]
        run_steps(opt, params, rng, 10)
        final = opt.masks()["w"]
        assert (initial != final).any()

    def test_pruned_stay_zero(self, rng):
        params = make_params(rng)
        opt = DynamicSparseReparameterization(
            params, target_sparsity_factor=4.0, seed=1
        )
        run_steps(opt, params, rng, 7)
        mask = opt.masks()["w"]
        assert np.count_nonzero(params[0].data[~mask]) == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            DynamicSparseReparameterization(
                make_params(rng), target_sparsity_factor=0.5
            )
