"""Unit tests for the reliability layer: fault plans, retry policy,
deadlines, file locks, and the run manifest.

These pin the *primitives*; the end-to-end chaos scenarios (faulted
sweeps resuming bit-identically) live in ``test_chaos.py``, and the
multi-process cache stress in ``test_cache_concurrency.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api.config import RuntimeConfig, config_scope
from repro.reliability import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedPointError,
    InjectedWorkerCrash,
    LockTimeout,
    PointTimeoutError,
    RetryPolicy,
    RunManifest,
    deadline,
    file_lock,
)
from repro.reliability.faults import (
    active_injector,
    inject_point_faults,
    iter_fired,
    maybe_corrupt_file,
    reset_fault_state,
)
from repro.reliability.locks import locking_supported
from repro.reliability.manifest import run_key
from repro.reliability.retry import deadline_enforced


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    reset_fault_state()
    yield
    reset_fault_state()


# ----------------------------------------------------------------------
# FaultPlan / FaultRule
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_empty_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None

    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=7; worker-crash:p=0.25,match=x,max_attempt=1;"
            "point-timeout:delay=0.5,max_fires=2; cache-corrupt"
        )
        assert plan.seed == 7
        assert [r.kind for r in plan.rules] == [
            "worker-crash", "point-timeout", "cache-corrupt",
        ]
        crash, stall, corrupt = plan.rules
        assert (crash.p, crash.match, crash.max_attempt) == (0.25, "x", 1)
        assert (stall.delay_s, stall.max_fires) == (0.5, 2)
        assert (corrupt.p, corrupt.match) == (1.0, "")

    def test_spec_round_trips(self):
        spec = "seed=3;worker-crash:p=0.5,max_attempt=2;slow-io:delay=0.01"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",                       # unknown kind
            "worker-crash:p=oops",           # non-numeric probability
            "worker-crash:p=2.0",            # probability out of range
            "worker-crash:frequency=1",      # unknown rule key
            "worker-crash:p",                # not key=value
            "seed=many",                     # non-integer seed
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan.parse("seed=5;point-error:p=0.5")
        a = [
            FaultInjector(plan).decide("point-error", f"k{i}") is not None
            for i in range(32)
        ]
        b = [
            FaultInjector(plan).decide("point-error", f"k{i}") is not None
            for i in range(32)
        ]
        assert a == b
        assert True in a and False in a  # p=0.5 actually discriminates

    def test_decisions_depend_on_seed(self):
        keys = [f"k{i}" for i in range(64)]

        def fires(seed):
            inj = FaultInjector(FaultPlan.parse(f"seed={seed};point-error:p=0.5"))
            return [inj.decide("point-error", k) is not None for k in keys]

        assert fires(1) != fires(2)

    def test_max_attempt_gates_retries(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash:max_attempt=1"))
        assert inj.decide("worker-crash", "k", attempt=1) is not None
        assert inj.decide("worker-crash", "k", attempt=2) is None

    def test_max_fires_caps_total(self):
        inj = FaultInjector(FaultPlan.parse("point-error:max_fires=2"))
        fired = [
            inj.decide("point-error", f"k{i}") is not None for i in range(5)
        ]
        assert fired == [True, True, False, False, False]
        assert list(iter_fired(inj)) == [
            (FaultRule(kind="point-error", max_fires=2), 2)
        ]

    def test_match_restricts_keys(self):
        inj = FaultInjector(FaultPlan.parse('point-error:match="x": 3'))
        assert inj.decide("point-error", '{"x": 3}') is not None
        assert inj.decide("point-error", '{"x": 4}') is None


class TestInjectionSites:
    def test_inactive_without_config_faults(self):
        with config_scope(RuntimeConfig()):
            assert active_injector() is None
            inject_point_faults("k", 1, allow_exit=False)  # no-op

    def test_point_error_site(self):
        with config_scope(RuntimeConfig(faults="point-error")):
            with pytest.raises(InjectedPointError):
                inject_point_faults("k", 1, allow_exit=False)

    def test_worker_crash_raises_inline(self):
        # allow_exit=False is the inline path: the process must survive.
        with config_scope(RuntimeConfig(faults="worker-crash")):
            with pytest.raises(InjectedWorkerCrash):
                inject_point_faults("k", 1, allow_exit=False)

    def test_corrupt_file_site_garbles_payload(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_text(json.dumps({"values": {"y": 1}}))
        with config_scope(RuntimeConfig(faults="cache-corrupt")):
            assert maybe_corrupt_file(victim, "digest") is True
        with pytest.raises(json.JSONDecodeError):
            json.loads(victim.read_text(errors="replace"))


# ----------------------------------------------------------------------
# RetryPolicy / deadline
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)

    def test_backoff_bounded_and_monotone_in_envelope(self):
        policy = RetryPolicy(
            retries=5, backoff_base_s=0.1, backoff_max_s=1.0, seed=3
        )
        for failure in range(1, 8):
            envelope = min(1.0, 0.1 * 2 ** (failure - 1))
            delay = policy.backoff_s("key", failure)
            assert 0.5 * envelope <= delay < envelope

    def test_backoff_deterministic_but_key_dependent(self):
        policy = RetryPolicy(seed=9)
        assert policy.backoff_s("a", 1) == policy.backoff_s("a", 1)
        assert policy.backoff_s("a", 1) != policy.backoff_s("b", 1)

    def test_from_config(self):
        config = RuntimeConfig(retries=4, point_timeout_s=2.5)
        policy = RetryPolicy.from_config(config, seed=11)
        assert (policy.retries, policy.timeout_s, policy.seed) == (4, 2.5, 11)


class TestDeadline:
    def test_noop_when_disabled(self):
        with deadline(None):
            pass
        with deadline(0):
            pass

    @pytest.mark.skipif(
        not deadline_enforced(), reason="no SIGALRM on this platform/thread"
    )
    def test_interrupts_a_stuck_call(self):
        start = time.perf_counter()
        with pytest.raises(PointTimeoutError, match="deadline"):
            with deadline(0.1, label="stuck"):
                time.sleep(5.0)
        assert time.perf_counter() - start < 2.0

    @pytest.mark.skipif(
        not deadline_enforced(), reason="no SIGALRM on this platform/thread"
    )
    def test_fast_call_unharmed_and_timer_restored(self):
        import signal

        with deadline(5.0):
            value = 42
        assert value == 42
        # The interval timer must be disarmed on exit.
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


# ----------------------------------------------------------------------
# file_lock
# ----------------------------------------------------------------------
class TestFileLock:
    def test_reentrant_sequential_use(self, tmp_path):
        lock = tmp_path / "x.lock"
        with file_lock(lock):
            pass
        with file_lock(lock):
            pass

    @pytest.mark.skipif(
        not locking_supported(), reason="fcntl unavailable"
    )
    def test_contention_times_out(self, tmp_path):
        import fcntl
        import os

        lock = tmp_path / "x.lock"
        fd = os.open(lock, os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            with pytest.raises(LockTimeout):
                with file_lock(lock, timeout_s=0.2):
                    pass
        finally:
            os.close(fd)


# ----------------------------------------------------------------------
# RunManifest
# ----------------------------------------------------------------------
class TestRunManifest:
    def test_append_and_load(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        assert not manifest.exists()
        assert manifest.load().points == {}
        manifest.append_event("start", spec="s")
        manifest.append_point("d0", 0, {"y": 1})
        manifest.append_point("d1", 1, {"y": 2.5, "nested": {"a": [1, 2]}})
        state = manifest.load()
        assert state.points == {
            "d0": {"y": 1},
            "d1": {"y": 2.5, "nested": {"a": [1, 2]}},
        }
        assert [e["t"] for e in state.events] == ["start"]
        assert state.skipped == 0

    def test_rewrite_wins_for_duplicate_digests(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.append_point("d0", 0, {"y": 1})
        manifest.append_point("d0", 0, {"y": 2})
        assert manifest.load().points == {"d0": {"y": 2}}

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.append_point("d0", 0, {"y": 1})
        with open(manifest.path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "point", "digest": "d1", "val')  # SIGKILL here
        state = manifest.load()
        assert state.points == {"d0": {"y": 1}}
        assert state.skipped == 1

    def test_checksum_failure_is_skipped(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.append_point("d0", 0, {"y": 1})
        manifest.append_point("d1", 1, {"y": 2})
        lines = manifest.path.read_text().splitlines()
        assert '"y":1' in lines[0]
        lines[0] = lines[0].replace('"y":1', '"y":999')  # bit flip
        manifest.path.write_text("\n".join(lines) + "\n")
        state = manifest.load()
        assert state.points == {"d1": {"y": 2}}
        assert state.skipped == 1

    def test_reset_discards(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.append_point("d0", 0, {"y": 1})
        manifest.reset()
        assert not manifest.exists()
        manifest.reset()  # idempotent

    def test_run_key_sensitivity(self):
        base = run_key("s", "e", "v1", ["d0", "d1"])
        assert run_key("s", "e", "v1", ["d1", "d0"]) == base  # order-free
        assert run_key("s", "e", "v2", ["d0", "d1"]) != base
        assert run_key("s", "e", "v1", ["d0"]) != base
        assert run_key("s", "other", "v1", ["d0", "d1"]) != base


# ----------------------------------------------------------------------
# config plumbing for the new knobs
# ----------------------------------------------------------------------
class TestReliabilityConfig:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.retries == 0
        assert config.point_timeout_s is None
        assert config.faults is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(retries=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(point_timeout_s=0)

    def test_env_layering(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_FAULTS", "point-error:p=0.1")
        config = RuntimeConfig.from_env()
        assert config.retries == 3
        assert config.point_timeout_s == 1.5
        assert config.faults == "point-error:p=0.1"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_FAULTS", "point-error")
        config = RuntimeConfig.from_env(retries=1, faults=None)
        assert config.retries == 1
        assert config.faults is None

    def test_bad_env_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "several")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            RuntimeConfig.from_env()
