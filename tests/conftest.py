"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.layer_spec import conv, fc
from repro.workloads.sparsity import synthetic_profile


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_specs():
    """A compact conv+fc network spec for dataflow tests."""
    return [
        conv("c0", c=3, k=32, h=16, r=3),
        conv("c1", c=32, k=64, h=16, r=3, stride=2),
        conv("c2", c=64, k=64, h=8, r=3),
        fc("fc", 64 * 8 * 8, 10),
    ]


@pytest.fixture
def small_profile(small_specs):
    return synthetic_profile("small", small_specs, 4.0, seed=3)


def numeric_gradient(f, array, eps=1e-6):
    """Central-difference gradient of scalar f wrt array (in place)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        old = array[idx]
        array[idx] = old + eps
        hi = f()
        array[idx] = old - eps
        lo = f()
        array[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
    return grad
