"""Tests for the Dropback/Procrustes optimizer (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.nn.layers import Parameter


def make_params(rng, shapes=((8, 8), (16,)), prunable=(True, False)):
    params = []
    for i, (shape, p) in enumerate(zip(shapes, prunable)):
        params.append(
            Parameter(f"p{i}", rng.normal(size=shape), prunable=p)
        )
    return params


def set_grads(params, rng, scale=1.0):
    for p in params:
        p.grad = rng.normal(size=p.data.shape) * scale


class TestDropbackConfig:
    def test_defaults_match_paper(self):
        cfg = DropbackConfig()
        assert cfg.init_decay == pytest.approx(0.9)
        assert cfg.init_decay_zero_after == 1000
        assert cfg.quantile_rho == pytest.approx(1e-3)
        assert cfg.quantile_initial == pytest.approx(1e-6)
        assert cfg.quantile_width == 4

    @pytest.mark.parametrize("field,value", [
        ("sparsity_factor", 0.5),
        ("selection", "magic"),
        ("lr", 0.0),
        ("momentum", 1.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            DropbackConfig(**{field: value})


class TestDropbackOptimizer:
    def test_budget_from_sparsity_factor(self, rng):
        params = make_params(rng)
        opt = DropbackOptimizer(params, DropbackConfig(sparsity_factor=4.0))
        assert opt.total_prunable == 64
        assert opt.budget == 16

    def test_sort_mode_tracks_exact_budget(self, rng):
        params = make_params(rng)
        opt = DropbackOptimizer(
            params, DropbackConfig(sparsity_factor=4.0, lr=0.1)
        )
        set_grads(params, rng)
        opt.step()
        assert opt.tracked_count() == opt.budget
        assert opt.achieved_sparsity_factor() == pytest.approx(4.0)

    def test_nonprunable_follow_plain_sgd(self, rng):
        params = make_params(rng)
        dense = params[1]
        before = dense.data.copy()
        opt = DropbackOptimizer(params, DropbackConfig(lr=0.5))
        set_grads(params, rng)
        grad = dense.grad.copy()
        opt.step()
        np.testing.assert_allclose(dense.data, before - 0.5 * grad)

    def test_pruned_weights_reset_to_decayed_init(self, rng):
        params = make_params(rng)
        w0 = params[0].data.copy()
        cfg = DropbackConfig(
            sparsity_factor=4.0, lr=0.1, init_decay=0.9,
            init_decay_zero_after=1000,
        )
        opt = DropbackOptimizer(params, cfg)
        set_grads(params, rng)
        opt.step()
        mask = opt.masks()["p0"]
        np.testing.assert_allclose(
            params[0].data[~mask], 0.9 * w0[~mask]
        )

    def test_pruned_weights_become_exact_zero_after_flush(self, rng):
        params = make_params(rng)
        cfg = DropbackConfig(
            sparsity_factor=4.0, lr=0.01, init_decay=0.9,
            init_decay_zero_after=3,
        )
        opt = DropbackOptimizer(params, cfg)
        for _ in range(4):
            set_grads(params, rng)
            opt.step()
        assert opt.computation_is_sparse()
        mask = opt.masks()["p0"]
        assert np.count_nonzero(params[0].data[~mask]) == 0

    def test_no_decay_resets_to_original_init(self, rng):
        params = make_params(rng)
        w0 = params[0].data.copy()
        cfg = DropbackConfig(
            sparsity_factor=4.0, lr=0.1, init_decay=1.0,
            init_decay_zero_after=None,
        )
        opt = DropbackOptimizer(params, cfg)
        for _ in range(5):
            set_grads(params, rng)
            opt.step()
        mask = opt.masks()["p0"]
        np.testing.assert_allclose(params[0].data[~mask], w0[~mask])

    def test_tracked_weights_take_sgd_steps(self, rng):
        params = make_params(rng)
        cfg = DropbackConfig(sparsity_factor=2.0, lr=0.2, init_decay=1.0,
                             init_decay_zero_after=None)
        opt = DropbackOptimizer(params, cfg)
        before = params[0].data.copy()
        set_grads(params, rng)
        grad = params[0].grad.copy()
        opt.step()
        mask = opt.masks()["p0"]
        np.testing.assert_allclose(
            params[0].data[mask], (before - 0.2 * grad)[mask]
        )

    def test_wr_semantics_materializes_init_plus_accum(self, rng):
        params = make_params(rng)
        w0 = params[0].data.copy()
        cfg = DropbackConfig(
            sparsity_factor=4.0, lr=0.1, init_decay=0.9,
            init_decay_zero_after=1000, decay_tracked_init=True,
        )
        opt = DropbackOptimizer(params, cfg)
        set_grads(params, rng)
        grad = params[0].grad.copy()
        opt.step()
        mask = opt.masks()["p0"]
        expected = 0.9 * w0 + np.where(mask, -0.1 * grad, 0.0)
        np.testing.assert_allclose(params[0].data, expected)

    def test_selection_by_accumulated_magnitude(self, rng):
        """A weight with a persistently large gradient stays tracked."""
        param = Parameter("w", np.zeros(10), prunable=True)
        cfg = DropbackConfig(sparsity_factor=5.0, lr=1.0, init_decay=1.0,
                             init_decay_zero_after=None)
        opt = DropbackOptimizer([param], cfg)
        for _ in range(5):
            grad = np.full(10, 0.01)
            grad[3] = 1.0
            grad[7] = 0.5
            param.grad = grad
            opt.step()
        mask = opt.masks()["w"]
        assert bool(mask[3]) and bool(mask[7])
        assert mask.sum() == 2

    def test_quantile_mode_runs_and_reports_threshold(self, rng):
        params = make_params(rng, shapes=((64, 64), (8,)))
        cfg = DropbackConfig(
            sparsity_factor=4.0, lr=0.1, selection="quantile"
        )
        opt = DropbackOptimizer(params, cfg)
        for _ in range(4):
            set_grads(params, rng)
            opt.step()
        assert opt.threshold is not None and opt.threshold > 0.0
        assert 0 < opt.tracked_count() <= opt.total_prunable

    def test_quantile_mode_tracks_extra_weights(self, rng):
        """The paper's 7.5x -> 5.2x effect: realized sparsity is below
        the requested factor but well above dense."""
        params = make_params(rng, shapes=((128, 128), (8,)))
        cfg = DropbackConfig(
            sparsity_factor=7.5, lr=0.1, selection="quantile"
        )
        opt = DropbackOptimizer(params, cfg)
        for _ in range(12):
            set_grads(params, rng)
            opt.step()
        achieved = opt.achieved_sparsity_factor()
        assert 2.0 < achieved < 9.0

    def test_missing_gradient_raises(self, rng):
        params = make_params(rng)
        opt = DropbackOptimizer(params, DropbackConfig())
        with pytest.raises(ValueError, match="no gradient"):
            opt.step()

    def test_density_by_parameter_sums_to_budget(self, rng):
        params = [
            Parameter("a", rng.normal(size=(32, 32)), prunable=True),
            Parameter("b", rng.normal(size=(16, 16)), prunable=True),
        ]
        opt = DropbackOptimizer(
            params, DropbackConfig(sparsity_factor=8.0, lr=0.1)
        )
        set_grads(params, rng)
        opt.step()
        densities = opt.density_by_parameter()
        total = sum(
            d * p.size for d, p in zip(densities.values(), params)
        )
        assert total == pytest.approx(opt.budget)

    def test_momentum_accumulates_velocity(self, rng):
        params = make_params(rng)
        cfg = DropbackConfig(sparsity_factor=2.0, lr=0.1, momentum=0.9)
        opt = DropbackOptimizer(params, cfg)
        for _ in range(3):
            for p in params:
                p.grad = np.ones_like(p.data)
            opt.step()
        # With momentum, the dense parameter moves farther than 3*lr.
        moved = np.abs(params[1].data - 0).mean()
        assert moved > 0.3
