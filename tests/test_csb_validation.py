"""Failure-injection tests for CSB structural validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csb import CSBTensor


@pytest.fixture
def tensor(rng):
    dense = rng.normal(size=(4, 3, 3, 3))
    dense[rng.uniform(size=dense.shape) > 0.4] = 0.0
    return CSBTensor.from_dense(dense)


class TestValidate:
    def test_fresh_encoding_is_valid(self, tensor):
        tensor.validate()

    def test_after_rotation_and_transpose(self, rng):
        conv = rng.normal(size=(4, 3, 3, 3))
        conv[rng.uniform(size=conv.shape) > 0.4] = 0.0
        CSBTensor.from_dense(conv).rotate_180().validate()
        fc = rng.normal(size=(10, 14))
        fc[rng.uniform(size=fc.shape) > 0.4] = 0.0
        CSBTensor.from_dense(fc).transpose().validate()

    def test_detects_decreasing_pointers(self, tensor):
        tensor.pointers[1] = tensor.pointers[-1] + 5
        with pytest.raises(ValueError, match="decrease|popcount"):
            tensor.validate()

    def test_detects_mask_popcount_mismatch(self, tensor):
        # Flip one mask bit without touching pointers or values.
        block = int(np.argmax(tensor.block_nnz() > 0))
        flat = tensor.masks[block]
        flat[np.argmax(flat)] = False
        with pytest.raises(ValueError, match="popcount"):
            tensor.validate()

    def test_detects_truncated_values(self, tensor):
        tensor.values = tensor.values[:-1]
        with pytest.raises(ValueError, match="value array"):
            tensor.validate()

    def test_detects_wrong_pointer_shape(self, tensor):
        tensor.pointers = tensor.pointers[:-1]
        with pytest.raises(ValueError, match="pointer array"):
            tensor.validate()

    def test_detects_wrong_mask_shape(self, tensor):
        tensor.masks = tensor.masks[:, :-1]
        with pytest.raises(ValueError, match="mask array"):
            tensor.validate()

    def test_detects_nonzero_start(self, tensor):
        tensor.pointers = tensor.pointers + 1
        with pytest.raises(ValueError, match="start at 0"):
            tensor.validate()


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(1, 6),
    c=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_every_fresh_encoding_validates(k, c, seed):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(k, c, 3, 3))
    dense[rng.uniform(size=dense.shape) > 0.3] = 0.0
    CSBTensor.from_dense(dense).validate()
