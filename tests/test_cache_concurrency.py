"""Multi-process stress for the on-disk cache tiers.

Several writer/reader processes hammer one shared cache root.  The
contract under test: no torn reads (a reader sees a complete record or
nothing), no lost updates (every key a writer committed is readable
afterwards with exactly the written value), and zero quarantined
entries at rest (atomic replace means concurrent writers never leave
a half-written file behind).

Every worker writes the *same* deterministic value for a given key, so
any read returning anything else is proof of a torn or mixed record.
Workers are module-level functions (picklable) run through a
``ProcessPoolExecutor``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.dataflow.evalcore import SegmentStore
from repro.dataflow.tiling import SetStats
from repro.sweep.cache import ResultCache

N_WORKERS = 4
N_OPS = 60
# Coprime to the op-selection modulus (3) and the key stride (7), so
# every key sees both writes and reads from every worker.
N_KEYS = 11


def _key(k: int) -> dict:
    return {"evaluator": "stress", "params": {"k": k}, "seed": 0}


def _value(k: int) -> dict:
    # Big enough that a torn write would be visible mid-record.
    return {"v": k * 11, "blob": "ab" * 256, "nested": {"k": [k] * 32}}


def _cache_worker(root: str, worker_id: int) -> dict:
    """Interleave puts and gets on shared keys; report anomalies."""
    cache = ResultCache(root)
    torn = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for i in range(N_OPS):
            k = (worker_id * 7 + i) % N_KEYS
            if (worker_id + i) % 3 == 0:
                record = cache.get(_key(k))
                if record is not None and record["values"] != _value(k):
                    torn += 1
            else:
                cache.put(_key(k), _value(k))
    return {"torn": torn, "corrupt": cache.stats.corrupt}


def _sets(k: int) -> SetStats:
    n = 4 + (k % 3)
    base = np.arange(n, dtype=np.float64) + k
    return SetStats(
        max_work=base * 3.0,
        mean_work=base * 2.0,
        sum_work=base * 16.0,
        busy_pes=np.full(n, 8.0),
        weight=np.full(n, 2.0),
    )


def _segment_worker(root: str, worker_id: int) -> dict:
    """Write segments of shared digests, read others back, verify."""
    store = SegmentStore(root)
    torn = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for i in range(N_OPS // 4):
            lo = (worker_id * 5 + i) % N_KEYS
            digests = [f"d{(lo + j) % N_KEYS}" for j in range(3)]
            store.put_many(
                [(d, _sets(int(d[1:]))) for d in sorted(set(digests))]
            )
            hits = store.get_many(digests)
            for digest, sets in hits.items():
                expect = _sets(int(digest[1:]))
                if not (
                    np.array_equal(sets.max_work, expect.max_work)
                    and np.array_equal(sets.weight, expect.weight)
                ):
                    torn += 1
    return {"torn": torn, "corrupt": store.quarantined}


def _run_stress(worker, root) -> list[dict]:
    with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = [
            pool.submit(worker, str(root), wid) for wid in range(N_WORKERS)
        ]
        return [f.result(timeout=120) for f in futures]


class TestResultCacheStress:
    def test_concurrent_writers_and_readers(self, tmp_path):
        root = tmp_path / "cache"
        reports = _run_stress(_cache_worker, root)
        assert sum(r["torn"] for r in reports) == 0
        assert sum(r["corrupt"] for r in reports) == 0
        # Zero quarantined entries at rest (the acceptance bar).
        assert list(root.glob("*/*.corrupt")) == []
        # No lost updates: every key is present and verifies.
        cache = ResultCache(root)
        for k in range(N_KEYS):
            record = cache.get(_key(k))
            assert record is not None, f"key {k} lost"
            assert record["values"] == _value(k)
        assert cache.stats.corrupt == 0
        # No stray temp files leaked by interrupted writers.
        assert list(root.glob("*/.*.tmp")) == []


class TestSegmentStoreStress:
    def test_concurrent_segment_writers(self, tmp_path):
        root = tmp_path / "segments"
        reports = _run_stress(_segment_worker, root)
        assert sum(r["torn"] for r in reports) == 0
        assert sum(r["corrupt"] for r in reports) == 0
        assert list(root.glob("*.corrupt")) == []
        # Every digest written by any worker reads back bit-exactly.
        store = SegmentStore(root)
        hits = store.get_many([f"d{k}" for k in range(N_KEYS)])
        assert len(hits) == N_KEYS
        for digest, sets in hits.items():
            expect = _sets(int(digest[1:]))
            np.testing.assert_array_equal(sets.max_work, expect.max_work)
            np.testing.assert_array_equal(sets.sum_work, expect.sum_work)
        assert store.quarantined == 0
        # Duplicate-segment writes dedupe by content name, so the
        # directory holds far fewer files than put_many calls.
        assert 0 < len(list(root.glob("seg-*.npz"))) <= N_KEYS * 3


class TestQuarantineUnderConcurrency:
    def test_corrupt_entry_quarantined_exactly_once_per_reader(
        self, tmp_path
    ):
        # Two handles racing to quarantine the same bad entry must not
        # crash or double-move; the file ends up as *.corrupt exactly
        # once and both handles treat the key as a miss.
        root = tmp_path / "cache"
        cache = ResultCache(root)
        path = cache.put(_key(1), _value(1))
        path.write_text("{ torn", encoding="utf-8")
        a, b = ResultCache(root), ResultCache(root)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert a.get(_key(1)) is None
        assert b.get(_key(1)) is None  # already moved: plain miss
        assert len(list(root.glob("*/*.corrupt"))) == 1
        assert a.stats.corrupt == 1
