"""Tests for tracked-set selection (sort vs. streaming threshold)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tracking import ThresholdTracker, select_topk, topk_threshold


class TestTopK:
    def test_selects_exactly_k(self, rng):
        mags = rng.uniform(0, 1, size=1000)
        mask = select_topk(mags, 100)
        assert mask.sum() == 100

    def test_selected_are_largest(self, rng):
        mags = rng.uniform(0, 1, size=500)
        mask = select_topk(mags, 50)
        assert mags[mask].min() >= mags[~mask].max()

    def test_k_zero_selects_none(self, rng):
        mags = rng.uniform(0, 1, size=10)
        assert select_topk(mags, 0).sum() == 0

    def test_k_exceeding_size_selects_all(self, rng):
        mags = rng.uniform(0, 1, size=10)
        assert select_topk(mags, 99).all()

    def test_ties_resolved_to_exact_budget(self):
        mags = np.array([1.0, 1.0, 1.0, 1.0, 0.5])
        mask = select_topk(mags, 2)
        assert mask.sum() == 2
        assert not mask[4]

    def test_threshold_is_kth_largest(self):
        mags = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        assert topk_threshold(mags, 2) == 4.0

    def test_threshold_edges(self):
        mags = np.array([1.0, 2.0])
        assert topk_threshold(mags, 0) == float("inf")
        assert topk_threshold(mags, 5) == float("-inf")

    @given(
        mags=arrays(
            np.float64,
            st.integers(5, 200),
            elements=st.floats(0, 1e6, allow_nan=False),
        ),
        frac=st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_always_met(self, mags, frac):
        k = max(1, int(len(mags) * frac))
        mask = select_topk(mags, k)
        assert mask.sum() == min(k, len(mags))

    @given(
        mags=arrays(
            np.float64,
            st.integers(5, 100),
            elements=st.floats(0, 100, allow_nan=False),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_selection_dominates_rejection(self, mags):
        k = len(mags) // 2
        mask = select_topk(mags, k)
        if mask.any() and (~mask).any():
            assert mags[mask].min() >= mags[~mask].max() - 1e-12


class TestThresholdTracker:
    def test_initial_threshold_tiny(self):
        tracker = ThresholdTracker(10.0)
        assert tracker.threshold == pytest.approx(1e-6)

    def test_selects_roughly_target_fraction_at_equilibrium(self, rng):
        tracker = ThresholdTracker(5.0, rho=5e-3)
        data = rng.exponential(1.0, size=(40, 4096))
        for burst in data:
            mask = tracker.select(burst)
        fraction = mask.mean()
        assert 0.1 < fraction < 0.45  # target 0.2, estimator lag allowed

    def test_hysteresis_keeps_tracked_weights(self, rng):
        tracker = ThresholdTracker(4.0, hysteresis=0.5)
        # Burn in the threshold.
        for _ in range(30):
            tracker.observe(rng.uniform(0, 1, size=4096))
        theta = tracker.threshold
        mags = np.array([theta * 0.75, theta * 0.75])
        tracked = np.array([True, False])
        mask = tracker.select(mags, tracked)
        assert bool(mask[0]) and not bool(mask[1])

    def test_zero_hysteresis_means_tracked_forever(self, rng):
        tracker = ThresholdTracker(4.0, hysteresis=0.0)
        for _ in range(10):
            tracker.observe(rng.uniform(0, 1, size=1024))
        mask = tracker.select(
            np.array([1e-12]), tracked=np.array([True])
        )
        assert bool(mask[0])

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ValueError):
            ThresholdTracker(4.0, hysteresis=1.5)

    def test_estimator_cycles_advance(self, rng):
        tracker = ThresholdTracker(4.0)
        tracker.observe(rng.uniform(0, 1, size=4000))
        assert tracker.estimator_cycles == 1000

    def test_streaming_adapts_within_pass(self, rng):
        """A pass over two segments with very different scales ends
        with a threshold pulled toward the later segment — the
        per-layer adaptation Figure 7's caption describes."""
        tracker = ThresholdTracker(4.0, rho=5e-3)
        small = rng.uniform(0, 0.01, size=20_000)
        large = rng.uniform(0, 1.0, size=20_000)
        tracker.select(np.concatenate([small, large]))
        assert tracker.threshold > 0.01
