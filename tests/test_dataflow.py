"""Tests for mappings, tiling, load balancing, latency, and energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dataflow.energy_model import layer_phase_energy, network_energy
from repro.dataflow.latency import network_latency
from repro.dataflow.loadbalance import balance_sets, pair_halves, split_halves
from repro.dataflow.mapping import MAPPINGS, allowed_balancing, spatial_dims
from repro.dataflow.simulator import simulate
from repro.dataflow.tiling import build_sets
from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16
from repro.hw.energy import DEFAULT_ENERGY_TABLE
from repro.workloads.layer_spec import conv
from repro.workloads.phases import phase_op
from repro.workloads.sparsity import dense_profile


class TestMapping:
    def test_kn_dims_fw(self):
        op = phase_op(conv("c", c=8, k=32, h=8), "fw", 16)
        m = spatial_dims(op, "KN")
        assert (m.size1, m.size2) == (32, 16)

    def test_kn_dims_bw_swap(self):
        op = phase_op(conv("c", c=8, k=32, h=8), "bw", 16)
        m = spatial_dims(op, "KN")
        assert m.size1 == 8  # backward out-channels = layer C

    def test_pq_dims(self):
        op = phase_op(conv("c", c=8, k=32, h=8, stride=2), "fw", 16)
        m = spatial_dims(op, "PQ")
        assert (m.size1, m.size2) == (4, 4)

    def test_unknown_mapping(self):
        op = phase_op(conv("c", c=8, k=32, h=8), "fw", 16)
        with pytest.raises(ValueError):
            spatial_dims(op, "XY")

    def test_allowed_balancing(self):
        assert allowed_balancing("KN", "fw") == "half"
        assert allowed_balancing("CN", "wu") == "half"
        assert allowed_balancing("CK", "fw") == "perfect"
        assert allowed_balancing("PQ", "fw") == "none"
        assert allowed_balancing("PQ", "wu") == "none"


class TestLoadBalance:
    def test_split_preserves_totals(self, rng):
        work = rng.uniform(1, 100, size=(50, 16))
        halves = split_halves(work, rng)
        np.testing.assert_allclose(
            halves[:, :16] + halves[:, 16:], work
        )

    def test_pair_preserves_totals(self, rng):
        work = rng.uniform(1, 100, size=(50, 16))
        halves = split_halves(work, rng)
        paired = pair_halves(halves)
        np.testing.assert_allclose(
            paired.sum(axis=1), work.sum(axis=1)
        )

    def test_balancing_reduces_max(self, rng):
        # Heavily skewed tiles.
        work = rng.exponential(10.0, size=(200, 16))
        balanced = balance_sets(work, rng)
        assert balanced.max(axis=1).mean() < work.max(axis=1).mean()

    def test_balanced_max_bounded_by_sorted_pairing(self, rng):
        work = rng.uniform(0, 10, size=(100, 8))
        balanced = balance_sets(work, rng)
        # Paired extremes can never exceed the original max + mean.
        assert (balanced.max(axis=1) <= work.max(axis=1) + work.mean(axis=1) + 1e-9).all()

    def test_pair_rejects_odd(self):
        with pytest.raises(ValueError):
            pair_halves(np.ones((3, 5)))

    def test_split_rejects_bad_concentration(self, rng):
        with pytest.raises(ValueError):
            split_halves(np.ones((2, 2)), rng, concentration=0.0)

    @given(
        work=arrays(
            np.float64,
            (20, 16),
            elements=st.floats(0.0, 1e4, allow_nan=False),
        ),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=40, deadline=None)
    def test_balance_invariants(self, work, seed):
        gen = np.random.default_rng(seed)
        balanced = balance_sets(work, gen)
        np.testing.assert_allclose(
            balanced.sum(axis=1), work.sum(axis=1), rtol=1e-9, atol=1e-9
        )
        # max never degrades beyond the unbalanced max.
        assert (balanced.max(axis=1) <= work.max(axis=1) + 1e-9).all()


class TestTiling:
    @pytest.fixture
    def layer_sparsity(self, small_profile):
        return small_profile.layers[1]  # 32 -> 64 conv

    @pytest.mark.parametrize("mapping", MAPPINGS)
    @pytest.mark.parametrize("phase", ["fw", "bw", "wu"])
    def test_dense_macs_conserved(self, layer_sparsity, mapping, phase, rng):
        """Total per-PE work across sets equals the layer's MACs."""
        op = phase_op(layer_sparsity.layer, phase, 32)
        sets = build_sets(
            op, mapping, PROCRUSTES_16x16, layer_sparsity, rng, sparse=False
        )
        assert sets.total_macs() == pytest.approx(op.dense_macs, rel=0.02)

    @pytest.mark.parametrize("mapping", MAPPINGS)
    def test_sparse_macs_scale_with_density(self, layer_sparsity, mapping, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        sets = build_sets(
            op, mapping, PROCRUSTES_16x16, layer_sparsity, rng, sparse=True
        )
        expected = op.dense_macs * layer_sparsity.weight_density
        assert sets.total_macs() == pytest.approx(expected, rel=0.15)

    def test_dense_is_perfectly_balanced(self, layer_sparsity, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        sets = build_sets(
            op, "KN", PROCRUSTES_16x16, layer_sparsity, rng, sparse=False
        )
        assert sets.overheads().max() == pytest.approx(0.0, abs=1e-9)

    def test_sparse_unbalanced_has_overhead(self, layer_sparsity, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        sets = build_sets(
            op, "KN", PROCRUSTES_16x16, layer_sparsity, rng,
            sparse=True, balance="none",
        )
        assert sets.overheads().mean() > 0.02

    def test_half_balancing_reduces_cycles(self, layer_sparsity, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        raw = build_sets(
            op, "KN", PROCRUSTES_16x16, layer_sparsity,
            np.random.default_rng(0), sparse=True, balance="none",
        )
        balanced = build_sets(
            op, "KN", PROCRUSTES_16x16, layer_sparsity,
            np.random.default_rng(0), sparse=True, balance="half",
        )
        assert balanced.total_cycles() < raw.total_cycles()

    def test_perfect_balancing_hits_mean_plus_routing_tax(
        self, layer_sparsity, rng
    ):
        """Chip-wide balancing equalizes work but pays the complex
        interconnect's routing overhead on every set."""
        op = phase_op(layer_sparsity.layer, "fw", 32)
        sets = build_sets(
            op, "CK", PROCRUSTES_16x16, layer_sparsity, rng,
            sparse=True, balance="perfect",
        )
        overheads = sets.overheads()
        assert overheads.max() == pytest.approx(0.10, abs=1e-9)
        assert overheads.min() == pytest.approx(0.10, abs=1e-9)

    def test_pq_fw_naturally_balanced(self, layer_sparsity, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        sets = build_sets(
            op, "PQ", PROCRUSTES_16x16, layer_sparsity, rng, sparse=True
        )
        assert sets.overheads().max() == pytest.approx(0.0, abs=1e-9)

    def test_pq_low_utilization_on_small_outputs(self, rng, small_profile):
        """Section II-C: activation-stationary PQ starves on layers
        with small activation tensors."""
        small_out = small_profile.layers[2]  # 8x8 output
        op = phase_op(small_out.layer, "fw", 32)
        pq = build_sets(op, "PQ", PROCRUSTES_16x16, small_out, rng, sparse=False)
        kn = build_sets(op, "KN", PROCRUSTES_16x16, small_out, rng, sparse=False)
        assert pq.total_cycles() > 2.0 * kn.total_cycles()

    def test_depthwise_ck_starves(self, rng):
        """Depthwise layers leave CK's off-diagonal PEs idle."""
        dw = conv("dw", c=64, k=64, h=8, r=3, groups=64)
        ls = dense_profile("net", [dw]).layers[0]
        op = phase_op(dw, "fw", 32)
        ck = build_sets(op, "CK", PROCRUSTES_16x16, ls, rng, sparse=False)
        kn = build_sets(op, "KN", PROCRUSTES_16x16, ls, rng, sparse=False)
        assert ck.total_cycles() > 1.5 * kn.total_cycles()

    def test_bad_balance_mode(self, layer_sparsity, rng):
        op = phase_op(layer_sparsity.layer, "fw", 32)
        with pytest.raises(ValueError):
            build_sets(
                op, "KN", PROCRUSTES_16x16, layer_sparsity, rng,
                balance="magic",
            )

    def test_small_minibatch_idles_columns(self, layer_sparsity, rng):
        op_small = phase_op(layer_sparsity.layer, "fw", 4)
        sets = build_sets(
            op_small, "KN", PROCRUSTES_16x16, layer_sparsity, rng,
            sparse=False,
        )
        assert sets.total_macs() == pytest.approx(
            op_small.dense_macs, rel=0.02
        )
        # 4 of 16 columns busy: busy_pes per set reflects that.
        assert sets.busy_pes.max() <= 4 * 16


class TestLatencyAndEnergy:
    def test_network_latency_all_phases(self, small_profile):
        lat = network_latency(small_profile, "KN", PROCRUSTES_16x16, 32)
        assert set(lat.cycles) == {"fw", "bw", "wu"}
        assert lat.total_cycles > 0

    def test_sparse_faster_than_dense(self, small_profile, small_specs):
        dense = dense_profile("net", small_specs)
        d = network_latency(dense, "KN", BASELINE_16x16, 32, sparse=False)
        s = network_latency(small_profile, "KN", PROCRUSTES_16x16, 32)
        assert s.total_cycles < d.total_cycles

    def test_energy_breakdown_positive(self, small_profile):
        energy = network_energy(
            small_profile, "KN", PROCRUSTES_16x16, 32, DEFAULT_ENERGY_TABLE
        )
        for phase, breakdown in energy.items():
            assert breakdown.mac_j > 0
            assert breakdown.dram_j > 0
            assert breakdown.total_j > 0

    def test_sparse_saves_energy(self, small_profile, small_specs):
        dense = dense_profile("net", small_specs)
        d = network_energy(
            dense, "KN", BASELINE_16x16, 32, DEFAULT_ENERGY_TABLE,
            sparse=False,
        )
        s = network_energy(
            small_profile, "KN", PROCRUSTES_16x16, 32, DEFAULT_ENERGY_TABLE
        )
        assert sum(e.total_j for e in s.values()) < sum(
            e.total_j for e in d.values()
        )

    def test_energy_nearly_mapping_independent(self, small_profile):
        """The paper's Section VI-D finding."""
        totals = []
        for mapping in MAPPINGS:
            energy = network_energy(
                small_profile, mapping, PROCRUSTES_16x16, 32,
                DEFAULT_ENERGY_TABLE,
            )
            totals.append(sum(e.total_j for e in energy.values()))
        assert max(totals) / min(totals) < 1.25

    def test_procrustes_units_charged_overhead(self, small_profile):
        op = phase_op(small_profile.layers[0].layer, "fw", 32)
        with_units = layer_phase_energy(
            op, "KN", PROCRUSTES_16x16, small_profile.layers[0],
            DEFAULT_ENERGY_TABLE,
        )
        without = layer_phase_energy(
            op, "KN", BASELINE_16x16, small_profile.layers[0],
            DEFAULT_ENERGY_TABLE,
        )
        assert with_units.overhead_j > 0.0
        assert without.overhead_j == 0.0
        # ... and the overhead is negligible (Table III's point).
        assert with_units.overhead_j < 0.02 * with_units.total_j

    def test_simulate_end_to_end(self, small_profile):
        sim = simulate(small_profile, "KN", n=32)
        assert sim.total_cycles > 0
        assert sim.total_energy_j > 0
        assert set(sim.energy_components()) == {
            "DRAM", "GLB", "RF", "MAC", "overhead",
        }

    def test_scaled_array_reduces_cycles(self, small_profile):
        base = simulate(small_profile, "KN", arch=PROCRUSTES_16x16, n=64)
        big = simulate(
            small_profile, "KN", arch=PROCRUSTES_16x16.scaled(2), n=64
        )
        assert big.total_cycles < base.total_cycles

    def test_latency_overheads_collected(self, small_profile):
        lat = network_latency(
            small_profile, "KN", PROCRUSTES_16x16, 32, balance=False
        )
        overheads = lat.overheads("fw")
        assert overheads.size > 0
