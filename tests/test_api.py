"""Tests for repro.api: the experiment registry and RuntimeConfig.

Pins the PR-5 redesign contract: one typed entry point
(``get_experiment(id).run(config)``) that reproduces the direct
harness calls bit-identically, a layered config with precedence
*defaults < REPRO_* env < explicit argument*, ``config_scope()``
restoring all prior state, and **zero** ``os.environ`` reads anywhere
on the library path outside ``RuntimeConfig.from_env``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.api import (
    RuntimeConfig,
    config_scope,
    experiment_for_artifact,
    experiment_ids,
    get_config,
    get_experiment,
    list_experiments,
    set_config,
)
from repro.dataflow import evalcore, sampling

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# RuntimeConfig precedence
# ----------------------------------------------------------------------
class TestRuntimeConfigPrecedence:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.evalcore_memo is True
        assert config.evalcore_memo_size == 512
        assert config.exact_sampling is False
        assert config.campaign_cache_dir is None
        assert config.cache_root is None
        assert config.seed is None
        assert config.executor == "batched"

    def test_env_beats_defaults(self):
        config = RuntimeConfig.from_env(
            environ={
                "REPRO_EVALCORE_MEMO": "0",
                "REPRO_EVALCORE_MEMO_SIZE": "64",
                "REPRO_EXACT_SAMPLING": "1",
                "REPRO_CAMPAIGN_CACHE_DIR": "/tmp/c",
                "REPRO_EVALCORE_CACHE_DIR": "/tmp/e",
                "REPRO_CACHE_ROOT": "/tmp/r",
                "REPRO_EXECUTOR": "serial",
                "REPRO_WORKERS": "3",
            }
        )
        assert config.evalcore_memo is False
        assert config.evalcore_memo_size == 64
        assert config.exact_sampling is True
        assert config.campaign_cache_dir == "/tmp/c"
        assert config.evalcore_cache_dir == "/tmp/e"
        assert config.cache_root == "/tmp/r"
        assert config.executor == "serial"
        assert config.workers == 3

    def test_explicit_argument_beats_env(self):
        config = RuntimeConfig.from_env(
            environ={
                "REPRO_EVALCORE_MEMO": "0",
                "REPRO_EXACT_SAMPLING": "1",
                "REPRO_CAMPAIGN_CACHE_DIR": "/tmp/env-store",
            },
            evalcore_memo=True,
            exact_sampling=False,
            campaign_cache_dir="/tmp/explicit-store",
        )
        assert config.evalcore_memo is True
        assert config.exact_sampling is False
        assert config.campaign_cache_dir == "/tmp/explicit-store"

    def test_real_environment_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_SAMPLING", "1")
        monkeypatch.setenv("REPRO_CAMPAIGN_CACHE_DIR", "somewhere")
        config = RuntimeConfig.from_env()
        assert config.exact_sampling is True
        assert config.campaign_cache_dir == "somewhere"
        # get_config() with no installed config reads the env layer live.
        assert get_config().campaign_cache_dir == "somewhere"

    def test_bad_memo_size_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_EVALCORE_MEMO_SIZE"):
            RuntimeConfig.from_env(
                environ={"REPRO_EVALCORE_MEMO_SIZE": "lots"}
            )

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            RuntimeConfig(executor="threads")

    def test_cache_root_derives_tiers(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        assert config.effective_evalcore_cache_dir() == str(
            tmp_path / "evalcore"
        )
        assert config.effective_campaign_cache_dir() == str(
            tmp_path / "campaign"
        )
        assert config.sweep_cache().root == tmp_path

    def test_specific_dirs_beat_cache_root(self, tmp_path):
        config = RuntimeConfig(
            cache_root=str(tmp_path),
            evalcore_cache_dir="/tmp/ec",
            campaign_cache_dir="/tmp/cc",
        )
        assert config.effective_evalcore_cache_dir() == "/tmp/ec"
        assert config.effective_campaign_cache_dir() == "/tmp/cc"

    def test_memo_enabled_conventions(self):
        assert RuntimeConfig().memo_enabled
        assert not RuntimeConfig(evalcore_memo=False).memo_enabled
        assert not RuntimeConfig(evalcore_memo_size=0).memo_enabled


# ----------------------------------------------------------------------
# serve knobs
# ----------------------------------------------------------------------
class TestServeKnobs:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.serve_socket is None
        assert config.serve_workers is None

    def test_env_layer(self):
        config = RuntimeConfig.from_env(
            environ={
                "REPRO_SERVE_SOCKET": "/tmp/serve.sock",
                "REPRO_SERVE_WORKERS": "4",
            }
        )
        assert config.serve_socket == "/tmp/serve.sock"
        assert config.serve_workers == 4

    def test_explicit_beats_env(self):
        config = RuntimeConfig.from_env(
            environ={
                "REPRO_SERVE_SOCKET": "/tmp/env.sock",
                "REPRO_SERVE_WORKERS": "4",
            },
            serve_socket="/tmp/explicit.sock",
            serve_workers=2,
        )
        assert config.serve_socket == "/tmp/explicit.sock"
        assert config.serve_workers == 2

    def test_serve_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="serve_workers"):
            RuntimeConfig(serve_workers=0)

    def test_bad_serve_workers_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_SERVE_WORKERS"):
            RuntimeConfig.from_env(environ={"REPRO_SERVE_WORKERS": "many"})

    def test_server_resolves_knobs_from_config(self, tmp_path):
        from repro.serve import Server

        config = RuntimeConfig(
            cache_root=str(tmp_path),
            serve_socket=str(tmp_path / "knob.sock"),
            serve_workers=3,
        )
        server = Server(config)
        assert server.socket_path == str(tmp_path / "knob.sock")
        assert server.workers == 3
        # argument beats config, cache_root derives the default socket
        assert Server(config, workers=1).workers == 1
        derived = Server(RuntimeConfig(cache_root=str(tmp_path)))
        assert derived.socket_path == str(tmp_path / "serve.sock")


# ----------------------------------------------------------------------
# config_scope / set_config
# ----------------------------------------------------------------------
class TestConfigScope:
    def test_scope_installs_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CACHE_DIR", "outer")
        scoped_config = RuntimeConfig(campaign_cache_dir="inner")
        assert get_config().campaign_cache_dir == "outer"
        with config_scope(scoped_config) as active:
            assert active is scoped_config
            assert get_config() is scoped_config
        assert get_config().campaign_cache_dir == "outer"

    def test_scope_overrides_layer_on_current(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CACHE_DIR", "from-env")
        with config_scope(exact_sampling=True) as active:
            assert active.exact_sampling is True
            # untouched fields keep the env layer
            assert active.campaign_cache_dir == "from-env"

    def test_scopes_nest(self):
        with config_scope(cache_root="/tmp/a"):
            assert get_config().cache_root == "/tmp/a"
            with config_scope(cache_root="/tmp/b"):
                assert get_config().cache_root == "/tmp/b"
            assert get_config().cache_root == "/tmp/a"

    def test_set_config_round_trips(self):
        config = RuntimeConfig(seed=7)
        previous = set_config(config)
        try:
            assert get_config() is config
        finally:
            set_config(previous)
        assert get_config() is not config

    def test_scope_restores_explicit_memo_state(self):
        """An explicitly disabled memo is overridden inside the scope
        (the scoped config governs) and restored exactly on exit."""
        original = evalcore.set_memo(None)
        try:
            with config_scope(RuntimeConfig()):
                assert evalcore.get_memo() is not None
            assert evalcore.get_memo() is None
        finally:
            evalcore.set_memo(original)

    def test_scope_restores_sampling_override(self):
        previous = sampling.set_exact_sampling(True)
        try:
            with config_scope(RuntimeConfig(exact_sampling=False)):
                assert sampling.exact_sampling() is False
            assert sampling.exact_sampling() is True
        finally:
            sampling.set_exact_sampling(previous)

    def test_scope_drives_derived_memo(self, tmp_path):
        with config_scope(evalcore_memo=False):
            assert evalcore.get_memo() is None
        with config_scope(cache_root=str(tmp_path)):
            memo = evalcore.get_memo()
            assert memo is not None
            assert memo._disk is not None
        assert evalcore.get_memo() is not None

    def test_scope_drives_sampling_mode(self):
        assert sampling.exact_sampling() is False
        with config_scope(exact_sampling=True):
            assert sampling.exact_sampling() is True
        assert sampling.exact_sampling() is False


# ----------------------------------------------------------------------
# config-derived memos
# ----------------------------------------------------------------------
class TestMemoForConfig:
    def test_equal_configs_share_one_memo(self, tmp_path):
        a = RuntimeConfig(cache_root=str(tmp_path))
        b = RuntimeConfig(cache_root=str(tmp_path))
        assert evalcore.memo_for_config(a) is evalcore.memo_for_config(b)

    def test_disabled_config_gets_none(self):
        assert evalcore.memo_for_config(
            RuntimeConfig(evalcore_memo=False)
        ) is None
        assert evalcore.memo_for_config(
            RuntimeConfig(evalcore_memo_size=0)
        ) is None

    def test_evaluate_network_accepts_config(self, small_profile, tmp_path):
        from repro.hw.config import PROCRUSTES_16x16

        config = RuntimeConfig(cache_root=str(tmp_path))
        evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, config=config
        )
        memo = evalcore.memo_for_config(config)
        assert memo.stats.stores > 0
        assert (tmp_path / "evalcore").exists()

    def test_simulate_config_exact_matches_sampling_mode(
        self, small_profile
    ):
        from repro.dataflow.simulator import simulate

        via_config = simulate(
            small_profile, "KN", n=32,
            config=RuntimeConfig(exact_sampling=True),
        )
        with sampling.sampling_mode(exact=True):
            via_override = simulate(small_profile, "KN", n=32)
        fast = simulate(small_profile, "KN", n=32)
        assert via_config.total_cycles == via_override.total_cycles
        assert via_config.total_energy_j == via_override.total_energy_j
        assert fast.total_cycles != via_config.total_cycles


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_ids_are_unique_and_known(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids))
        assert {"table2", "table3", "fig01", "fig18-19", "fig20"} <= set(ids)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_family_filter(self):
        arch = list_experiments("arch")
        assert [e.id for e in arch] == [
            "fig01", "fig05", "fig13", "fig17", "fig18-19", "fig20"
        ]
        assert all(e.family == "arch" for e in arch)

    def test_artifact_resolution(self):
        assert experiment_for_artifact("Figure 18").id == "fig18-19"
        assert experiment_for_artifact("Figure 19").id == "fig18-19"
        assert experiment_for_artifact("Table II").id == "table2"
        with pytest.raises(KeyError, match="no registered experiment"):
            experiment_for_artifact("Figure 42")

    def test_run_and_format_table3(self):
        experiment = get_experiment("table3")
        result = experiment.run(RuntimeConfig())
        text = experiment.format(result)
        assert "Table III" in text and "area overhead" in text

    def test_export_requires_schema(self):
        with pytest.raises(ValueError, match="export schema"):
            get_experiment("eager-comparison").export(None, None)


class TestBitIdentity:
    """The acceptance criterion: registry dispatch == direct call."""

    def test_fig18_19_bit_identical(self):
        from repro.harness import arch_experiments

        run_fig18_fig19_dataflows = arch_experiments.entry_point(
            "run_fig18_fig19_dataflows"
        )
        direct = run_fig18_fig19_dataflows(networks=("vgg-s",))
        via_registry = get_experiment("fig18-19").run(
            RuntimeConfig(), networks=("vgg-s",)
        )
        assert via_registry.rows == direct.rows

    def test_table2_bit_identical(self):
        from repro.harness.tables import run_table2

        direct = run_table2(networks=("resnet18",), with_training=False)
        via_registry = get_experiment("table2").run(
            RuntimeConfig(), networks=("resnet18",)
        )
        assert via_registry.rows == direct.rows

    def test_seed_override_applies(self):
        from repro.harness import arch_experiments

        run_imbalance_histogram = arch_experiments.entry_point(
            "run_imbalance_histogram"
        )
        direct = run_imbalance_histogram("vgg-s", "CK", False, seed=3)
        via_registry = get_experiment("fig05").run(RuntimeConfig(seed=3))
        assert via_registry.fractions == direct.fractions


# ----------------------------------------------------------------------
# registry completeness against the docs figure index
# ----------------------------------------------------------------------
class TestRegistryCompleteness:
    #: "| Figure 18 | ..." / "| Table II | ..." rows of the first table.
    _ARTIFACT_ROW = re.compile(r"^\|\s*((?:Figure|Table)\s+[\dIVX]+)\s*\|", re.M)

    def test_every_figure_index_artifact_resolves(self):
        text = (REPO_ROOT / "docs" / "figure-index.md").read_text()
        artifacts = self._ARTIFACT_ROW.findall(text)
        assert len(artifacts) >= 15  # the paper's evaluation catalogue
        unresolved = []
        for artifact in artifacts:
            try:
                experiment_for_artifact(artifact)
            except KeyError:
                unresolved.append(artifact)
        assert not unresolved, (
            f"figure-index artifacts without a registered experiment: "
            f"{unresolved}"
        )

    def test_every_registry_id_mentioned_in_figure_index(self):
        """The reverse direction: the catalogue is documented."""
        text = (REPO_ROOT / "docs" / "figure-index.md").read_text()
        missing = [
            e.id for e in list_experiments() if f"`{e.id}`" not in text
        ]
        assert not missing, f"registry ids absent from figure-index: {missing}"


# ----------------------------------------------------------------------
# zero os.environ reads on the library path
# ----------------------------------------------------------------------
class TestNoEnvReadsOnLibraryPath:
    #: Files allowed to *mention* os.environ: the single read point and
    #: package docstrings describing the contract.
    ALLOWED = {
        Path("src/repro/api/config.py"),
        Path("src/repro/api/__init__.py"),
    }

    def test_env_consulted_only_in_from_env(self):
        offenders = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            if relative in self.ALLOWED:
                continue
            text = path.read_text()
            if "os.environ" in text or "os.getenv" in text:
                offenders.append(str(relative))
        assert not offenders, (
            f"library modules reading (or naming) os.environ: {offenders}; "
            "env layering belongs in RuntimeConfig.from_env only"
        )


# ----------------------------------------------------------------------
# the argparse CLI
# ----------------------------------------------------------------------
class TestCli:
    def _main(self, *args):
        from repro.harness.__main__ import main

        return main(["harness", *args])

    def test_unknown_subcommand_exits_2_with_usage(self, capsys):
        assert self._main("definitely-not-a-command") == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_help_and_version_exit_0(self, capsys):
        assert self._main("--help") == 0
        out = capsys.readouterr().out
        assert "run" in out and "list" in out and "campaign" in out
        assert self._main("-h") == 0
        capsys.readouterr()
        assert self._main("--version") == 0
        assert "repro" in capsys.readouterr().out

    def test_list_prints_catalogue(self, capsys):
        assert self._main("list") == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out

    def test_list_family_filter(self, capsys):
        assert self._main("list", "--family", "tables") == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig01" not in out

    def test_explore_accepts_executor_and_workers(self, tmp_path, capsys):
        code = self._main(
            "explore", "8", "random",
            "--cache-dir", str(tmp_path / "cache"),
            "--executor", "serial", "--workers", "1",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executor=serial" in out

    def test_explore_rejects_unknown_executor(self, capsys):
        assert self._main("explore", "--executor", "threads") == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_run_dispatches_through_registry(self, capsys):
        assert self._main("run", "table3") == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "area overhead" in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert self._main("run", "fig99") == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_run_with_export(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert self._main("run", "table3", "--export", str(out_dir)) == 0
        assert (out_dir / "table3" / "record.json").exists()

    def test_run_export_without_schema_fails_before_running(
        self, tmp_path, capsys
    ):
        code = self._main(
            "run", "eager-comparison", "--export", str(tmp_path / "out")
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "export schema" in out
        # Failed up front: no banner means the experiment never ran.
        assert "Eager Pruning" not in out

    def test_run_respects_cache_dir(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert self._main("run", "fig05", "--cache-dir", str(cache)) == 0
        assert (cache / "evalcore").exists()  # the derived tier filled

    def test_bad_flag_value_exits_2(self, capsys):
        assert self._main("run", "fig05", "--seed", "not-a-number") == 2

    def test_legacy_family_invocation_still_works(self, capsys):
        assert self._main("tables") == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out


# ----------------------------------------------------------------------
# config threading through the sweep runner
# ----------------------------------------------------------------------
class TestSweepRunnerConfig:
    def test_evaluate_point_installs_config(self):
        from repro.sweep.runner import _evaluate_point

        def probe(*, seed, **params):
            return {"cache_root": get_config().cache_root or ""}

        values, _ = _evaluate_point(
            probe, {}, 0, RuntimeConfig(cache_root="/tmp/threaded")
        )
        assert values["cache_root"] == "/tmp/threaded"
        # Without a config the prior behavior (ambient state) holds.
        values, _ = _evaluate_point(probe, {}, 0)
        assert values["cache_root"] == ""

    def test_run_sweep_threads_config(self, tmp_path):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec.grid(
            "api-config-thread", "simulate",
            {"mapping": ["KN"]},
            fixed={"network": "vgg-s", "sparse": True},
        )
        config = RuntimeConfig(cache_root=str(tmp_path))
        result = run_sweep(spec, config=config)
        assert result.points[0].values["total_cycles"] > 0
        # The evaluator ran under the config: its evalcore tier filled.
        assert (tmp_path / "evalcore").exists()

    def test_run_explore_honors_config_executor(self, monkeypatch):
        """A config's fan-out policy survives run_explore's parameter
        defaults (None = keep the config's value)."""
        import repro.harness.explore_experiments as explore_experiments

        captured = {}

        class FakeExplorer:
            def __init__(self, **kwargs):
                captured.update(kwargs)

            def run(self, *args, **kwargs):
                return "sentinel"

        monkeypatch.setattr(
            explore_experiments, "Explorer", FakeExplorer
        )
        result = explore_experiments.run_explore(
            budget=2,
            config=RuntimeConfig(executor="process", workers=3),
        )
        assert result == "sentinel"
        assert captured["executor"] == "process"
        assert captured["workers"] == 3
        # An explicit argument still wins over the config.
        explore_experiments.run_explore(
            budget=2,
            executor="serial",
            config=RuntimeConfig(executor="process", workers=3),
        )
        assert captured["executor"] == "serial"


# ----------------------------------------------------------------------
# TrajectoryStore resolution through the config
# ----------------------------------------------------------------------
class TestTrajectoryStoreFromConfig:
    def test_cache_root_derives_campaign_tier(self, tmp_path):
        from repro.campaign.trajectory import TrajectoryStore

        store = TrajectoryStore.from_config(
            RuntimeConfig(cache_root=str(tmp_path))
        )
        assert store.root == tmp_path / "campaign"

    def test_unconfigured_is_none(self):
        from repro.campaign.trajectory import TrajectoryStore

        assert TrajectoryStore.from_config(RuntimeConfig()) is None

    def test_active_config_governs_from_env_alias(self, tmp_path):
        from repro.campaign.trajectory import TrajectoryStore

        with config_scope(campaign_cache_dir=str(tmp_path / "s")):
            store = TrajectoryStore.from_env()
            assert store is not None and store.root == tmp_path / "s"
