"""Cross-module property tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import InitialWeightDecay
from repro.core.quantile import DumiqueEstimator
from repro.dataflow.energy_model import layer_phase_energy
from repro.dataflow.tiling import build_sets
from repro.hw.config import PROCRUSTES_16x16
from repro.hw.energy import DEFAULT_ENERGY_TABLE
from repro.hw.prng import xorshift32
from repro.nn import functional as F
from repro.sparse.csb import CSBTensor
from repro.workloads.layer_spec import conv
from repro.workloads.phases import phase_op
from repro.workloads.sparsity import LayerSparsity


def layer_sparsity(density: float, act: float = 0.5) -> LayerSparsity:
    layer = conv("c", c=16, k=32, h=8, r=3)
    return LayerSparsity(
        layer=layer,
        weight_density=density,
        out_channel_density=np.full(32, density),
        in_channel_density=np.full(16, density),
        iact_density=act,
    )


class TestEnergyProperties:
    @given(
        d1=st.floats(0.05, 0.5),
        d2=st.floats(0.55, 1.0),
        phase=st.sampled_from(["fw", "bw", "wu"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_monotone_in_density(self, d1, d2, phase):
        """More surviving weights can never cost less energy."""
        op_lo = phase_op(layer_sparsity(d1).layer, phase, 16)
        lo = layer_phase_energy(
            op_lo, "KN", PROCRUSTES_16x16,
            layer_sparsity(d1, act=d1), DEFAULT_ENERGY_TABLE,
        )
        hi = layer_phase_energy(
            op_lo, "KN", PROCRUSTES_16x16,
            layer_sparsity(d2, act=d2), DEFAULT_ENERGY_TABLE,
        )
        assert lo.total_j <= hi.total_j

    @given(
        density=st.floats(0.05, 1.0),
        mapping=st.sampled_from(["PQ", "CK", "CN", "KN"]),
        phase=st.sampled_from(["fw", "bw", "wu"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_components_nonnegative(self, density, mapping, phase):
        ls = layer_sparsity(density)
        op = phase_op(ls.layer, phase, 16)
        energy = layer_phase_energy(
            op, mapping, PROCRUSTES_16x16, ls, DEFAULT_ENERGY_TABLE
        )
        for value in energy.as_dict().values():
            assert value >= 0.0


class TestTilingProperties:
    @given(
        density=st.floats(0.05, 1.0),
        seed=st.integers(0, 500),
        mapping=st.sampled_from(["PQ", "CK", "CN", "KN"]),
        phase=st.sampled_from(["fw", "bw", "wu"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_max_at_least_mean(self, density, seed, mapping, phase):
        ls = layer_sparsity(density)
        op = phase_op(ls.layer, phase, 16)
        sets = build_sets(
            op, mapping, PROCRUSTES_16x16, ls,
            np.random.default_rng(seed), sparse=True,
        )
        assert (sets.max_work >= sets.mean_work - 1e-9).all()
        assert (sets.overheads() >= -1e-9).all()

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_cycles_bounded_by_serial_execution(self, seed):
        """Latency can never exceed one PE doing all the work."""
        ls = layer_sparsity(0.3)
        op = phase_op(ls.layer, "fw", 16)
        sets = build_sets(
            op, "KN", PROCRUSTES_16x16, ls,
            np.random.default_rng(seed), sparse=True,
        )
        assert sets.total_cycles() <= sets.total_macs() + 1e-6


class TestQuantileProperties:
    @given(
        scale=st.floats(0.01, 100.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=25, deadline=None)
    def test_scale_equivariance(self, scale, seed):
        """DUMIQUE is multiplicative: scaling data and the initial
        estimate by c scales the whole trajectory by c."""
        gen = np.random.default_rng(seed)
        data = gen.uniform(0.1, 1.0, size=500)
        a = DumiqueEstimator(0.8, initial=0.5)
        b = DumiqueEstimator(0.8, initial=0.5 * scale)
        for value in data:
            a.update(float(value))
            b.update(float(value * scale))
        assert b.estimate == pytest.approx(a.estimate * scale, rel=1e-9)


class TestDecayProperties:
    @given(
        lam=st.floats(0.5, 0.99),
        a=st.integers(0, 100),
        b=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiplier_is_geometric(self, lam, a, b):
        decay = InitialWeightDecay(decay=lam, zero_after=10**6)
        assert decay.multiplier(a + b) == pytest.approx(
            decay.multiplier(a) * decay.multiplier(b), rel=1e-9
        )


class TestConvProperties:
    @given(
        seed=st.integers(0, 100),
        alpha=st.floats(-2.0, 2.0),
        beta=st.floats(-2.0, 2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_linearity_in_input(self, seed, alpha, beta):
        gen = np.random.default_rng(seed)
        x1 = gen.normal(size=(2, 3, 6, 6))
        x2 = gen.normal(size=(2, 3, 6, 6))
        w = gen.normal(size=(4, 3, 3, 3))
        lhs, _ = F.conv2d(alpha * x1 + beta * x2, w, padding=1)
        y1, _ = F.conv2d(x1, w, padding=1)
        y2, _ = F.conv2d(x2, w, padding=1)
        np.testing.assert_allclose(lhs, alpha * y1 + beta * y2, atol=1e-9)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_weight_grad_matches_cached_backward(self, seed):
        gen = np.random.default_rng(seed)
        x = gen.normal(size=(2, 3, 6, 6))
        w = gen.normal(size=(4, 3, 3, 3))
        y, cache = F.conv2d(x, w, padding=1)
        dy = gen.normal(size=y.shape)
        _, ref_dw, _ = F.conv2d_backward(dy, cache)
        standalone = F.conv2d_weight_grad(x, dy, (3, 3), padding=1)
        np.testing.assert_allclose(standalone, ref_dw, atol=1e-10)


class TestSparseProperties:
    @given(
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=30, deadline=None)
    def test_storage_monotone_in_density(self, density, seed):
        gen = np.random.default_rng(seed)
        base = gen.normal(size=(8, 4, 3, 3))
        sparse = base * (gen.uniform(size=base.shape) < density)
        a = CSBTensor.from_dense(sparse)
        b = CSBTensor.from_dense(base)
        assert a.total_storage_bits() <= b.total_storage_bits()

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_rotation_preserves_nnz_and_pointers(self, seed):
        gen = np.random.default_rng(seed)
        dense = gen.normal(size=(4, 4, 3, 3))
        dense[gen.uniform(size=dense.shape) > 0.4] = 0.0
        csb = CSBTensor.from_dense(dense)
        rotated = csb.rotate_180()
        assert rotated.nnz == csb.nnz
        np.testing.assert_array_equal(rotated.pointers, csb.pointers)


class TestPrngProperties:
    @given(seed=st.integers(1, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_xorshift_is_injective_on_batch(self, seed):
        gen = np.random.default_rng(seed)
        states = gen.integers(1, 2**32, size=1000, dtype=np.uint32)
        states = np.unique(states)
        out = xorshift32(states)
        assert len(np.unique(out)) == len(states)


class TestLoadBalanceProperties:
    @given(
        seed=st.integers(0, 1000),
        n_sets=st.integers(1, 8),
        width=st.integers(2, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_balancing_preserves_totals_and_helps(self, seed, n_sets, width):
        from repro.dataflow.loadbalance import balance_sets

        gen = np.random.default_rng(seed)
        work = gen.integers(0, 1000, size=(n_sets, width)).astype(float)
        balanced = balance_sets(work, gen)
        np.testing.assert_allclose(
            balanced.sum(axis=-1), work.sum(axis=-1), rtol=1e-12
        )
        # Pairing sorted halves can never make the maximum worse than
        # the unbalanced tile maximum plus its own other half.
        assert (balanced.max(axis=-1) <= work.max(axis=-1) + 1e-9).all()


class TestScheduleProperties:
    @given(
        fraction=st.floats(0.05, 0.5),
        interval=st.integers(10, 1000),
        factor=st.floats(1.5, 20.0),
        total=st.integers(10, 5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_average_between_extremes(self, fraction, interval, factor, total):
        from repro.core.schedules import StepwisePruning

        sched = StepwisePruning(
            name="p", prune_fraction=fraction, interval=interval,
            target_factor=factor,
        )
        curve = sched.density_curve(total)
        avg = sched.average_density(total)
        assert curve.min() - 1e-12 <= avg <= curve.max() + 1e-12
        # Density never increases over time for pruning schedules.
        assert (np.diff(curve) <= 1e-12).all()

    @given(
        factor=st.floats(1.0, 50.0),
        total=st.integers(1, 2000),
        switch=st.floats(0.05, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_switch_iteration_consistent(self, factor, total, switch):
        from repro.core.schedules import ConstantSparsity

        sched = ConstantSparsity(name="d", sparsity_factor=factor)
        t = sched.format_switch_iteration(total, switch_density=switch)
        if t is None:
            assert sched.storage_density(0) >= switch
        else:
            assert sched.storage_density(t) < switch


class TestRivalFormatProperties:
    @given(
        rows=st.integers(4, 32),
        cols=st.integers(2, 12),
        seed=st.integers(0, 2**31),
        density=st.floats(0.05, 0.6),
    )
    @settings(max_examples=25, deadline=None)
    def test_eie_backward_never_cheaper_than_forward(
        self, rows, cols, seed, density
    ):
        from repro.sparse.rivals import access_costs

        gen = np.random.default_rng(seed)
        dense = gen.normal(size=(rows, cols))
        dense[gen.uniform(size=dense.shape) > density] = 0.0
        table = access_costs(dense)
        csb, eie = table
        assert csb.backward == csb.forward
        assert eie.backward >= eie.forward or eie.forward == 0


class TestCycleSimProperties:
    @given(seed=st.integers(0, 500), n=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_double_buffering_never_hurts(self, seed, n):
        from repro.hw.config import ArchConfig
        from repro.hw.cyclesim import CycleLevelSimulator, FabricConfig

        gen = np.random.default_rng(seed)
        mask = gen.uniform(size=(6, 6, 3, 3)) < 0.3
        arch = ArchConfig(name="t", pe_rows=4, pe_cols=4,
                          rf_bytes_per_pe=1 << 20)
        double = CycleLevelSimulator(arch, FabricConfig())
        single = CycleLevelSimulator(
            arch, FabricConfig(double_buffered=False)
        )
        fast = double.run_conv(mask, p=4, q=4, n=n, mapping="KN")
        slow = single.run_conv(mask, p=4, q=4, n=n, mapping="KN")
        assert fast.cycles <= slow.cycles + 1e-9
