"""Grouped/depthwise convolution support in the behavioural engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import ArchConfig
from repro.hw.engine import SparseTrainingEngine
from repro.nn import functional as F
from repro.sparse.csb import CSBTensor


@pytest.fixture
def engine():
    return SparseTrainingEngine(ArchConfig(name="t", pe_rows=4, pe_cols=4))


def sparse_weight(rng, shape, density=0.5):
    w = rng.normal(size=shape)
    w[rng.uniform(size=shape) > density] = 0.0
    return w


class TestGroupedPhases:
    @pytest.mark.parametrize("groups,c,k", [(2, 8, 6), (4, 8, 8), (8, 8, 8)])
    def test_forward_matches_substrate(self, rng, engine, groups, c, k):
        w = sparse_weight(rng, (k, c // groups, 3, 3))
        x = rng.normal(size=(2, c, 8, 8))
        expect, _ = F.conv2d(x, w, padding=1, groups=groups)
        y = engine.forward(x, CSBTensor.from_dense(w),
                           padding=1, groups=groups).tensor
        np.testing.assert_allclose(y, expect, rtol=1e-12)

    @pytest.mark.parametrize("groups,c,k", [(2, 8, 6), (4, 8, 8), (8, 8, 8)])
    def test_backward_matches_autograd(self, rng, engine, groups, c, k):
        w = sparse_weight(rng, (k, c // groups, 3, 3))
        x = rng.normal(size=(2, c, 8, 8))
        y, cache = F.conv2d(x, w, padding=1, groups=groups)
        dout = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dout, cache)
        dx = engine.backward(dout, CSBTensor.from_dense(w),
                             padding=1, groups=groups).tensor
        np.testing.assert_allclose(dx, ref_dx, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("groups,c,k", [(2, 8, 6), (8, 8, 8)])
    def test_weight_update_matches_autograd(self, rng, engine, groups, c, k):
        w = sparse_weight(rng, (k, c // groups, 3, 3))
        x = rng.normal(size=(2, c, 8, 8))
        y, cache = F.conv2d(x, w, padding=1, groups=groups)
        dout = rng.normal(size=y.shape)
        _, ref_dw, _ = F.conv2d_backward(dout, cache)
        wu, _, _ = engine.weight_update(
            x, dout, CSBTensor.from_dense(w), padding=1, groups=groups
        )
        np.testing.assert_allclose(wu.tensor, ref_dw, rtol=1e-10)

    def test_depthwise_strided_combination(self, rng, engine):
        # MobileNet's downsampling depthwise layers: groups=C, stride 2.
        c = 8
        w = sparse_weight(rng, (c, 1, 3, 3))
        x = rng.normal(size=(2, c, 9, 9))
        y, cache = F.conv2d(x, w, stride=2, padding=1, groups=c)
        dout = rng.normal(size=y.shape)
        ref_dx, ref_dw, _ = F.conv2d_backward(dout, cache)
        csb = CSBTensor.from_dense(w)
        dx = engine.backward(
            dout, csb, padding=1, stride=2, groups=c, input_hw=(9, 9)
        ).tensor
        np.testing.assert_allclose(dx, ref_dx, rtol=1e-10, atol=1e-12)
        wu, _, _ = engine.weight_update(
            x, dout, csb, padding=1, stride=2, groups=c
        )
        np.testing.assert_allclose(wu.tensor, ref_dw, rtol=1e-10)


@settings(max_examples=15, deadline=None)
@given(
    groups=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 2**31),
    stride=st.integers(1, 2),
)
def test_grouped_backward_property(groups, seed, stride):
    rng = np.random.default_rng(seed)
    c = k = 8
    w = rng.normal(size=(k, c // groups, 3, 3))
    w[rng.uniform(size=w.shape) > 0.5] = 0.0
    x = rng.normal(size=(2, c, 8, 8))
    y, cache = F.conv2d(x, w, stride=stride, padding=1, groups=groups)
    dout = rng.normal(size=y.shape)
    ref_dx, _, _ = F.conv2d_backward(dout, cache)
    engine = SparseTrainingEngine(ArchConfig(name="t", pe_rows=4, pe_cols=4))
    dx = engine.backward(
        dout, CSBTensor.from_dense(w), padding=1, stride=stride,
        groups=groups, input_hw=(8, 8),
    ).tensor
    np.testing.assert_allclose(dx, ref_dx, rtol=1e-9, atol=1e-11)
