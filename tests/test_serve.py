"""The evaluation service: envelope, dedup, caching, concurrency, chaos.

Covers the acceptance criteria for ``repro.serve``:

* the typed request/result envelope round-trips through its canonical
  wire codec and rejects newer schemas;
* served results are bit-identical (canonical JSON) to direct
  ``run_sweep`` / registry runs of the same work, and share cache
  entries with them point-for-point;
* overlapping submissions from concurrent client *processes* never
  evaluate the same request twice (``duplicate_hit_rate >= 0.99``);
* shutdown is clean with jobs in flight (drained or failed, never
  hung), including under injected worker crashes (both the inline
  ``InjectedWorkerCrash`` and the hard ``os._exit`` ->
  ``BrokenProcessPool`` -> respawn/requeue path).
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.api import (
    RuntimeConfig,
    evaluate,
    evaluate_requests,
    experiment_request,
    get_experiment,
    point_request,
)
from repro.api.envelope import EvalRequest, EvalResult, JobStatus
from repro.report.export import _jsonable
from repro.serve import Client, InProcessClient, Server, wait_for_server
from repro.serve.jobs import JobTable, ServeStats
from repro.serve.protocol import ProtocolError, decode, encode
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.cache import CacheStats, ResultCache
from repro.sweep.spec import canonical_json


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_request_round_trips_through_wire(self):
        request = point_request("echo", {"x": 1, "nested": {"b": [1, 2]}}, seed=3)
        clone = EvalRequest.from_wire(request.to_wire())
        assert clone == request
        assert clone.digest() == request.digest()

    def test_digest_is_canonical_param_order_invariant(self):
        a = point_request("echo", {"x": 1, "y": 2})
        b = point_request("echo", {"y": 2, "x": 1})
        assert a.digest() == b.digest()

    def test_seed_distinguishes_requests(self):
        assert (
            point_request("echo", {"x": 1}, seed=0).digest()
            != point_request("echo", {"x": 1}, seed=1).digest()
        )
        # seed=None and seed=0 differ as requests (experiment semantics
        # differ) even though point_seed coincides.
        assert (
            point_request("echo", {"x": 1}).digest()
            != point_request("echo", {"x": 1}, seed=0).digest()
        )

    def test_newer_schema_rejected_with_clear_error(self):
        wire = point_request("echo", {}).to_wire()
        wire["schema"] = 99
        with pytest.raises(ValueError, match="newer"):
            EvalRequest.from_wire(wire)
        with pytest.raises(ValueError, match="newer"):
            EvalResult.from_wire({"schema": 99, "status": "ok", "values": {}})
        with pytest.raises(ValueError, match="newer"):
            JobStatus.from_wire({"schema": 99, "job_id": "j", "state": "done"})

    def test_request_validation(self):
        with pytest.raises(ValueError, match="kind"):
            EvalRequest(kind="nope", target="echo")
        with pytest.raises(ValueError, match="target"):
            EvalRequest(kind="point", target="")
        with pytest.raises(ValueError, match="seed"):
            EvalRequest(kind="point", target="echo", seed="seven")

    def test_result_validation_and_canonical_excludes_provenance(self):
        with pytest.raises(ValueError, match="values"):
            EvalResult(request_digest="d", status="ok")
        with pytest.raises(ValueError, match="error"):
            EvalResult(request_digest="d", status="error")
        fresh = EvalResult(request_digest="d", status="ok", values={"a": 1})
        cached = fresh.with_provenance(cached=True, wall_time_s=4.2)
        assert cached.cached and cached.wall_time_s == 4.2
        # cache/timing provenance never breaks bit-identity
        assert fresh.canonical() == cached.canonical()

    def test_status_round_trip(self):
        status = JobStatus(job_id="job-1", state="running",
                           request_digest="d", queue_depth=2)
        assert JobStatus.from_wire(status.to_wire()) == status

    def test_protocol_frames(self):
        frame = decode(encode({"op": "submit", "id": "c1"}))
        assert frame == {"op": "submit", "id": "c1"}
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode(b"{}\n")


# ----------------------------------------------------------------------
# CacheStats aggregation API (the per-process accounting fix)
# ----------------------------------------------------------------------
class TestCacheStatsAggregation:
    def test_snapshot_diff(self):
        stats = CacheStats(hits=3, misses=2, stores=2)
        before = stats.snapshot()
        stats.hits += 4
        stats.stores += 1
        delta = stats.diff(before)
        assert delta.as_dict() == {
            "hits": 4, "misses": 0, "stores": 1, "corrupt": 0,
        }
        # diff(None) is "since zero"
        assert stats.diff(None).as_dict() == stats.as_dict()

    def test_merge_accepts_instances_and_dicts(self):
        total = CacheStats(hits=1)
        total.merge(CacheStats(hits=2, misses=5))
        total.merge({"hits": 3, "corrupt": 1, "unknown_counter": 9})
        assert total.as_dict() == {
            "hits": 6, "misses": 5, "stores": 0, "corrupt": 1,
        }

    def test_round_trip_and_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert CacheStats.from_dict(stats.as_dict()) == stats
        assert stats.hit_rate() == pytest.approx(0.75)
        assert CacheStats().hit_rate() == 1.0


# ----------------------------------------------------------------------
# in-process evaluation over the envelope
# ----------------------------------------------------------------------
class TestEvaluate:
    def test_point_request_bit_identical_to_run_sweep(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path / "serve"))
        points = [{"x": 1}, {"x": 2}, {"x": 3}]
        requests = [point_request("echo", p, seed=5) for p in points]
        results, accounting = evaluate_requests(requests, config=config)
        spec = SweepSpec.explicit(
            "direct", "echo", points, base_seed=5, seed_mode="fixed"
        )
        direct = run_sweep(
            spec, cache=ResultCache(tmp_path / "direct"),
            config=RuntimeConfig(cache_root=str(tmp_path / "direct")),
        )
        for served, point in zip(results, direct.points):
            assert served.ok and not served.cached
            assert canonical_json(dict(served.values)) == canonical_json(
                dict(point.values)
            )
        assert accounting["sweep_cache"]["stores"] == 3

    def test_shares_cache_entries_with_direct_sweeps(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        evaluate(point_request("echo", {"x": 7}, seed=2), config=config)
        # A direct sweep over the same cache root hits the served entry.
        spec = SweepSpec.explicit(
            "direct", "echo", [{"x": 7}], base_seed=2, seed_mode="fixed"
        )
        direct = run_sweep(spec, cache=ResultCache(tmp_path), config=config)
        assert direct.points[0].cached
        # ...and re-serving hits the entry the sweep would have written.
        again = evaluate(point_request("echo", {"x": 7}, seed=2), config=config)
        assert again.cached

    def test_experiment_request_matches_registry_run(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        result = evaluate(experiment_request("table1"), config=config)
        direct = _jsonable(get_experiment("table1").run(config))
        assert result.ok and not result.cached
        assert canonical_json(dict(result.values)) == canonical_json(
            {"result": direct}
        )
        assert evaluate(experiment_request("table1"), config=config).cached

    def test_unknown_target_yields_error_result_not_raise(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        bad_point = evaluate(point_request("no-such-evaluator", {}), config=config)
        assert not bad_point.ok and "no-such-evaluator" in bad_point.error
        bad_exp = evaluate(experiment_request("no-such-id"), config=config)
        assert not bad_exp.ok

    def test_group_failure_does_not_poison_siblings(self, tmp_path):
        # Two same-evaluator points, one of which always errors: the
        # survivor still completes via the singleton fallback.
        config = RuntimeConfig(
            cache_root=str(tmp_path),
            faults="point-error:match=13",
        )
        requests = [
            point_request("echo", {"x": 13}),
            point_request("echo", {"x": 4}),
        ]
        results, _ = evaluate_requests(requests, config=config)
        assert not results[0].ok
        assert results[1].ok and results[1].values["x"] == 4


# ----------------------------------------------------------------------
# the server: dedup, caching, streaming, stats
# ----------------------------------------------------------------------
class TestServer:
    def test_dedup_and_cache_tiers(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            client = InProcessClient(server)
            first = client.submit(point_request("echo", {"x": 1}))
            second = client.submit(point_request("echo", {"x": 1}))
            assert first.ok and not first.cached
            assert second.ok and second.cached
            assert first.canonical() == second.canonical()
            stats = client.stats()
            assert stats["jobs"]["evaluated"] == 1
            assert stats["dedup"]["cache_hits"] == 1
            assert stats["dedup"]["duplicate_hit_rate"] == 1.0
            assert stats["cache"]["sweep"]["stores"] == 1

    def test_in_flight_submissions_share_one_computation(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        request = point_request("echo", {"x": 1, "sleep_s": 0.8})
        results = []
        with Server(config, workers=2) as server:
            client = InProcessClient(server)
            threads = [
                threading.Thread(
                    target=lambda: results.append(client.submit(request))
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = client.stats()
        assert len(results) == 4
        assert len({r.canonical() for r in results}) == 1
        assert stats["jobs"]["evaluated"] == 1
        assert stats["dedup"]["in_flight"] >= 1
        assert stats["dedup"]["duplicate_hit_rate"] == 1.0

    def test_status_stream_and_result_over_socket(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            with Client(server.socket_path) as client:
                states = []
                result = client.submit(
                    point_request("echo", {"x": 2}),
                    on_status=lambda s: states.append(s.state),
                )
                assert result.ok and result.values["x"] == 2
                assert states[0] == "queued"
                assert "running" in states

    def test_experiment_requests_served_and_cached(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            client = InProcessClient(server)
            first = client.submit(experiment_request("table1"))
            second = client.submit(experiment_request("table1"))
        assert first.ok and not first.cached
        assert second.cached
        assert first.canonical() == second.canonical()

    def test_bad_request_gets_protocol_error(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            with Client(server.socket_path) as client:
                client._send(
                    {"op": "submit", "id": "c1",
                     "request": {"kind": "bogus", "target": "x"}}
                )
                frame = next(client._frames_for("c1"))
                assert frame["op"] == "error"
                assert "kind" in frame["error"]
                # the connection survives a bad frame
                result = client.submit(point_request("echo", {"x": 1}))
                assert result.ok

    def test_cache_survives_server_restarts(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        request = point_request("echo", {"x": 5})
        with Server(config, workers=1) as server:
            first = InProcessClient(server).submit(request)
        with Server(config, workers=1) as server:
            second = InProcessClient(server).submit(request)
            stats = server.stats()
        assert not first.cached and second.cached
        assert stats["jobs"]["evaluated"] == 0
        assert first.canonical() == second.canonical()


class TestServerConcurrentClients:
    @staticmethod
    def _client_process(socket_path, wires, queue):
        from repro.api.envelope import EvalRequest
        from repro.serve import Client

        with Client(socket_path) as client:
            queue.put(
                [
                    client.submit(EvalRequest.from_wire(wire)).to_wire()
                    for wire in wires
                ]
            )

    def test_overlapping_client_processes_zero_duplicate_evaluations(
        self, tmp_path
    ):
        config = RuntimeConfig(cache_root=str(tmp_path / "serve"))
        points = [{"x": i} for i in range(4)]
        wires = [point_request("echo", p, seed=1).to_wire() for p in points]
        queue = multiprocessing.Queue()
        with Server(config, workers=2) as server:
            clients = [
                multiprocessing.Process(
                    target=self._client_process,
                    args=(server.socket_path, wires, queue),
                )
                for _ in range(3)
            ]
            for p in clients:
                p.start()
            batches = [queue.get(timeout=120) for _ in clients]
            for p in clients:
                p.join(timeout=30)
            stats = server.stats()

        # every client saw every result, all bit-identical
        assert len(batches) == 3
        for batch in batches:
            assert [EvalResult.from_wire(w).ok for w in batch] == [True] * 4
        for i in range(4):
            assert (
                len(
                    {
                        EvalResult.from_wire(batch[i]).canonical()
                        for batch in batches
                    }
                )
                == 1
            )
        # 12 submissions, 4 unique -> exactly 4 evaluations, >=99% dedup
        assert stats["jobs"]["submitted"] == 12
        assert stats["jobs"]["evaluated"] == 4
        assert stats["dedup"]["duplicate_hit_rate"] >= 0.99

        # bit-identical against a direct sweep in this process
        spec = SweepSpec.explicit(
            "direct", "echo", points, base_seed=1, seed_mode="fixed"
        )
        direct = run_sweep(
            spec,
            cache=ResultCache(tmp_path / "direct"),
            config=RuntimeConfig(cache_root=str(tmp_path / "direct")),
        )
        served = [EvalResult.from_wire(w) for w in batches[0]]
        for result, point in zip(served, direct.points):
            assert canonical_json(dict(result.values)) == canonical_json(
                dict(point.values)
            )


class TestServerShutdown:
    def test_drain_finishes_in_flight_jobs(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        server = Server(config, workers=1).start()
        client = InProcessClient(server)
        box = {}

        def submit():
            box["result"] = client.submit(
                point_request("echo", {"x": 1, "sleep_s": 1.0})
            )

        thread = threading.Thread(target=submit)
        thread.start()
        import time

        time.sleep(0.3)  # let the job reach the pool
        server.stop(drain=True)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert box["result"].ok and box["result"].values["x"] == 1

    def test_forced_stop_fails_jobs_instead_of_hanging(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        server = Server(config, workers=1).start()
        client = InProcessClient(server)
        box = {}

        def submit():
            box["result"] = client.submit(
                point_request("echo", {"x": 1, "sleep_s": 30.0})
            )

        thread = threading.Thread(target=submit)
        thread.start()
        import time

        time.sleep(0.3)
        server.stop(drain=False)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not box["result"].ok

    def test_refuses_to_displace_a_live_server(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            clash = Server(config, socket_path=server.socket_path, workers=1)
            with pytest.raises(RuntimeError, match="already listening"):
                clash.start()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        config = RuntimeConfig(cache_root=str(tmp_path))
        socket_path = tmp_path / "serve.sock"
        socket_path.touch()  # stale leftover, nobody listening
        with Server(config, socket_path=socket_path, workers=1) as server:
            result = InProcessClient(server).submit(
                point_request("echo", {"x": 1})
            )
        assert result.ok


# ----------------------------------------------------------------------
# chaos: injected worker crashes (reuses the test_chaos fault plans)
# ----------------------------------------------------------------------
class TestServerChaos:
    def test_hard_worker_kill_respawns_pool_and_requeues(self, tmp_path):
        # worker-crash:match=serve fires at the pool-worker entry (key
        # "serve|<digests>") with allow_exit=True -> os._exit(3) ->
        # BrokenProcessPool in the server -> respawn + requeue; the
        # second attempt passes max_attempt=1 and completes.
        config = RuntimeConfig(
            cache_root=str(tmp_path),
            faults="worker-crash:match=serve,max_attempt=1",
        )
        with Server(config, workers=1) as server:
            client = InProcessClient(server)
            result = client.submit(point_request("echo", {"x": 9}))
            stats = client.stats()
        assert result.ok and not result.cached
        assert result.values["x"] == 9
        assert stats["reliability"]["serve_worker_crashes"] >= 1
        assert stats["reliability"]["serve_requeues"] >= 1

    def test_crash_results_stay_bit_identical_to_clean_run(self, tmp_path):
        request = point_request("echo", {"x": 3, "y": 4}, seed=6)
        clean = evaluate(
            request, config=RuntimeConfig(cache_root=str(tmp_path / "clean"))
        )
        # Both crash sites at once: the serve pool worker dies hard on
        # attempt 1, then the inline point evaluation raises
        # InjectedWorkerCrash on its attempt 1 and retries.
        config = RuntimeConfig(
            cache_root=str(tmp_path / "chaos"),
            faults="worker-crash:max_attempt=1",
            retries=1,
        )
        with Server(config, workers=1) as server:
            client = InProcessClient(server)
            chaotic = client.submit(request)
            stats = client.stats()
        assert chaotic.ok
        assert chaotic.canonical() == clean.canonical()
        assert stats["reliability"]["serve_worker_crashes"] >= 1
        assert stats["jobs"]["failed"] == 0


# ----------------------------------------------------------------------
# jobs/stats unit coverage
# ----------------------------------------------------------------------
class TestJobTable:
    def test_duplicate_hit_rate_edge_cases(self):
        table = JobTable()
        assert table.duplicate_hit_rate() == 1.0  # nothing submitted

        loop = __import__("asyncio").new_event_loop()
        try:
            request = point_request("echo", {"x": 1})
            job, created = table.submit(request, loop)
            assert created
            _, created_again = table.submit(request, loop)
            assert not created_again  # attached in flight
            table.finish(
                job,
                EvalResult(request_digest=job.digest, status="ok",
                           values={"x": 1}),
            )
            assert table.submitted == 2
            assert table.evaluated == 1
            assert table.duplicate_hit_rate() == 1.0
            # a *re*-evaluated duplicate drags the rate below 1
            job2, _ = table.submit(request, loop)
            table.finish(
                job2,
                EvalResult(request_digest=job2.digest, status="ok",
                           values={"x": 1}),
            )
            assert table.duplicate_hit_rate() == 0.5
        finally:
            loop.close()

    def test_serve_stats_absorbs_worker_accounting(self):
        stats = ServeStats()
        stats.absorb(
            {
                "sweep_cache": {"hits": 2, "misses": 1, "stores": 1},
                "evalcore": {"hits": 5},
                "reliability": {"retries": 1},
            }
        )
        stats.absorb({"sweep_cache": {"hits": 1}, "evalcore": {"hits": 2}})
        stats.observe_values({"trajectory_cached": True})
        stats.observe_values({"trajectory_cached": False})
        payload = stats.cache_payload()
        assert payload["sweep"]["hits"] == 3
        assert payload["sweep"]["hit_rate"] == pytest.approx(0.75)
        assert payload["evalcore"]["hits"] == 7
        assert payload["trajectory"] == {"hits": 1, "misses": 1}
        assert stats.reliability_payload()["retries"] == 1


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestServeCli:
    def test_parser_accepts_serve_and_submit(self):
        from repro.harness.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--socket", "/tmp/s.sock", "--serve-workers", "3"]
        )
        assert args.command == "serve"
        assert args.socket == "/tmp/s.sock"
        assert args.serve_workers == 3
        args = parser.parse_args(
            ["submit", "table1", "--params", '{"a": 1}', "--stats"]
        )
        assert args.command == "submit"
        assert args.target == "table1"
        assert json.loads(args.params) == {"a": 1}

    def test_submit_without_socket_fails_cleanly(self, capsys, monkeypatch):
        from repro.harness.__main__ import main

        for var in ("REPRO_SERVE_SOCKET", "REPRO_CACHE_ROOT"):
            monkeypatch.delenv(var, raising=False)
        code = main(["prog", "submit", "table1"])
        assert code == 2
        assert "socket" in capsys.readouterr().err

    def test_submit_round_trip_against_live_server(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        config = RuntimeConfig(cache_root=str(tmp_path))
        with Server(config, workers=1) as server:
            code = main(
                ["prog", "submit", "echo", "--kind", "point",
                 "--params", '{"x": 11}',
                 "--socket", server.socket_path]
            )
            out = capsys.readouterr().out
            assert code == 0
            wire = json.loads(out)
            assert wire["status"] == "ok" and wire["values"]["x"] == 11
            code = main(
                ["prog", "submit", "--stats", "--socket", server.socket_path]
            )
            stats = json.loads(capsys.readouterr().out)
            assert code == 0 and stats["jobs"]["submitted"] == 1


def test_wait_for_server_times_out_fast(tmp_path):
    with pytest.raises(TimeoutError):
        wait_for_server(tmp_path / "nowhere.sock", timeout=0.3)
