"""Tests for the batched multi-candidate evaluation path.

The contract under test is *bit-identity*: every result
:func:`~repro.dataflow.batcheval.evaluate_candidates` returns must be
field-for-field equal to the corresponding per-candidate
:func:`~repro.dataflow.evalcore.evaluate_network` walk — across
mappings, phases, balance settings, seeds, arch variants, and both
sampling modes — plus the memo-sharing contract: batched and looped
evaluation read and write one digest space, through the LRU, the bulk
binary segment tier, and the per-record JSON tier alike.
"""

import numpy as np
import pytest

from repro.dataflow import sampling
from repro.dataflow.batcheval import MappingCandidate, evaluate_candidates
from repro.dataflow.evalcore import (
    EvalMemo,
    SegmentStore,
    evaluate_network,
    reference_implementation,
)
from repro.dataflow.loadbalance import balance_sets, balance_sets_batch
from repro.dataflow.mapping import MAPPINGS
from repro.dataflow.simulator import simulate, simulate_candidates
from repro.dataflow.tiling import (
    SetStats,
    build_sets,
    build_sets_batch,
)
from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16
from repro.hw.cyclesim import compose_pipeline_batch
from repro.hw.energy import DEFAULT_ENERGY_TABLE
from repro.workloads.phases import PHASES, phase_op

SET_FIELDS = ("max_work", "mean_work", "sum_work", "busy_pes", "weight")
BALANCE_MODES = ("none", "half", "perfect")


def assert_sets_identical(a, b, ctx=""):
    for name in SET_FIELDS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=f"{ctx} {name}"
        )


def assert_evals_identical(batch_eval, loop_eval, ctx=""):
    assert batch_eval.layers.keys() == loop_eval.layers.keys()
    for phase in loop_eval.layers:
        for a, b in zip(batch_eval.layers[phase], loop_eval.layers[phase]):
            where = f"{ctx} {phase}/{b.layer_name}"
            assert a.layer_name == b.layer_name, where
            assert a.cycles == b.cycles, where
            assert a.macs == b.macs, where
            assert_sets_identical(a.sets, b.sets, where)
            if b.energy is not None:
                assert a.energy.total_j == b.energy.total_j, where


@pytest.fixture(params=[False, True], ids=["fast-sampling", "exact-sampling"])
def sampling_exact(request):
    with sampling.sampling_mode(exact=request.param):
        yield request.param


# ----------------------------------------------------------------------
# batched kernel parity (the candidate-axis primitives)
# ----------------------------------------------------------------------
class TestBatchedKernels:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("balance", BALANCE_MODES)
    def test_build_sets_batch_bit_identical(
        self, small_profile, mapping, phase, balance, sampling_exact
    ):
        ls = small_profile.layers[1]
        op = phase_op(ls.layer, phase, 32)
        seeds = (3, 11, 19)
        batch = build_sets_batch(
            op,
            mapping,
            PROCRUSTES_16x16,
            [(ls, np.random.default_rng(s)) for s in seeds],
            sparse=True,
            balance=balance,
        )
        for seed, stats in zip(seeds, batch):
            single = build_sets(
                op,
                mapping,
                PROCRUSTES_16x16,
                ls,
                np.random.default_rng(seed),
                sparse=True,
                balance=balance,
            )
            assert_sets_identical(
                stats, single, f"{mapping}/{phase}/{balance}/seed={seed}"
            )

    def test_balance_sets_batch_matches_per_candidate(self):
        rng = np.random.default_rng(0)
        work = rng.uniform(1.0, 9.0, size=(4, 6, 8))
        batch = balance_sets_batch(
            work, [np.random.default_rng(s) for s in range(4)]
        )
        for b in range(4):
            single = balance_sets(work[b], np.random.default_rng(b))
            np.testing.assert_array_equal(batch[b], single)

    def test_balance_sets_batch_requires_one_rng_per_slice(self):
        with pytest.raises(ValueError, match="rng"):
            balance_sets_batch(
                np.ones((3, 2, 4)), [np.random.default_rng(0)]
            )

    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_compose_pipeline_batch_matches_rows(self, double_buffered):
        rng = np.random.default_rng(7)
        fills = rng.uniform(0, 50, size=(5, 9))
        computes = rng.uniform(0, 50, size=(5, 9))
        drains = rng.uniform(0, 50, size=(5, 9))
        totals, compute_totals = compose_pipeline_batch(
            double_buffered, fills, computes, drains
        )
        for b in range(5):
            row_totals, row_compute = compose_pipeline_batch(
                double_buffered, fills[b], computes[b], drains[b]
            )
            assert totals[b] == row_totals[0]
            assert compute_totals[b] == row_compute[0]

    def test_build_sets_batch_empty_and_dense_fallback(self, small_profile):
        ls = small_profile.layers[0]
        op = phase_op(ls.layer, "fw", 32)
        assert build_sets_batch(op, "KN", PROCRUSTES_16x16, []) == []
        jobs = [(ls, np.random.default_rng(s)) for s in (0, 1)]
        dense = build_sets_batch(
            op, "KN", PROCRUSTES_16x16, jobs, sparse=False
        )
        for seed, stats in zip((0, 1), dense):
            single = build_sets(
                op, "KN", PROCRUSTES_16x16, ls,
                np.random.default_rng(seed), sparse=False,
            )
            assert_sets_identical(stats, single)


# ----------------------------------------------------------------------
# evaluate_candidates parity
# ----------------------------------------------------------------------
def candidate_grid():
    cands = []
    for mapping in MAPPINGS:
        for arch in (PROCRUSTES_16x16, BASELINE_16x16):
            for balance in (True, False):
                cands.append(
                    MappingCandidate(
                        mapping, arch, n=32, balance=balance, seed=5
                    )
                )
    cands.append(
        MappingCandidate("KN", PROCRUSTES_16x16, n=32, seed=9)
    )
    cands.append(
        MappingCandidate("KN", PROCRUSTES_16x16, n=32, sparse=False)
    )
    return cands


class TestEvaluateCandidates:
    def test_bit_identical_to_looped_walks(
        self, small_profile, sampling_exact
    ):
        cands = candidate_grid()
        batch = evaluate_candidates(
            small_profile, cands, table=DEFAULT_ENERGY_TABLE, memo=None
        )
        assert len(batch) == len(cands)
        for cand, evaluation in zip(cands, batch):
            loop = evaluate_network(
                small_profile,
                cand.mapping,
                cand.arch,
                cand.n,
                table=DEFAULT_ENERGY_TABLE,
                sparse=cand.sparse,
                balance=cand.balance,
                seed=cand.seed,
                memo=None,
            )
            assert_evals_identical(
                evaluation, loop, f"{cand.mapping}/bal={cand.balance}"
            )

    def test_reference_mode_parity(self, small_profile):
        cands = candidate_grid()[:4]
        with reference_implementation():
            batch = evaluate_candidates(
                small_profile, cands, table=DEFAULT_ENERGY_TABLE
            )
            for cand, evaluation in zip(cands, batch):
                loop = evaluate_network(
                    small_profile,
                    cand.mapping,
                    cand.arch,
                    cand.n,
                    table=DEFAULT_ENERGY_TABLE,
                    sparse=cand.sparse,
                    balance=cand.balance,
                    seed=cand.seed,
                )
                assert_evals_identical(evaluation, loop, "reference")

    def test_simulate_candidates_matches_simulate(self, small_profile):
        cands = [
            MappingCandidate("KN", PROCRUSTES_16x16, n=32),
            MappingCandidate("CK", PROCRUSTES_16x16, n=32),
            MappingCandidate("CN", BASELINE_16x16, n=32, balance=False),
        ]
        sims = simulate_candidates(small_profile, cands)
        for cand, sim in zip(cands, sims):
            single = simulate(
                small_profile,
                cand.mapping,
                arch=cand.arch,
                n=cand.n,
                sparse=cand.sparse,
                balance=cand.balance,
                seed=cand.seed,
            )
            assert sim.total_cycles == single.total_cycles
            assert sim.total_energy_j == single.total_energy_j
            assert sim.cycles_by_phase() == single.cycles_by_phase()
            assert sim.energy_by_phase() == single.energy_by_phase()

    def test_empty_candidate_list(self, small_profile):
        assert evaluate_candidates(small_profile, [], memo=None) == []


# ----------------------------------------------------------------------
# memo sharing: one digest space, all tiers
# ----------------------------------------------------------------------
class TestMemoSharing:
    def test_batched_stores_hit_looped_reads(self, small_profile, tmp_path):
        cands = candidate_grid()
        writer = EvalMemo(maxsize=4096, disk_root=tmp_path)
        batch = evaluate_candidates(
            small_profile, cands, table=DEFAULT_ENERGY_TABLE, memo=writer
        )
        assert writer.stats.stores > 0
        # A fresh memo over the same directory: only disk (segment)
        # hits, zero rebuilds.
        reader = EvalMemo(maxsize=4096, disk_root=tmp_path)
        for cand, evaluation in zip(cands[:6], batch[:6]):
            loop = evaluate_network(
                small_profile,
                cand.mapping,
                cand.arch,
                cand.n,
                table=DEFAULT_ENERGY_TABLE,
                sparse=cand.sparse,
                balance=cand.balance,
                seed=cand.seed,
                memo=reader,
            )
            assert_evals_identical(evaluation, loop, "segment-share")
        assert reader.stats.disk_hits > 0
        assert reader.stats.misses == 0

    def test_looped_stores_hit_batched_reads(self, small_profile, tmp_path):
        cands = candidate_grid()[:4]
        writer = EvalMemo(maxsize=4096, disk_root=tmp_path)
        loops = [
            evaluate_network(
                small_profile,
                cand.mapping,
                cand.arch,
                cand.n,
                table=DEFAULT_ENERGY_TABLE,
                sparse=cand.sparse,
                balance=cand.balance,
                seed=cand.seed,
                memo=writer,
            )
            for cand in cands
        ]
        reader = EvalMemo(maxsize=4096, disk_root=tmp_path)
        batch = evaluate_candidates(
            small_profile, cands, table=DEFAULT_ENERGY_TABLE, memo=reader
        )
        assert reader.stats.disk_hits > 0
        assert reader.stats.misses == 0
        for loop, evaluation in zip(loops, batch):
            assert_evals_identical(evaluation, loop, "json-share")

    def test_warm_batch_is_all_lru_hits(self, small_profile):
        cands = candidate_grid()
        memo = EvalMemo(maxsize=4096)
        evaluate_candidates(small_profile, cands, memo=memo)
        stores, misses = memo.stats.stores, memo.stats.misses
        evaluate_candidates(small_profile, cands, memo=memo)
        assert memo.stats.stores == stores
        assert memo.stats.misses == misses

    def test_segment_store_roundtrip(self, tmp_path):
        store = SegmentStore(tmp_path)
        rng = np.random.default_rng(0)
        pairs = []
        for i in range(5):
            n = int(rng.integers(1, 7))
            pairs.append(
                (
                    f"digest-{i}",
                    SetStats(
                        max_work=rng.uniform(0, 9, n),
                        mean_work=rng.uniform(0, 9, n),
                        sum_work=rng.uniform(0, 99, n),
                        busy_pes=rng.integers(1, 256, n).astype(float),
                        weight=rng.integers(1, 5, n),
                    ),
                )
            )
        store.put_many(pairs)
        # A different store instance over the same directory sees the
        # records (cross-process visibility path).
        fresh = SegmentStore(tmp_path)
        hits = fresh.get_many([d for d, _ in pairs] + ["missing"])
        assert "missing" not in hits
        for digest, sets in pairs:
            assert_sets_identical(hits[digest], sets, digest)

    def test_segment_store_ignores_torn_files(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put_many(
            [
                (
                    "good",
                    SetStats(
                        max_work=np.ones(2),
                        mean_work=np.ones(2),
                        sum_work=np.ones(2),
                        busy_pes=np.ones(2),
                        weight=np.ones(2, dtype=np.int64),
                    ),
                )
            ]
        )
        (tmp_path / "seg-torn.npz").write_bytes(b"not an npz")
        fresh = SegmentStore(tmp_path)
        hits = fresh.get_many(["good"])
        assert set(hits) == {"good"}
