"""Tests for the multi-layer behavioural training engine."""

import numpy as np
import pytest

from repro.hw.config import ArchConfig
from repro.hw.network_engine import NetworkTrainingEngine
from repro.hw.qe_unit import QuantileEngine
from repro.nn import functional as F


@pytest.fixture
def arch():
    return ArchConfig(name="t4x4", pe_rows=4, pe_cols=4)


def sparse_weight(rng, shape, density=0.4):
    w = rng.normal(size=shape)
    w[rng.uniform(size=shape) > density] = 0.0
    return w


@pytest.fixture
def stack(rng):
    return [
        ("c0", sparse_weight(rng, (6, 3, 3, 3)), 1),
        ("c1", sparse_weight(rng, (4, 6, 3, 3)), 1),
    ]


def reference_step(stack, x, dy, lr):
    """The same iteration on the NumPy substrate (no QE)."""
    acts = [x]
    caches = []
    current = x
    for _, w, pad in stack:
        y, _ = F.conv2d(current, w, padding=pad)
        mask = y > 0.0
        caches.append((current, w, pad, mask))
        current = np.where(mask, y, 0.0)
        acts.append(current)
    grad = dy
    new_weights = {}
    for (name, w, pad), (iacts, _, _, mask) in zip(
        reversed(stack), reversed(caches)
    ):
        grad = np.where(mask, grad, 0.0)
        dweight = F.conv2d_weight_grad(iacts, grad, w.shape[2:], padding=pad)
        swapped = w[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
        dx, _ = F.conv2d(grad, swapped, padding=w.shape[2] - 1 - pad)
        keep = w != 0.0
        new_weights[name] = np.where(keep, w - lr * dweight, 0.0)
        grad = dx
    return new_weights


class TestConstruction:
    def test_rejects_empty(self, arch):
        with pytest.raises(ValueError):
            NetworkTrainingEngine(arch, [])

    def test_rejects_bad_lr(self, arch, stack):
        with pytest.raises(ValueError):
            NetworkTrainingEngine(arch, stack, lr=0.0)

    def test_weights_compressed_on_entry(self, arch, stack):
        engine = NetworkTrainingEngine(arch, stack)
        assert 0.0 < engine.weight_density() < 1.0
        for slot in engine.slots:
            slot.weights.validate()


class TestForward:
    def test_matches_substrate(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack)
        x = rng.normal(size=(2, 3, 8, 8))
        y, _ = engine.forward(x)
        current = x
        for _, w, pad in stack:
            out, _ = F.conv2d(current, w, padding=pad)
            current = np.maximum(out, 0.0)
        np.testing.assert_allclose(y, current, rtol=1e-10)

    def test_activation_compression_tracked(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack)
        x = np.maximum(rng.normal(size=(2, 3, 8, 8)), 0.0)  # relu-sparse
        _, result = engine.forward(x)
        assert result.activation_bits_dense > 0
        assert result.activation_compression > 1.0


class TestTrainStep:
    def test_matches_substrate_without_qe(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack, lr=0.05)
        x = rng.normal(size=(2, 3, 8, 8))
        # dy w.r.t. the final post-relu output.
        y, _ = engine.forward(x)
        dy = rng.normal(size=y.shape)
        engine = NetworkTrainingEngine(arch, stack, lr=0.05)  # fresh weights
        engine.train_step(x, dy)
        expect = reference_step(stack, x, dy, lr=0.05)
        measured = engine.dense_weights()
        for name in expect:
            np.testing.assert_allclose(
                measured[name], expect[name], rtol=1e-8, atol=1e-12
            )

    def test_pruned_positions_stay_zero(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack, lr=0.1)
        before = engine.dense_weights()
        x = rng.normal(size=(2, 3, 8, 8))
        y, _ = engine.forward(x)
        engine.train_step(x, rng.normal(size=y.shape))
        after = engine.dense_weights()
        for name in before:
            zeros = before[name] == 0.0
            assert (after[name][zeros] == 0.0).all()

    def test_qe_filters_gradients_once_warm(self, rng, arch, stack):
        # The DUMIQUE estimate cold-starts at 1e-6 and climbs as
        # gradients stream; after enough iterations the threshold sits
        # in the gradient distribution and starts discarding.
        qe = QuantileEngine(sparsity_factor=10.0, rho=0.05)
        engine = NetworkTrainingEngine(arch, stack, qe=qe, lr=1e-4)
        x = rng.normal(size=(2, 3, 8, 8))
        y, _ = engine.forward(x)
        dy = rng.normal(size=y.shape)
        last = None
        for _ in range(12):
            last = engine.train_step(x, dy)
        assert last is not None
        assert 0 < last.gradients_kept < last.gradients_seen

    def test_cycle_and_mac_totals_accumulate(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack)
        x = rng.normal(size=(2, 3, 8, 8))
        y, _ = engine.forward(x)
        result = engine.train_step(x, rng.normal(size=y.shape))
        assert result.total_cycles > 0
        assert result.total_macs > 0
        for per_layer in result.phases.values():
            assert set(per_layer) == {"fw", "bw", "wu"}

    def test_weights_stay_valid_over_iterations(self, rng, arch, stack):
        engine = NetworkTrainingEngine(arch, stack, lr=0.01)
        x = rng.normal(size=(2, 3, 8, 8))
        for _ in range(3):
            y, _ = engine.forward(x)
            engine.train_step(x, rng.normal(size=y.shape) * 0.1)
            for slot in engine.slots:
                slot.weights.validate()
