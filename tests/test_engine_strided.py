"""Strided-convolution support in the behavioural engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import ArchConfig
from repro.hw.engine import SparseTrainingEngine, dilate_gradient
from repro.nn import functional as F
from repro.sparse.csb import CSBTensor


@pytest.fixture
def engine():
    return SparseTrainingEngine(ArchConfig(name="t", pe_rows=4, pe_cols=4))


def sparse_weight(rng, shape, density=0.4):
    w = rng.normal(size=shape)
    w[rng.uniform(size=shape) > density] = 0.0
    return w


class TestDilateGradient:
    def test_stride1_is_identity(self, rng):
        dout = rng.normal(size=(2, 3, 4, 4))
        assert dilate_gradient(dout, 1) is dout

    def test_stride2_shape_and_content(self, rng):
        dout = rng.normal(size=(1, 1, 3, 3))
        dilated = dilate_gradient(dout, 2)
        assert dilated.shape == (1, 1, 5, 5)
        np.testing.assert_allclose(dilated[0, 0, ::2, ::2], dout[0, 0])
        assert dilated[0, 0, 1::2].sum() == 0.0

    def test_extra_padding(self, rng):
        dout = rng.normal(size=(1, 1, 2, 2))
        dilated = dilate_gradient(dout, 2, extra=(1, 0))
        assert dilated.shape == (1, 1, 4, 3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            dilate_gradient(rng.normal(size=(1, 1, 2, 2)), 0)


class TestStridedPhases:
    @pytest.mark.parametrize("stride,size,padding", [
        (2, 8, 1), (2, 9, 1), (2, 8, 0), (3, 10, 1),
    ])
    def test_backward_matches_autograd(self, rng, engine, stride, size,
                                       padding):
        w = sparse_weight(rng, (6, 4, 3, 3))
        x = rng.normal(size=(2, 4, size, size))
        y, cache = F.conv2d(x, w, stride=stride, padding=padding)
        dout = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dout, cache)

        csb = CSBTensor.from_dense(w)
        dx = engine.backward(
            dout, csb, padding=padding, stride=stride,
            input_hw=(size, size),
        ).tensor
        np.testing.assert_allclose(dx, ref_dx, rtol=1e-10, atol=1e-12)

    def test_backward_default_input_hw(self, rng, engine):
        # Exact-division case needs no explicit input size.
        w = sparse_weight(rng, (6, 4, 3, 3))
        x = rng.normal(size=(2, 4, 9, 9))
        y, cache = F.conv2d(x, w, stride=2, padding=1)
        dout = rng.normal(size=y.shape)
        ref_dx, _, _ = F.conv2d_backward(dout, cache)
        dx = engine.backward(dout, CSBTensor.from_dense(w),
                             padding=1, stride=2).tensor
        np.testing.assert_allclose(dx, ref_dx, rtol=1e-10, atol=1e-12)

    def test_forward_matches_substrate(self, rng, engine):
        w = sparse_weight(rng, (6, 4, 3, 3))
        x = rng.normal(size=(2, 4, 8, 8))
        expect, _ = F.conv2d(x, w, stride=2, padding=1)
        y = engine.forward(x, CSBTensor.from_dense(w),
                           padding=1, stride=2).tensor
        np.testing.assert_allclose(y, expect, rtol=1e-12)

    def test_weight_update_matches_substrate(self, rng, engine):
        w = sparse_weight(rng, (6, 4, 3, 3))
        x = rng.normal(size=(2, 4, 8, 8))
        y, cache = F.conv2d(x, w, stride=2, padding=1)
        dout = rng.normal(size=y.shape)
        _, ref_dw, _ = F.conv2d_backward(dout, cache)
        wu, _, _ = engine.weight_update(
            x, dout, CSBTensor.from_dense(w), padding=1, stride=2
        )
        np.testing.assert_allclose(wu.tensor, ref_dw, rtol=1e-10)


@settings(max_examples=20, deadline=None)
@given(
    stride=st.integers(1, 3),
    size=st.integers(7, 12),
    padding=st.integers(0, 2),
    seed=st.integers(0, 2**31),
)
def test_strided_backward_property(stride, size, padding, seed):
    """dL/dx from the rotated-CSB path equals autograd for any stride."""
    rng = np.random.default_rng(seed)
    r = 3
    if size + 2 * padding < r:
        return
    w = sparse_weight(rng, (4, 3, r, r))
    x = rng.normal(size=(2, 3, size, size))
    y, cache = F.conv2d(x, w, stride=stride, padding=padding)
    dout = rng.normal(size=y.shape)
    ref_dx, _, _ = F.conv2d_backward(dout, cache)
    engine = SparseTrainingEngine(ArchConfig(name="t", pe_rows=4, pe_cols=4))
    dx = engine.backward(
        dout, CSBTensor.from_dense(w), padding=padding, stride=stride,
        input_hw=(size, size),
    ).tensor
    np.testing.assert_allclose(dx, ref_dx, rtol=1e-9, atol=1e-11)
