"""Tests for the mapping search and learning-rate schedules."""

import numpy as np
import pytest

from repro.dataflow.mapper import choose_mapping
from repro.hw.config import PROCRUSTES_16x16
from repro.nn.layers import Parameter
from repro.nn.optim import SGD
from repro.nn.schedules import ScheduledLR, cosine_decay, step_decay, warmup


class TestChooseMapping:
    def test_picks_minibatch_mapping_for_sparse(self, small_profile):
        choice = choose_mapping(small_profile, PROCRUSTES_16x16, n=32)
        assert choice.mapping in ("KN", "CN")
        assert choice.cycles == min(choice.cycles_by_mapping.values())

    def test_simple_fabric_excludes_ck(self, small_profile):
        choice = choose_mapping(
            small_profile, PROCRUSTES_16x16, n=32, simple_fabric_only=True
        )
        assert "CK" not in choice.cycles_by_mapping
        assert "PQ" not in choice.cycles_by_mapping  # wu unbalanceable

    def test_advantage_over(self, small_profile):
        choice = choose_mapping(small_profile, PROCRUSTES_16x16, n=32)
        assert choice.advantage_over("PQ") >= 1.0

    def test_dense_baseline_search(self, small_profile):
        from repro.workloads.sparsity import dense_profile

        dense = dense_profile(
            "net", [ls.layer for ls in small_profile.layers]
        )
        choice = choose_mapping(
            dense, PROCRUSTES_16x16, n=32, sparse=False
        )
        assert choice.mapping in ("KN", "CN")


class TestSchedules:
    def test_step_decay(self):
        schedule = step_decay([10, 20], factor=0.1)
        assert schedule(0) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        schedule = cosine_decay(100, floor=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(50) == pytest.approx(0.55, abs=0.01)

    def test_cosine_monotone(self):
        schedule = cosine_decay(50)
        values = [schedule(i) for i in range(51)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_warmup_ramps(self):
        schedule = warmup(4)
        assert schedule(0) == pytest.approx(0.25)
        assert schedule(3) == pytest.approx(1.0)
        assert schedule(10) == 1.0

    def test_warmup_chains_base(self):
        schedule = warmup(2, base=step_decay([5], factor=0.5))
        assert schedule(1) == pytest.approx(1.0)
        assert schedule(8) == pytest.approx(0.5)  # 8-2=6 >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            step_decay([1], factor=0.0)
        with pytest.raises(ValueError):
            cosine_decay(0)
        with pytest.raises(ValueError):
            warmup(0)

    def test_scheduled_sgd_applies_multiplier(self):
        param = Parameter("w", np.zeros(1))
        sgd = SGD([param], lr=1.0)
        scheduled = ScheduledLR(sgd, step_decay([1], factor=0.5))
        param.grad = np.ones(1)
        scheduled.step()  # lr 1.0
        assert param.data[0] == pytest.approx(-1.0)
        param.grad = np.ones(1)
        scheduled.step()  # lr 0.5
        assert param.data[0] == pytest.approx(-1.5)

    def test_scheduled_dropback_delegates(self, rng):
        from repro.core.dropback import DropbackConfig, DropbackOptimizer

        param = Parameter("w", rng.normal(size=16), prunable=True)
        opt = DropbackOptimizer(
            [param], DropbackConfig(sparsity_factor=4.0, lr=0.1)
        )
        scheduled = ScheduledLR(opt, cosine_decay(10))
        param.grad = rng.normal(size=16)
        scheduled.step()
        assert scheduled.tracked_count() == opt.budget
        assert scheduled.current_lr < 0.1
