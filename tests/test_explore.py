"""Tests for the design-space explorer: spaces, strategies, driver.

The contract under test: constraint predicates prune before any
evaluation, every strategy is deterministic given its seed (same seed
⇒ same candidates ⇒ same frontier), and exploration rides the sweep
cache so a warm re-run touches no evaluator.
"""

from __future__ import annotations

import random

import pytest

from repro.explore import (
    Explorer,
    GreedyRefineStrategy,
    GridStrategy,
    RandomStrategy,
    SearchSpace,
    arch_from_params,
    explore,
    fabric_fraction_limit,
    frontier_diff,
    make_strategy,
    mask_residency_limit,
    tiling_chunk_limit,
)
from repro.report.export import ResultsDirectory
from repro.sweep import ResultCache, register

#: Call log of the instrumented evaluator (serial runs only).
CALLS: list[dict] = []


@register("explore-toy", version="1")
def _toy(*, seed, x, y, tag="t"):
    """Two smooth objectives with known minima at x=4 and y=0."""
    CALLS.append({"x": x, "y": y, "seed": seed})
    return {"f1": (x - 4) ** 2 + 0.1 * y, "f2": y * y + 0.1 * x}


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()
    yield
    CALLS.clear()


@pytest.fixture
def toy_space():
    return SearchSpace(
        {"x": [0, 1, 2, 3, 4], "y": [0, 1, 2, 3]}, fixed={"tag": "t"}
    )


class TestSearchSpace:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            SearchSpace({})
        with pytest.raises(ValueError, match="no values"):
            SearchSpace({"x": []})
        with pytest.raises(ValueError, match="both as dimensions"):
            SearchSpace({"x": [1]}, fixed={"x": 2})
        with pytest.raises(ValueError, match="name, callable"):
            SearchSpace({"x": [1]}, constraints=[("", None)])

    def test_grid_is_feasible_and_ordered(self, toy_space):
        points = list(toy_space.grid())
        assert len(points) == toy_space.n_assignments == 20
        assert points[0] == {"tag": "t", "x": 0, "y": 0}
        assert points[-1] == {"tag": "t", "x": 4, "y": 3}

    def test_constraints_prune_grid(self):
        space = SearchSpace(
            {"x": [0, 1, 2, 3]},
            constraints=[("even", lambda p: p["x"] % 2 == 0)],
        )
        assert [p["x"] for p in space.grid()] == [0, 2]
        assert space.violated({"x": 3}) == ["even"]
        assert space.violated({"x": 2}) == []

    def test_sample_deterministic_and_unique(self, toy_space):
        a = toy_space.sample(random.Random(7), 10)
        b = toy_space.sample(random.Random(7), 10)
        assert a == b
        keys = {toy_space.key(p) for p in a}
        assert len(keys) == len(a) == 10

    def test_sample_respects_exclude(self, toy_space):
        first = toy_space.sample(random.Random(7), 5)
        exclude = {toy_space.key(p) for p in first}
        second = toy_space.sample(random.Random(8), 15, exclude=exclude)
        assert not exclude & {toy_space.key(p) for p in second}
        # 20-point space: 5 excluded leaves at most 15 fresh draws.
        assert len(second) <= 15

    def test_sample_terminates_when_exhausted(self):
        space = SearchSpace({"x": [1, 2]})
        got = space.sample(random.Random(0), 10)
        assert sorted(p["x"] for p in got) == [1, 2]

    def test_neighbors_one_step_moves(self, toy_space):
        center = {"tag": "t", "x": 2, "y": 0}
        moved = toy_space.neighbors(center)
        assert {(p["x"], p["y"]) for p in moved} == {(1, 0), (3, 0), (2, 1)}

    def test_neighbors_respect_constraints(self):
        space = SearchSpace(
            {"x": [0, 1, 2]},
            constraints=[("not-two", lambda p: p["x"] != 2)],
        )
        assert [p["x"] for p in space.neighbors({"x": 1})] == [0]


class TestHardwareHooks:
    def test_arch_from_params_defaults(self):
        arch = arch_from_params({})
        assert (arch.pe_rows, arch.pe_cols) == (16, 16)
        assert arch.glb_bytes == 128 * 1024
        assert arch.rf_bytes_per_pe == 1024
        assert arch.sparse_training_support

    def test_arch_from_params_geometry(self):
        arch = arch_from_params(
            {"array_side": 8, "glb_kib": 64, "rf_bytes": 512, "sparse": False}
        )
        assert arch.n_pes == 64
        assert arch.glb_bytes == 64 * 1024
        assert not arch.sparse_training_support

    def test_fabric_fraction_limit(self):
        name, ok = fabric_fraction_limit(0.30)
        assert "0.3" in name
        # Simple-fabric mappings scale: the fraction stays ~7%.
        assert ok({"mapping": "KN", "array_side": 64})
        # Sparse C,K needs the balanced fabric, which grows with side.
        assert ok({"mapping": "CK", "array_side": 8})
        assert not ok({"mapping": "CK", "array_side": 16})
        # Dense C,K needs no balancing, so the simple price applies.
        assert ok({"mapping": "CK", "array_side": 16, "sparse": False})

    def test_mask_residency_limit(self):
        _, ok = mask_residency_limit()
        assert ok({"network": "vgg-s", "sparse": False})  # dense: no masks
        assert ok({"network": "vgg-s", "array_side": 16, "glb_kib": 128})
        assert not ok({"network": "vgg-s", "array_side": 32, "glb_kib": 64})

    def test_mask_residency_limit_reads_candidate_n(self):
        # A candidate's own minibatch overrides the factory default,
        # so the screen checks the size the evaluator will simulate.
        # (fw-phase residency happens to be n-insensitive, so prove
        # the parameter is consumed rather than compare outcomes.)
        _, ok = mask_residency_limit(n=64)
        base = {"network": "vgg-s", "array_side": 16, "glb_kib": 128}
        assert ok({**base, "n": "32"})  # coerced through int()
        with pytest.raises(ValueError):
            ok({**base, "n": "not-a-number"})

    def test_tiling_chunk_limit(self):
        _, ok = tiling_chunk_limit(max_chunks=64)
        base = {"network": "vgg-s", "mapping": "KN", "rf_bytes": 1024}
        assert ok(base)
        assert not ok({**base, "rf_bytes": 512})
        # Non-tiling mappings always pass.
        assert ok({**base, "mapping": "PQ", "rf_bytes": 512})


class TestStrategies:
    def test_make_strategy(self):
        assert isinstance(make_strategy("grid"), GridStrategy)
        assert isinstance(make_strategy("random"), RandomStrategy)
        assert isinstance(make_strategy("greedy"), GreedyRefineStrategy)
        with pytest.raises(KeyError, match="unknown strategy"):
            make_strategy("anneal")

    def test_grid_strategy_exhausts_space(self, toy_space):
        result = explore(
            toy_space,
            GridStrategy(batch_size=6),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=100,
        )
        assert result.n_evaluated == 20
        assert len(CALLS) == 20

    def test_random_strategy_respects_sample_count(self, toy_space):
        result = explore(
            toy_space,
            RandomStrategy(n_samples=8, batch_size=3),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=100,
            seed=3,
        )
        assert result.n_evaluated == 8

    def test_exhausted_strategy_rejects_reuse(self, toy_space):
        strategy = GridStrategy()
        explore(
            toy_space, strategy,
            objectives=("f1", "f2"), evaluator="explore-toy", budget=100,
        )
        with pytest.raises(ValueError, match="single-use"):
            explore(
                toy_space, strategy,
                objectives=("f1", "f2"), evaluator="explore-toy", budget=100,
            )

    def test_budget_truncated_strategy_rejects_reuse(self, toy_space):
        # Truncation discards proposals the strategy already consumed,
        # so a "resume" would silently skip candidates — it must raise.
        strategy = GridStrategy(batch_size=5)
        explore(
            toy_space, strategy,
            objectives=("f1", "f2"), evaluator="explore-toy", budget=3,
        )
        with pytest.raises(ValueError, match="single-use"):
            explore(
                toy_space, strategy,
                objectives=("f1", "f2"), evaluator="explore-toy", budget=100,
            )

    def test_greedy_stops_when_locally_optimal(self, toy_space):
        result = explore(
            toy_space,
            GreedyRefineStrategy(n_init=6, max_rounds=50),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=100,
            seed=3,
        )
        # Fewer evaluations than the budget: refinement converged.
        assert result.n_evaluated < 100
        # The true single-objective minima are on the final frontier.
        vectors = result.frontier.vectors()
        assert min(v[0] for v in vectors) == min(
            (x - 4) ** 2 + 0.1 * y for x in range(5) for y in range(4)
        )


class TestExplorer:
    def test_budget_is_a_hard_cap(self, toy_space):
        result = explore(
            toy_space,
            GridStrategy(batch_size=7),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=5,
        )
        assert result.n_evaluated == 5
        assert len(CALLS) == 5
        # A clipped enumeration is flagged as budget-truncated ...
        assert result.budget_exhausted
        # ... while a strategy that finishes under budget is not.
        finished = explore(
            toy_space,
            GridStrategy(),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=100,
        )
        assert not finished.budget_exhausted

    def test_same_seed_same_frontier(self, toy_space):
        def run():
            return explore(
                toy_space,
                RandomStrategy(n_samples=12, batch_size=5),
                objectives=("f1", "f2"),
                evaluator="explore-toy",
                budget=12,
                seed=11,
            )

        first, second = run(), run()
        assert [e.params for e in first.evaluations] == [
            e.params for e in second.evaluations
        ]
        assert frontier_diff(first.frontier, second.frontier).unchanged
        assert first.frontier.hypervolume() == second.frontier.hypervolume()

    def test_different_seed_different_candidates(self, toy_space):
        runs = []
        for seed in (1, 2):
            runs.append(
                explore(
                    toy_space,
                    RandomStrategy(n_samples=10, batch_size=5),
                    objectives=("f1", "f2"),
                    evaluator="explore-toy",
                    budget=10,
                    seed=seed,
                )
            )
        assert [e.params for e in runs[0].evaluations] != [
            e.params for e in runs[1].evaluations
        ]

    def test_warm_rerun_touches_no_evaluator(self, toy_space, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        def run():
            return explore(
                toy_space,
                GridStrategy(),
                objectives=("f1", "f2"),
                evaluator="explore-toy",
                budget=20,
                cache=cache,
            )

        cold = run()
        assert cold.n_cached == 0 and len(CALLS) == 20
        CALLS.clear()
        warm = run()
        assert warm.n_cached == 20
        assert CALLS == []
        assert frontier_diff(warm.frontier, cold.frontier).unchanged

    def test_cache_shared_across_strategies(self, toy_space, tmp_path):
        explorer = Explorer(
            evaluator="explore-toy",
            objectives=("f1", "f2"),
            cache=ResultCache(tmp_path / "cache"),
        )
        explorer.run(toy_space, GridStrategy(), budget=20, seed=5)
        CALLS.clear()
        greedy = explorer.run(
            toy_space,
            GreedyRefineStrategy(n_init=5, max_rounds=10),
            budget=20,
            seed=5,
        )
        # Every greedy candidate was already priced by the grid pass.
        assert greedy.n_cached == greedy.n_evaluated
        assert CALLS == []
        # Cache stats are per-run: this run only hit, never stored.
        assert greedy.cache_stats["hits"] == greedy.n_evaluated
        assert greedy.cache_stats["stores"] == 0

    def test_frontier_on_flags_match_final_frontier(self, toy_space):
        result = explore(
            toy_space,
            GridStrategy(),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=20,
        )
        final = {v for v in result.frontier.vectors()}
        flagged = {
            result.frontier.vector(e.values)
            for e in result.evaluations
            if e.on_frontier
        }
        # Everything on the final frontier was flagged when admitted
        # (some flagged points may have been evicted later).
        assert final <= flagged

    def test_record_and_save(self, toy_space, tmp_path):
        result = explore(
            toy_space,
            GridStrategy(),
            objectives=("f1", "f2"),
            evaluator="explore-toy",
            budget=20,
            name="toy-explore",
        )
        record = result.to_record()
        assert record["experiment"] == "toy-explore"
        assert record["series"]["n_evaluated"] == 20
        assert len(record["series"]["frontier"]) == len(result.frontier)
        results_dir = ResultsDirectory(tmp_path / "out")
        result.save(results_dir)
        assert results_dir.load_record("toy-explore")["params"][
            "strategy"
        ] == "grid"
        assert (tmp_path / "out" / "toy-explore" / "frontier.csv").exists()

    def test_rejects_zero_budget(self, toy_space):
        with pytest.raises(ValueError, match="budget"):
            explore(
                toy_space,
                GridStrategy(),
                objectives=("f1",),
                evaluator="explore-toy",
                budget=0,
            )


@pytest.mark.slow
class TestDesignPointIntegration:
    def test_small_real_exploration(self, tmp_path):
        """A tiny end-to-end run through the real simulator stack."""
        space = SearchSpace(
            {"mapping": ["CK", "KN"], "array_side": [8, 16]},
            fixed={"network": "vgg-s", "sparse": True,
                   "sparsity_factor": 5.8},
            constraints=[fabric_fraction_limit(0.35)],
        )
        result = explore(
            space,
            GridStrategy(),
            cache=ResultCache(tmp_path / "cache"),
            budget=8,
            seed=1,
        )
        assert result.n_evaluated == 4
        assert len(result.frontier) >= 2  # latency/area trade-off
        keys = set(result.frontier_rows()[0])
        assert {"total_cycles", "total_j", "area_mm2"} <= keys
