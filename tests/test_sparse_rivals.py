"""Tests for the rival inference formats (Section II-D comparison)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csb import CSBTensor
from repro.sparse.rivals import (
    EIEMatrix,
    SCNNFilterBank,
    access_costs,
    csb_costs,
)


def random_sparse(rng, shape, density=0.2):
    dense = rng.normal(size=shape)
    dense[rng.uniform(size=shape) > density] = 0.0
    return dense


class TestEIEMatrix:
    def test_roundtrip(self, rng):
        dense = random_sparse(rng, (24, 16))
        mat = EIEMatrix.from_dense(dense)
        np.testing.assert_allclose(mat.to_dense(), dense)

    def test_roundtrip_with_long_runs(self, rng):
        # A mostly-zero matrix forces runs longer than 2**4 - 1.
        dense = np.zeros((100, 4))
        dense[0, 0] = 1.0
        dense[99, 0] = 2.0
        dense[50, 3] = 3.0
        mat = EIEMatrix.from_dense(dense, index_bits=4)
        np.testing.assert_allclose(mat.to_dense(), dense)
        assert mat.padding_entries > 0

    def test_no_padding_when_runs_fit(self):
        dense = np.array([[1.0, 0.0], [2.0, 3.0]])
        mat = EIEMatrix.from_dense(dense, index_bits=4)
        assert mat.padding_entries == 0
        assert mat.nnz == 3

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            EIEMatrix.from_dense(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            EIEMatrix.from_dense(np.zeros((4, 4)), index_bits=0)

    def test_read_column_matches_dense(self, rng):
        dense = random_sparse(rng, (32, 8))
        mat = EIEMatrix.from_dense(dense)
        for j in range(8):
            rows, vals, touched = mat.read_column(j)
            expect = np.nonzero(dense[:, j])[0]
            np.testing.assert_array_equal(rows, expect)
            np.testing.assert_allclose(vals, dense[expect, j])
            assert touched >= len(expect)

    def test_read_row_matches_dense(self, rng):
        dense = random_sparse(rng, (16, 24))
        mat = EIEMatrix.from_dense(dense)
        for i in range(16):
            cols, vals, _ = mat.read_row(i)
            expect = np.nonzero(dense[i])[0]
            np.testing.assert_array_equal(cols, expect)
            np.testing.assert_allclose(vals, dense[i, expect])

    def test_row_access_costs_more_than_column(self, rng):
        dense = random_sparse(rng, (64, 64), density=0.15)
        mat = EIEMatrix.from_dense(dense)
        col_cost = max(mat.read_column(j)[2] for j in range(64))
        row_cost = mat.read_row(32)[2]
        # A single transposed access touches far more entries than the
        # worst direct-order access.
        assert row_cost > 4 * col_cost

    def test_out_of_range(self, rng):
        mat = EIEMatrix.from_dense(random_sparse(rng, (4, 4)))
        with pytest.raises(IndexError):
            mat.read_column(4)
        with pytest.raises(IndexError):
            mat.read_row(-1)

    def test_storage_accounting(self, rng):
        dense = random_sparse(rng, (32, 32))
        mat = EIEMatrix.from_dense(dense)
        bits = mat.storage_bits()
        assert bits["values"] == mat.n_entries * 32
        assert bits["offsets"] == mat.n_entries * 4
        assert mat.total_storage_bits() == sum(bits.values())

    def test_empty_matrix(self):
        mat = EIEMatrix.from_dense(np.zeros((8, 8)))
        assert mat.nnz == 0
        np.testing.assert_allclose(mat.to_dense(), np.zeros((8, 8)))

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(2, 40),
        cols=st.integers(1, 12),
        seed=st.integers(0, 2**31),
        index_bits=st.integers(2, 6),
    )
    def test_roundtrip_property(self, rows, cols, seed, index_bits):
        rng = np.random.default_rng(seed)
        dense = random_sparse(rng, (rows, cols), density=0.3)
        mat = EIEMatrix.from_dense(dense, index_bits=index_bits)
        np.testing.assert_allclose(mat.to_dense(), dense)


class TestSCNNFilterBank:
    def test_roundtrip(self, rng):
        dense = random_sparse(rng, (8, 4, 3, 3))
        bank = SCNNFilterBank.from_dense(dense)
        np.testing.assert_allclose(bank.to_dense(), dense)

    def test_rejects_non_conv(self):
        with pytest.raises(ValueError):
            SCNNFilterBank.from_dense(np.zeros((4, 4)))

    def test_input_group_streaming(self, rng):
        dense = random_sparse(rng, (6, 5, 3, 3))
        bank = SCNNFilterBank.from_dense(dense)
        for c in range(5):
            _, vals, touched = bank.read_input_group(c)
            expect = dense[:, c][dense[:, c] != 0.0]
            assert touched == len(expect)
            np.testing.assert_allclose(np.sort(vals), np.sort(expect))

    def test_output_group_values(self, rng):
        dense = random_sparse(rng, (6, 5, 3, 3))
        bank = SCNNFilterBank.from_dense(dense)
        for k in range(6):
            _, vals, _ = bank.read_output_group(k)
            expect = dense[k][dense[k] != 0.0]
            np.testing.assert_allclose(np.sort(vals), np.sort(expect))

    def test_output_group_costs_more(self, rng):
        dense = random_sparse(rng, (16, 16, 3, 3), density=0.15)
        bank = SCNNFilterBank.from_dense(dense)
        in_cost = max(bank.read_input_group(c)[2] for c in range(16))
        out_cost = bank.read_output_group(8)[2]
        assert out_cost > 2 * in_cost

    def test_out_of_range(self, rng):
        bank = SCNNFilterBank.from_dense(random_sparse(rng, (2, 2, 3, 3)))
        with pytest.raises(IndexError):
            bank.read_input_group(2)
        with pytest.raises(IndexError):
            bank.read_output_group(-1)

    @settings(max_examples=20, deadline=None)
    @given(
        k=st.integers(1, 8),
        c=st.integers(1, 8),
        r=st.sampled_from([1, 3, 5]),
        seed=st.integers(0, 2**31),
    )
    def test_roundtrip_property(self, k, c, r, seed):
        rng = np.random.default_rng(seed)
        dense = random_sparse(rng, (k, c, r, r), density=0.3)
        bank = SCNNFilterBank.from_dense(dense)
        np.testing.assert_allclose(bank.to_dense(), dense)


class TestAccessCosts:
    def test_csb_costs_symmetric(self, rng):
        dense = random_sparse(rng, (8, 8, 3, 3))
        costs = csb_costs(CSBTensor.from_dense(dense))
        assert costs.forward == costs.backward == costs.weight_update
        assert costs.updatable
        assert costs.backward_penalty == 1.0

    def test_conv_comparison(self, rng):
        dense = random_sparse(rng, (16, 16, 3, 3), density=0.15)
        table = access_costs(dense)
        names = [c.format_name for c in table]
        assert names[0] == "CSB"
        assert any("SCNN" in n for n in names)
        assert any("EIE" in n for n in names)
        csb = table[0]
        for rival in table[1:]:
            assert rival.backward_penalty > 1.5
            assert not rival.updatable
        assert csb.backward_penalty == 1.0

    def test_fc_comparison(self, rng):
        dense = random_sparse(rng, (64, 48), density=0.15)
        table = access_costs(dense)
        assert len(table) == 2
        assert table[1].backward > table[1].forward

    def test_rejects_other_ranks(self, rng):
        with pytest.raises(ValueError):
            access_costs(rng.normal(size=(4,)))

    def test_backward_capped_by_reencode(self, rng):
        # With many rows, per-row scans exceed a one-off re-encode and
        # the model must pick the cheaper strategy.
        dense = random_sparse(rng, (256, 16), density=0.2)
        table = access_costs(dense)
        eie = table[1]
        assert eie.backward <= eie.extras["per_row_total"]
        assert eie.backward <= eie.extras["reencode"] + eie.forward
