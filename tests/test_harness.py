"""Tests for the experiment harness: the paper's headline claims.

These are the acceptance tests of the reproduction — each asserts a
qualitative result the paper reports (who wins, roughly by how much).
Heavier sweeps run at reduced scope to stay fast; the full versions
live in benchmarks/.
"""

import numpy as np
import pytest

from repro.harness import arch_experiments as _arch

format_fig01 = _arch.entry_point("format_fig01")
format_fig17 = _arch.entry_point("format_fig17")
format_fig18 = _arch.entry_point("format_fig18")
format_fig19 = _arch.entry_point("format_fig19")
format_fig20 = _arch.entry_point("format_fig20")
format_histogram = _arch.entry_point("format_histogram")
run_fig01_potential = _arch.entry_point("run_fig01_potential")
run_fig17_energy_breakdown = _arch.entry_point("run_fig17_energy_breakdown")
run_fig18_fig19_dataflows = _arch.entry_point("run_fig18_fig19_dataflows")
run_fig20_scalability = _arch.entry_point("run_fig20_scalability")
run_imbalance_histogram = _arch.entry_point("run_imbalance_histogram")
from repro.harness.common import (
    histogram_fractions,
    render_table,
    sparse_profile_for,
)
from repro.harness.tables import (
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)


class TestCommon:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1

    def test_histogram_fractions_sum_to_one(self, rng):
        fractions = histogram_fractions(rng.uniform(0, 2, size=1000))
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_profile_matches_table2_both_ways(self):
        """Calibration: weight sparsity AND MAC ratio match Table II."""
        from repro.models.zoo import PAPER_MODELS

        for name, entry in PAPER_MODELS.items():
            profile = sparse_profile_for(name)
            t2 = entry.table2
            assert profile.sparsity_factor() == pytest.approx(
                t2.sparsity_factor, rel=0.05
            ), name
            macs = np.array(
                [ls.layer.macs_per_sample() for ls in profile.layers]
            )
            dens = np.array([ls.weight_density for ls in profile.layers])
            mac_ratio = macs.sum() / (macs * dens).sum()
            assert mac_ratio == pytest.approx(
                t2.dense_macs / t2.sparse_macs, rel=0.15
            ), name

    def test_sparsity_override(self):
        profile = sparse_profile_for("resnet18", sparsity_factor=2.9)
        assert profile.sparsity_factor() == pytest.approx(2.9, rel=0.1)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            sparse_profile_for("lenet")


class TestFig01:
    def test_ideal_potential_bands(self):
        """Figure 1: ~2.6x speedup and ~2.3x energy at 5x sparsity."""
        result = run_fig01_potential("vgg-s", sparsity_factor=5.0)
        assert 1.8 < result.speedup() < 4.0
        assert 1.8 < result.energy_saving() < 3.5
        text = format_fig01(result)
        assert "fw" in text and "speedup" in text


class TestImbalanceHistograms:
    def test_fig5_heavy_tail(self):
        """Figure 5: unbalanced C,K frequently exceeds 50% overhead."""
        result = run_imbalance_histogram("vgg-s", "CK", balanced=False)
        frac_above_50 = sum(
            frac for center, frac in result.fractions.items()
            if center >= 0.625
        )
        assert result.mean_overhead > 0.3
        assert frac_above_50 > 0.2

    def test_fig13_collapse(self):
        """Figure 13: balancing pulls most sets under ~10-30%."""
        result = run_imbalance_histogram("vgg-s", "KN", balanced=True)
        assert result.mean_overhead < 0.2
        assert result.fractions[0.0] > 0.5  # bulk in the lowest bin

    def test_balancing_strictly_improves(self):
        raw = run_imbalance_histogram("vgg-s", "KN", balanced=False)
        balanced = run_imbalance_histogram("vgg-s", "KN", balanced=True)
        assert balanced.mean_overhead < raw.mean_overhead

    def test_format(self):
        result = run_imbalance_histogram("vgg-s", "KN", balanced=True)
        text = format_histogram(result, "Figure 13")
        assert "Figure 13" in text and "%" in text


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig17_energy_breakdown(networks=("vgg-s", "resnet18"))

    def test_savings_in_paper_band(self, result):
        """Paper: 2.27x-3.26x energy savings."""
        savings = result.savings()
        for net, ratio in savings.items():
            assert 1.7 < ratio < 4.2, (net, ratio)

    def test_mac_dominates_training_energy(self, result):
        """FP32 MACs dominate training energy (Section VI-C)."""
        for row in result.rows:
            if row["network"] == "resnet18" and not row["sparse"]:
                assert row["MAC"] > row["GLB"]
                assert row["MAC"] > row["DRAM"]

    def test_format(self, result):
        text = format_fig17(result)
        assert "DRAM" in text and "savings" in text


class TestFig18Fig19:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig18_fig19_dataflows(networks=("vgg-s",))

    def test_kn_fastest(self, result):
        """Figure 19: K,N is the overall fastest mapping."""
        assert result.fastest_mapping("vgg-s") in ("KN", "CN")

    def test_kn_beats_pq_substantially(self, result):
        cycles = {
            str(r["mapping"]): float(r["total_cycles"])
            for r in result.rows
            if r["sparse"]
        }
        assert cycles["PQ"] > 2.0 * cycles["KN"]

    def test_energy_nearly_flat_across_mappings(self, result):
        """Figure 18: dataflow choice has negligible energy impact."""
        assert result.energy_spread("vgg-s", sparse=True) < 1.25
        assert result.energy_spread("vgg-s", sparse=False) < 1.25

    def test_formats(self, result):
        assert "fastest" in format_fig19(result)
        assert "negligible" in format_fig18(result)


class TestFig20:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig20_scalability(
            networks=("resnet18",), mappings=("PQ", "KN")
        )

    def test_kn_scales_near_ideal(self, result):
        """Paper: ~3.9x on 4x the cores for the K,N mapping."""
        scaling = result.latency_scaling("resnet18", "KN")
        assert 3.0 < scaling <= 4.05

    def test_kn_scales_better_than_pq(self, result):
        assert result.latency_scaling(
            "resnet18", "KN"
        ) > result.latency_scaling("resnet18", "PQ")

    def test_energy_roughly_unchanged(self, result):
        """Same MACs on more PEs: energy moves little."""
        assert result.energy_scaling("resnet18", "KN") == pytest.approx(
            1.0, abs=0.25
        )

    def test_format(self, result):
        assert "1024" in format_fig20(result) or "32x32" in format_fig20(result)


class TestTables:
    def test_table2_stats_only(self):
        result = run_table2(networks=("resnet18",), with_training=False)
        row = result.rows[0]
        assert float(row["dense_size"]) == pytest.approx(11.7e6, rel=0.03)
        assert float(row["sparsity"]) == pytest.approx(11.7, rel=0.1)
        text = format_table2(result)
        assert "resnet18" in text

    def test_table3_matches_paper(self):
        result = run_table3()
        assert result.area_overhead == pytest.approx(0.14, abs=0.01)
        assert result.power_overhead == pytest.approx(0.11, abs=0.01)
        text = format_table3(result)
        assert "Quantile Engine" in text
