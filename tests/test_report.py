"""Tests for the report package (ASCII plots, CSV/JSON export)."""

import csv
import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.report.ascii_plot import (
    bar_chart,
    grouped_bars,
    histogram,
    line_plot,
    scatter_plot,
    sparkline,
)
from repro.report.export import (
    ResultsDirectory,
    experiment_record,
    write_csv,
    write_json,
)


class TestBarChart:
    def test_bars_scale_to_max(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_title_and_unit(self):
        out = bar_chart(["x"], [3.0], title="T", unit=" J")
        assert out.splitlines()[0] == "T"
        assert out.endswith("3 J")

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestHistogram:
    def test_percent_labels(self):
        out = histogram({0.0: 0.5, 0.3125: 0.25}, width=8)
        assert "50.0%" in out
        assert "25.0%" in out

    def test_zero_bins_render(self):
        out = histogram({0.0: 1.0, 1.25: 0.0})
        assert "0.0%" in out


class TestLinePlot:
    def test_contains_all_glyphs(self):
        out = line_plot(
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]}, width=20, height=6
        )
        assert "o" in out and "x" in out
        assert "o=up" in out and "x=down" in out

    def test_y_axis_labels(self):
        out = line_plot({"s": [0.0, 1.0]}, width=10, height=4)
        assert "1.000" in out and "0.000" in out

    def test_fixed_range_clamps(self):
        out = line_plot(
            {"s": [0.5, 2.0]}, width=10, height=4, y_range=(0.0, 1.0)
        )
        assert "1.000" in out

    def test_empty_series(self):
        assert line_plot({}) == "(no data)"
        assert line_plot({"a": []}, title="t") == "t"

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1]}, width=1)


class TestGroupedBars:
    def test_layout(self):
        out = grouped_bars(
            {"fw": {"dense": 2.0, "sparse": 1.0}, "bw": {"dense": 4.0}},
            width=8,
        )
        assert "fw:" in out and "bw:" in out
        # Global scaling: the 4.0 bar is full width.
        assert "████████" in out

    def test_empty(self):
        assert "(no data)" in grouped_bars({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars({"g": {"s": -1.0}})


class TestScatterPlot:
    def test_corners_and_legend(self):
        out = scatter_plot(
            {"pts": ([0.0, 10.0], [0.0, 5.0])}, width=20, height=6
        )
        lines = out.splitlines()
        # Extremes land in opposite corners; axis labels show ranges.
        assert lines[0].lstrip().startswith("5")
        assert lines[-3].lstrip().startswith("0")
        assert "·=pts" in out
        assert "10" in lines[-2]

    def test_later_series_overdraws(self):
        series = {
            "cloud": ([1.0, 2.0], [1.0, 2.0]),
            "front": ([1.0], [1.0]),
        }
        out = scatter_plot(series, width=12, height=5)
        assert "o" in out  # the frontier glyph survived the overdraw
        assert "o=front" in out

    def test_more_series_than_glyphs_all_legended(self):
        series = {
            f"s{i}": ([float(i)], [float(i)]) for i in range(10)
        }
        out = scatter_plot(series, width=20, height=5)
        for name in series:
            assert f"={name}" in out  # glyphs recycle, nothing dropped

    def test_axis_titles(self):
        out = scatter_plot(
            {"s": ([0, 1], [0, 1])}, x_label="cycles", y_label="joules"
        )
        assert "cycles" in out and "(y: joules)" in out

    def test_empty(self):
        assert scatter_plot({}) == "(no data)"
        assert scatter_plot({"s": ([], [])}, title="t") == "t"

    def test_validation(self):
        with pytest.raises(ValueError, match="x values"):
            scatter_plot({"s": ([1, 2], [1])})
        with pytest.raises(ValueError, match=">= 2"):
            scatter_plot({"s": ([1], [1])}, width=1)


class TestSparkline:
    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] < line[-1]
        assert len(line) == 4

    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(
            tmp_path / "t.csv", ["a", "b"], [[1, 2.5], [np.int64(3), "x"]]
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2.5"], ["3", "x"]]

    def test_csv_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "t.csv", ["a"], [[1, 2]])

    def test_json_coerces_numpy_and_dataclasses(self, tmp_path):
        @dataclass
        class Point:
            x: int
            y: float

        payload = {
            "arr": np.arange(3),
            "scalar": np.float64(1.5),
            "point": Point(1, 2.0),
            "nested": {"t": (1, 2)},
        }
        path = write_json(tmp_path / "d" / "t.json", payload)
        loaded = json.loads(path.read_text())
        assert loaded["arr"] == [0, 1, 2]
        assert loaded["scalar"] == 1.5
        assert loaded["point"] == {"x": 1, "y": 2.0}
        assert loaded["nested"]["t"] == [1, 2]

    def test_experiment_record_shape(self):
        rec = experiment_record(
            "fig17", {"n": 64}, {"energy": [1.0, 2.0]}, notes="kn"
        )
        assert rec["experiment"] == "fig17"
        assert rec["params"] == {"n": 64}
        assert rec["series"]["energy"] == [1.0, 2.0]
        with pytest.raises(ValueError):
            experiment_record("", {}, {})


class TestResultsDirectory:
    def test_save_and_load(self, tmp_path):
        results = ResultsDirectory(tmp_path / "results")
        rec = experiment_record("fig05", {"net": "vgg-s"}, {"bins": [0.5]})
        results.save_record(rec)
        assert results.load_record("fig05")["params"]["net"] == "vgg-s"
        assert results.list_experiments() == ["fig05"]

    def test_save_table(self, tmp_path):
        results = ResultsDirectory(tmp_path / "results")
        path = results.save_table("table2", "rows", ["m"], [["vgg"]])
        assert path.exists()
        assert path.name == "rows.csv"

    def test_missing_id_rejected(self, tmp_path):
        results = ResultsDirectory(tmp_path)
        with pytest.raises(ValueError):
            results.save_record({"series": {}})

    def test_empty_listing(self, tmp_path):
        assert ResultsDirectory(tmp_path / "nope").list_experiments() == []
