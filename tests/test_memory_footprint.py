"""Tests for the training-time memory footprint model."""

import pytest

from repro.core.schedules import paper_schedule
from repro.hw.memory import (
    activation_footprint,
    training_footprint,
    weight_bits_csb,
    weight_bits_dense,
    weight_footprint,
)
from repro.workloads.layer_spec import conv, fc


@pytest.fixture
def net():
    return [
        conv("c0", c=3, k=64, h=32, r=3),
        conv("c1", c=64, k=128, h=16, r=3),
        fc("fc", 128 * 8 * 8, 10),
    ]


class TestWeightBits:
    def test_dense(self):
        assert weight_bits_dense(1000) == 32_000

    def test_csb_at_full_density_exceeds_dense(self):
        # Masks and pointers are pure overhead when nothing is pruned.
        assert weight_bits_csb(1000, 1.0) > weight_bits_dense(1000)

    def test_csb_at_tenth_density_much_smaller(self):
        # values 3.2 + mask 1 + pointers ~3.6 bits/weight vs dense 32:
        # the mask+pointer overhead caps the reduction near 4x.
        assert weight_bits_csb(10_000, 0.1) < 0.26 * weight_bits_dense(10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            weight_bits_csb(100, 1.5)
        with pytest.raises(ValueError):
            weight_bits_dense(-1)


class TestWeightFootprint:
    def test_dropback_flat_and_low(self):
        wf = weight_footprint(paper_schedule("dropback"), 1_000_000, 100_000)
        assert wf.peak_bits == wf.bits.min()  # flat trajectory
        assert wf.peak_reduction > 4.0

    def test_gradual_peaks_dense(self):
        wf = weight_footprint(paper_schedule("lottery"), 1_000_000, 400_000)
        assert wf.peak_bits == wf.dense_bits
        assert wf.peak_reduction == pytest.approx(1.0)

    def test_switch_iteration_reported(self):
        wf = weight_footprint(paper_schedule("lottery"), 1_000_000, 400_000)
        assert wf.switch_iteration is not None and wf.switch_iteration > 0
        wf2 = weight_footprint(paper_schedule("dropback"), 1_000_000, 1000)
        assert wf2.switch_iteration == 0

    def test_best_format_chosen_pointwise(self):
        wf = weight_footprint(paper_schedule("lottery"), 1_000_000, 400_000)
        assert (wf.bits <= wf.dense_bits).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            weight_footprint(paper_schedule("dropback"), 1000, 0)


class TestActivationFootprint:
    def test_compression_saves(self, net):
        af = activation_footprint(net, n=16, act_density=0.4)
        assert af.reduction > 1.5
        assert set(af.per_layer_bits) == {"c0", "c1", "fc"}

    def test_dense_activations_never_worse_than_dense(self, net):
        af = activation_footprint(net, n=16, act_density=1.0)
        assert af.compressed_bits <= af.dense_bits

    def test_scales_with_minibatch(self, net):
        small = activation_footprint(net, n=8)
        large = activation_footprint(net, n=32)
        assert large.dense_bits == 4 * small.dense_bits

    def test_validation(self, net):
        with pytest.raises(ValueError):
            activation_footprint(net, n=0)


class TestTrainingFootprint:
    def test_procrustes_beats_gradual_peak(self, net):
        total = 200_000
        sparse = training_footprint(
            paper_schedule("procrustes"), net, n=16, total_iterations=total
        )
        gradual = training_footprint(
            paper_schedule("lottery"), net, n=16, total_iterations=total
        )
        assert sparse.weight_peak_bits < 0.3 * gradual.weight_peak_bits
        assert sparse.total_bits < gradual.total_bits

    def test_optimizer_state_follows_stored_weights(self, net):
        with_state = training_footprint(
            paper_schedule("dropback"), net, n=8, total_iterations=1000
        )
        without = training_footprint(
            paper_schedule("dropback"), net, n=8, total_iterations=1000,
            momentum_state=False,
        )
        assert with_state.optimizer_state_bits == with_state.weight_peak_bits
        assert without.optimizer_state_bits == 0


class TestWeightTraffic:
    def test_dropback_traffic_far_below_dense_methods(self):
        from repro.hw.memory import weight_traffic

        total = 200_000
        dropback = weight_traffic(
            paper_schedule("dropback"), 1_000_000, total
        )
        eager = weight_traffic(
            paper_schedule("eager-pruning"), 1_000_000, total
        )
        assert dropback.total_bits < 0.35 * eager.total_bits

    def test_dsr_pays_churn(self):
        from repro.hw.memory import weight_traffic

        dsr = weight_traffic(paper_schedule("dsr"), 1_000_000, 100_000)
        dropback = weight_traffic(
            paper_schedule("dropback"), 1_000_000, 100_000
        )
        assert dsr.churn_bits > 0.0
        assert dropback.churn_bits == 0.0

    def test_reads_equal_writes(self):
        from repro.hw.memory import weight_traffic

        t = weight_traffic(paper_schedule("lottery"), 500_000, 300_000)
        assert t.read_bits == t.write_bits
        assert t.total_bits == t.read_bits + t.write_bits + t.churn_bits

    def test_validation(self):
        from repro.hw.memory import weight_traffic

        with pytest.raises(ValueError):
            weight_traffic(paper_schedule("dropback"), 1000, 0)
