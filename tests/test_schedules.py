"""Tests for the sparsity-over-training schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedules import (
    ConstantSparsity,
    PAPER_SCHEDULES,
    SparseFromScratch,
    StepwisePruning,
    paper_schedule,
)


class TestConstantSparsity:
    def test_density_constant(self):
        sched = ConstantSparsity(name="d", sparsity_factor=10.0)
        assert sched.density(0) == pytest.approx(0.1)
        assert sched.density(1_000_000) == pytest.approx(0.1)

    def test_decay_prefix_is_computation_dense(self):
        sched = ConstantSparsity(
            name="p", sparsity_factor=10.0, decay_iterations=1000
        )
        assert sched.density(0) == 1.0
        assert sched.density(999) == 1.0
        assert sched.density(1000) == pytest.approx(0.1)

    def test_storage_sparse_throughout(self):
        sched = ConstantSparsity(
            name="p", sparsity_factor=10.0, decay_iterations=1000
        )
        assert sched.storage_density(0) == pytest.approx(0.1)
        assert sched.peak_density(10_000) == pytest.approx(0.1)

    def test_no_format_switch_needed(self):
        sched = ConstantSparsity(name="d", sparsity_factor=10.0)
        assert sched.format_switch_iteration(1000) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantSparsity(name="bad", sparsity_factor=0.5)
        with pytest.raises(ValueError):
            ConstantSparsity(name="bad", sparsity_factor=2, decay_iterations=-1)


class TestStepwisePruning:
    def test_density_steps_down(self):
        sched = StepwisePruning(
            name="lt", prune_fraction=0.2, interval=100, target_factor=5.0
        )
        assert sched.density(0) == 1.0
        assert sched.density(99) == 1.0
        assert sched.density(100) == pytest.approx(0.8)
        assert sched.density(200) == pytest.approx(0.64)

    def test_density_floors_at_target(self):
        sched = StepwisePruning(
            name="lt", prune_fraction=0.2, interval=10, target_factor=5.0
        )
        assert sched.density(10_000) == pytest.approx(0.2)

    def test_rounds_to_target(self):
        sched = StepwisePruning(
            name="lt", prune_fraction=0.2, interval=10, target_factor=5.0
        )
        rounds = sched.rounds_to_target()
        assert (1 - 0.2) ** rounds <= 0.2 < (1 - 0.2) ** (rounds - 1)

    def test_peak_is_dense(self):
        sched = StepwisePruning(
            name="lt", prune_fraction=0.2, interval=10, target_factor=5.0
        )
        # Intro claim (i): gradual pruning has no peak-memory benefit.
        assert sched.peak_density(1000) == 1.0

    def test_average_density_is_high(self):
        # Eager Pruning's slow schedule keeps density high for most of
        # a typical run — intro claim (ii).
        sched = paper_schedule("eager-pruning")
        avg = sched.average_density(450_000)
        assert avg > 0.6

    def test_format_switch_is_late(self):
        sched = StepwisePruning(
            name="lt", prune_fraction=0.2, interval=100, target_factor=5.0
        )
        switch = sched.format_switch_iteration(10_000)
        assert switch is not None and switch > 0

    def test_never_switches_if_target_high_density(self):
        sched = StepwisePruning(
            name="mild", prune_fraction=0.1, interval=100, target_factor=1.5
        )
        assert sched.format_switch_iteration(10_000) is None

    def test_rejects_negative_iteration(self):
        sched = paper_schedule("lottery")
        with pytest.raises(ValueError):
            sched.density(-1)


class TestSparseFromScratch:
    def test_flat_density(self):
        sched = SparseFromScratch(name="dsr", sparsity_factor=3.5)
        assert sched.density(0) == pytest.approx(1 / 3.5)
        assert sched.peak_density(1000) == pytest.approx(1 / 3.5)

    def test_mask_churn(self):
        sched = SparseFromScratch(
            name="dsr",
            sparsity_factor=4.0,
            rewire_interval=100,
            rewire_fraction=0.1,
        )
        churn = sched.mask_churn_per_iteration(1_000_000)
        assert churn == pytest.approx(1_000_000 / 4 * 0.1 / 100)


class TestPaperSchedules:
    def test_registry_contents(self):
        assert set(PAPER_SCHEDULES) == {
            "lottery",
            "eager-pruning",
            "dsr",
            "dropback",
            "procrustes",
        }

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            paper_schedule("magic")

    def test_lookup_case_insensitive(self):
        assert paper_schedule("Dropback").name == "dropback"

    def test_procrustes_beats_gradual_on_average_density(self):
        # The intro's energy argument in one assertion: over a
        # ResNet-scale run, the sparse-from-scratch schedules have far
        # lower average (computation) density.
        total = 450_000
        procrustes = paper_schedule("procrustes").average_density(total)
        lottery = paper_schedule("lottery").average_density(total)
        eager = paper_schedule("eager-pruning").average_density(total)
        assert procrustes < lottery / 3
        assert procrustes < eager / 3

    def test_density_curve_matches_pointwise(self):
        sched = paper_schedule("lottery")
        curve = sched.density_curve(500)
        assert curve.shape == (500,)
        assert curve[0] == sched.density(0)
        assert curve[-1] == sched.density(499)

    def test_final_sparsity_factor(self):
        sched = ConstantSparsity(name="d", sparsity_factor=8.0)
        assert sched.final_sparsity_factor(100) == pytest.approx(8.0)


@settings(max_examples=30, deadline=None)
@given(
    fraction=st.floats(0.01, 0.5),
    interval=st.integers(1, 500),
    factor=st.floats(1.1, 20.0),
    t=st.integers(0, 10_000),
)
def test_stepwise_density_bounds_property(fraction, interval, factor, t):
    sched = StepwisePruning(
        name="p", prune_fraction=fraction, interval=interval,
        target_factor=factor,
    )
    d = sched.density(t)
    assert 1.0 / factor - 1e-12 <= d <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    factor=st.floats(1.0, 50.0),
    decay=st.integers(0, 5000),
    t=st.integers(0, 10_000),
)
def test_storage_never_exceeds_computation_density_for_dropback(
    factor, decay, t
):
    sched = ConstantSparsity(
        name="d", sparsity_factor=factor, decay_iterations=decay
    )
    assert sched.storage_density(t) <= sched.density(t) + 1e-12
