"""Tests for the single-pass evaluation core and its fast kernels.

Three families:

* **Parity** — the vectorized set-building kernels must be
  *bit-identical* to the kept ``_reference_*`` loop implementations
  for fixed seeds, across mappings, phases, balance modes, and both
  sampling modes.
* **Memoization** — content keys address exactly what determines a
  result; LRU and disk tiers return the same sets they stored.
* **Latency/energy equivalence** — both models read the same sampled
  MAC counts per (layer, phase), closing the historical seedless
  energy-walk asymmetry.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import evalcore, sampling
from repro.dataflow.energy_model import network_energy
from repro.dataflow.latency import network_latency
from repro.dataflow.loadbalance import _reference_balance_sets, balance_sets
from repro.dataflow.mapping import MAPPINGS
from repro.dataflow.simulator import simulate
from repro.dataflow.tiling import build_sets, build_sets_reference
from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16
from repro.hw.cyclesim import (
    CycleLevelSimulator,
    FabricConfig,
    _reference_accumulate,
)
from repro.hw.energy import DEFAULT_ENERGY_TABLE
from repro.workloads.layer_spec import conv
from repro.workloads.phases import PHASES, phase_op

SET_FIELDS = ("max_work", "mean_work", "sum_work", "busy_pes", "weight")
BALANCE_MODES = ("none", "half", "perfect")


def assert_sets_identical(a, b):
    for name in SET_FIELDS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


@pytest.fixture(params=[False, True], ids=["fast-sampling", "exact-sampling"])
def sampling_exact(request):
    with sampling.sampling_mode(exact=request.param):
        yield request.param


class TestKernelParity:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("balance", BALANCE_MODES)
    def test_bit_identical_across_conditions(
        self, small_profile, mapping, phase, balance, sampling_exact
    ):
        for ls in small_profile.layers:
            op = phase_op(ls.layer, phase, 32)
            fast = build_sets(
                op, mapping, PROCRUSTES_16x16, ls,
                np.random.default_rng(11), sparse=True, balance=balance,
            )
            reference = build_sets_reference(
                op, mapping, PROCRUSTES_16x16, ls,
                np.random.default_rng(11), sparse=True, balance=balance,
            )
            assert_sets_identical(fast, reference)

    @pytest.mark.parametrize("mapping", ["KN", "CN"])
    def test_dense_paths_identical(self, small_profile, mapping):
        ls = small_profile.layers[1]
        op = phase_op(ls.layer, "wu", 32)
        fast = build_sets(
            op, mapping, PROCRUSTES_16x16, ls,
            np.random.default_rng(0), sparse=False,
        )
        reference = build_sets_reference(
            op, mapping, PROCRUSTES_16x16, ls,
            np.random.default_rng(0), sparse=False,
        )
        assert_sets_identical(fast, reference)

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_cn_wu_property(self, seed, n):
        """The einsum CN weight-update kernel vs the triple loop."""
        layer = conv("c", c=24, k=16, h=8, r=3)
        from repro.workloads.sparsity import synthetic_profile

        ls = synthetic_profile("p", [layer], 3.0, seed=1).layers[0]
        op = phase_op(layer, "wu", n)
        fast = build_sets(
            op, "CN", PROCRUSTES_16x16, ls,
            np.random.default_rng(seed), sparse=True, balance="half",
        )
        reference = build_sets_reference(
            op, "CN", PROCRUSTES_16x16, ls,
            np.random.default_rng(seed), sparse=True, balance="half",
        )
        assert_sets_identical(fast, reference)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_fused_balance_matches_split_then_pair(self, seed):
        gen = np.random.default_rng(seed)
        work = gen.exponential(5.0, size=(50, 16))
        fused = balance_sets(work, np.random.default_rng(seed + 1))
        composed = _reference_balance_sets(
            work, np.random.default_rng(seed + 1)
        )
        np.testing.assert_array_equal(fused, composed)

    @given(
        n_sets=st.integers(1, 30),
        seed=st.integers(0, 1000),
        double_buffered=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_cyclesim_accumulate_matches_loop(
        self, n_sets, seed, double_buffered
    ):
        gen = np.random.default_rng(seed)
        fills = gen.uniform(0, 100, n_sets)
        computes = gen.uniform(0, 100, n_sets)
        drains = gen.uniform(0, 100, n_sets)
        sim = CycleLevelSimulator(
            PROCRUSTES_16x16, FabricConfig(double_buffered=double_buffered)
        )
        from repro.hw.cyclesim import CycleSimResult

        result = CycleSimResult(mapping="KN", balanced=False)
        sim._accumulate(result, fills, computes, drains)
        total, compute_total = _reference_accumulate(
            double_buffered, list(fills), list(computes), list(drains)
        )
        assert result.cycles == pytest.approx(total, rel=1e-12)
        assert result.compute_cycles == pytest.approx(compute_total, rel=1e-12)


class TestSampling:
    def test_binomial_moments_and_bounds(self):
        rng = np.random.default_rng(3)
        probs = np.full(200_000, 0.4)
        draws = sampling.binomial_counts(rng, 100, probs)
        assert draws.min() >= 0.0 and draws.max() <= 100.0
        assert draws.mean() == pytest.approx(40.0, rel=0.01)
        assert draws.std() == pytest.approx(np.sqrt(100 * 0.4 * 0.6), rel=0.05)

    def test_binomial_small_counts_stay_exact_distribution(self):
        rng = np.random.default_rng(3)
        probs = np.full(100_000, 0.01)
        draws = sampling.binomial_counts(rng, 50, probs)
        assert draws.min() >= 0.0
        assert draws.mean() == pytest.approx(0.5, rel=0.05)

    def test_beta_moments(self):
        rng = np.random.default_rng(3)
        draws = sampling.beta_values(rng, 36.0, 36.0, (100_000,))
        assert draws.min() >= 0.0 and draws.max() <= 1.0
        assert draws.mean() == pytest.approx(0.5, abs=0.005)

    def test_exact_mode_uses_exact_generators(self):
        probs = np.full(5000, 0.4)
        with sampling.sampling_mode(exact=True):
            exact = sampling.binomial_counts(
                np.random.default_rng(9), 100, probs
            )
        direct = np.random.default_rng(9).binomial(100, probs).astype(float)
        np.testing.assert_array_equal(exact, direct)

    def test_replica_weights_sum_to_count(self):
        for count, cap in [(1, 4), (7, 3), (64, 16), (100, 16)]:
            weights = sampling.replica_weights(count, cap)
            assert weights.sum() == count
            assert weights.shape[0] == min(count, cap)
        with sampling.sampling_mode(exact=True):
            assert sampling.replica_weights(64, 16).shape[0] == 64
        with pytest.raises(ValueError):
            sampling.replica_weights(0, 4)


class TestContentKeys:
    def test_key_ignores_glb_and_layer_name(self, small_profile):
        from dataclasses import replace

        ls = small_profile.layers[1]
        base = evalcore.layer_phase_key(
            ls, "fw", "KN", PROCRUSTES_16x16, 64, True, "half", 0
        )
        bigger_glb = replace(PROCRUSTES_16x16, glb_bytes=512 * 1024)
        assert base == evalcore.layer_phase_key(
            ls, "fw", "KN", bigger_glb, 64, True, "half", 0
        )
        renamed = replace(ls, layer=replace(ls.layer, name="other"))
        assert base == evalcore.layer_phase_key(
            renamed, "fw", "KN", PROCRUSTES_16x16, 64, True, "half", 0
        )

    @pytest.mark.parametrize(
        "change",
        ["phase", "mapping", "balance", "seed", "n", "rf", "density"],
    )
    def test_key_sensitive_to_what_matters(self, small_profile, change):
        from dataclasses import replace

        ls = small_profile.layers[1]
        base = evalcore.layer_phase_key(
            ls, "fw", "KN", PROCRUSTES_16x16, 64, True, "half", 0
        )
        if change == "phase":
            other = evalcore.layer_phase_key(
                ls, "bw", "KN", PROCRUSTES_16x16, 64, True, "half", 0
            )
        elif change == "mapping":
            other = evalcore.layer_phase_key(
                ls, "fw", "CN", PROCRUSTES_16x16, 64, True, "half", 0
            )
        elif change == "balance":
            other = evalcore.layer_phase_key(
                ls, "fw", "KN", PROCRUSTES_16x16, 64, True, "none", 0
            )
        elif change == "seed":
            other = evalcore.layer_phase_key(
                ls, "fw", "KN", PROCRUSTES_16x16, 64, True, "half", 1
            )
        elif change == "n":
            other = evalcore.layer_phase_key(
                ls, "fw", "KN", PROCRUSTES_16x16, 32, True, "half", 0
            )
        elif change == "rf":
            smaller_rf = replace(PROCRUSTES_16x16, rf_bytes_per_pe=512)
            other = evalcore.layer_phase_key(
                ls, "fw", "KN", smaller_rf, 64, True, "half", 0
            )
        else:  # density profile content
            scaled = replace(
                ls, out_channel_density=ls.out_channel_density * 0.9
            )
            other = evalcore.layer_phase_key(
                scaled, "fw", "KN", PROCRUSTES_16x16, 64, True, "half", 0
            )
        assert base != other


class TestMemo:
    def test_lru_hit_returns_identical_sets(self, small_profile):
        memo = evalcore.EvalMemo()
        first = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=memo
        )
        assert memo.stats.misses > 0 and memo.stats.hits == 0
        second = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=memo
        )
        assert memo.stats.hits == memo.stats.misses
        for phase in PHASES:
            for a, b in zip(first.layers[phase], second.layers[phase]):
                assert a.cycles == b.cycles
                assert a.macs == b.macs
                assert_sets_identical(a.sets, b.sets)

    def test_disk_tier_round_trip(self, small_profile, tmp_path):
        memo = evalcore.EvalMemo(disk_root=tmp_path / "tier")
        first = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=memo
        )
        # Fresh process-local state, same disk tier.
        rehydrated = evalcore.EvalMemo(disk_root=tmp_path / "tier")
        second = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=rehydrated
        )
        assert rehydrated.stats.disk_hits > 0
        for phase in PHASES:
            for a, b in zip(first.layers[phase], second.layers[phase]):
                assert a.cycles == b.cycles
                assert_sets_identical(a.sets, b.sets)

    def test_lru_eviction_bounds_entries(self, small_profile):
        memo = evalcore.EvalMemo(maxsize=2)
        evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=memo
        )
        assert len(memo) <= 2

    def test_memoization_is_content_keyed_not_order_keyed(
        self, small_profile
    ):
        """Evaluating a phase subset matches the full walk, layer by
        layer — per-layer streams derive from content, not call order."""
        full = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32, memo=None
        )
        just_wu = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32,
            phases=("wu",), memo=None,
        )
        for a, b in zip(full.layers["wu"], just_wu.layers["wu"]):
            assert a.cycles == b.cycles
            assert_sets_identical(a.sets, b.sets)

    def test_set_memo_round_trips_disabled_state(self):
        """Scoping a temporary memo must restore the exact prior
        default — including a disabled (None) one."""
        original = evalcore.set_memo(None)
        try:
            assert evalcore.get_memo() is None
            scoped = evalcore.EvalMemo()
            previous = evalcore.set_memo(scoped)
            assert previous is None
            assert evalcore.get_memo() is scoped
            evalcore.set_memo(previous)
            assert evalcore.get_memo() is None
        finally:
            evalcore.set_memo(original)

    def test_explore_tier_restores_prior_memo(self, tmp_path):
        from repro.harness.explore_experiments import cache_tiers

        original = evalcore.set_memo(None)  # user disabled memoization
        try:
            with cache_tiers(str(tmp_path / "cache")):
                assert evalcore.get_memo() is not None
            assert evalcore.get_memo() is None  # still disabled after
        finally:
            evalcore.set_memo(original)

    def test_reference_mode_bypasses_memo(self, small_profile):
        memo = evalcore.EvalMemo()
        with evalcore.reference_implementation():
            assert evalcore.using_reference()
            evalcore.evaluate_network(
                small_profile, "KN", PROCRUSTES_16x16, 32, memo=memo
            )
        assert not evalcore.using_reference()
        assert memo.stats.misses == 0 and memo.stats.stores == 0


class TestLatencyEnergyEquivalence:
    def test_energy_macs_equal_latency_macs_per_layer(self, small_profile):
        evaluation = evalcore.evaluate_network(
            small_profile, "KN", PROCRUSTES_16x16, 32,
            table=DEFAULT_ENERGY_TABLE, seed=5, memo=None,
        )
        for phase in PHASES:
            for row in evaluation.layers[phase]:
                implied = row.energy.mac_j / (
                    DEFAULT_ENERGY_TABLE.mac_fp32_pj * 1e-12
                )
                assert implied == pytest.approx(row.macs, rel=1e-12)

    @pytest.mark.parametrize("mapping", MAPPINGS)
    def test_wrappers_share_sets_for_equal_seeds(
        self, small_profile, mapping
    ):
        latency = network_latency(
            small_profile, mapping, PROCRUSTES_16x16, 32, seed=7
        )
        energy = network_energy(
            small_profile, mapping, PROCRUSTES_16x16, 32,
            DEFAULT_ENERGY_TABLE, seed=7,
        )
        for phase in PHASES:
            latency_macs = sum(l.macs for l in latency.layers[phase])
            energy_macs = energy[phase].mac_j / (
                DEFAULT_ENERGY_TABLE.mac_fp32_pj * 1e-12
            )
            assert energy_macs == pytest.approx(latency_macs, rel=1e-9)

    def test_balancing_preserves_total_macs_exactly(self, small_profile):
        """Half-tile pairing redistributes work between PEs but never
        changes a set's total MACs: identical draws, identical totals."""
        ls = small_profile.layers[1]
        op = phase_op(ls.layer, "fw", 32)
        raw = build_sets(
            op, "KN", PROCRUSTES_16x16, ls,
            np.random.default_rng(3), sparse=True, balance="none",
        )
        balanced = build_sets(
            op, "KN", PROCRUSTES_16x16, ls,
            np.random.default_rng(3), sparse=True, balance="half",
        )
        assert balanced.total_macs() == pytest.approx(
            raw.total_macs(), rel=1e-12
        )

    def test_energy_balance_close_across_independent_draws(
        self, small_profile
    ):
        """Balance mode is part of the content key (balanced and
        unbalanced evaluations sample independently), so MAC energy
        differs only by sampling noise."""
        balanced = network_energy(
            small_profile, "KN", PROCRUSTES_16x16, 32,
            DEFAULT_ENERGY_TABLE, seed=3, balance=True,
        )
        unbalanced = network_energy(
            small_profile, "KN", PROCRUSTES_16x16, 32,
            DEFAULT_ENERGY_TABLE, seed=3, balance=False,
        )
        for phase in PHASES:
            assert balanced[phase].mac_j == pytest.approx(
                unbalanced[phase].mac_j, rel=0.05
            )

    def test_simulate_deterministic_for_seed(self, small_profile):
        first = simulate(small_profile, "KN", n=32, seed=9)
        second = simulate(small_profile, "KN", n=32, seed=9)
        assert first.total_cycles == second.total_cycles
        assert first.total_energy_j == second.total_energy_j
        different = simulate(small_profile, "KN", n=32, seed=10)
        assert different.total_cycles != first.total_cycles

    def test_reference_mode_end_to_end_sane(self, small_profile):
        """The pre-optimization path still reproduces the headline
        ordering (sparse beats dense) the figures rely on."""
        from repro.workloads.sparsity import dense_profile

        dense = dense_profile(
            "dense", [ls.layer for ls in small_profile.layers]
        )
        with evalcore.reference_implementation():
            sparse_run = simulate(small_profile, "KN", n=32)
            dense_run = simulate(
                dense, "KN", arch=BASELINE_16x16, n=32, sparse=False
            )
        assert sparse_run.total_cycles < dense_run.total_cycles


class TestProfileCommand:
    def test_run_profile_reports_stages(self):
        from repro.harness.profile_cmd import format_profile, run_profile

        rows = run_profile(networks=("vgg-s",), mappings=("KN",))
        assert len(rows) == 1
        row = rows[0]
        assert row["cold_s"] > 0 and row["warm_s"] > 0
        assert row["warm_s"] < row["cold_s"]
        assert row["memo_hits"] > 0
        assert row["balance_s"] >= 0.0
        text = format_profile(rows)
        assert "vgg-s" in text and "cold_s" in text
