"""Tests for layer specs, phase derivation, and sparsity profiles."""

import numpy as np
import pytest

from repro.workloads.layer_spec import LayerSpec, conv, fc
from repro.workloads.phases import PHASES, phase_op
from repro.workloads.sparsity import (
    dense_profile,
    profile_from_masks,
    synthetic_profile,
)


class TestLayerSpec:
    def test_conv_output_dims(self):
        spec = conv("c", c=3, k=64, h=32, r=3, stride=2)
        assert (spec.p, spec.q) == (16, 16)

    def test_weight_count(self):
        spec = conv("c", c=16, k=32, h=8, r=3)
        assert spec.weight_count == 32 * 16 * 9

    def test_grouped_weight_count(self):
        spec = conv("c", c=32, k=32, h=8, r=3, groups=32)
        assert spec.weight_count == 32 * 9  # depthwise

    def test_macs_formula(self):
        spec = conv("c", c=4, k=8, h=6, r=3)
        assert spec.macs(2) == 2 * 8 * 6 * 6 * 4 * 9

    def test_fc_is_1x1(self):
        spec = fc("f", 128, 10)
        assert spec.weight_count == 1280
        assert spec.macs(1) == 1280
        assert (spec.p, spec.q) == (1, 1)

    def test_dims_exposes_seven_loops(self):
        dims = conv("c", c=4, k=8, h=6, r=3).dims(16)
        assert set(dims) == {"N", "K", "C", "R", "S", "P", "Q"}
        assert dims["N"] == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            conv("c", c=3, k=4, h=8, r=3, groups=2)
        with pytest.raises(ValueError):
            LayerSpec(name="bad", c=1, k=1, r=5, s=5, h=2, w=2)

    def test_iact_oact_counts(self):
        spec = conv("c", c=4, k=8, h=6, r=3)
        assert spec.iact_count(2) == 2 * 4 * 36
        assert spec.oact_count(2) == 2 * 8 * 36


class TestPhases:
    def test_all_phases_same_dense_macs(self):
        """Figure 2: the three phases execute the same MAC volume."""
        spec = conv("c", c=16, k=32, h=8, r=3)
        macs = {ph: phase_op(spec, ph, 8).dense_macs for ph in PHASES}
        assert len(set(macs.values())) == 1

    def test_fw_sparse_operand_is_weights(self):
        op = phase_op(conv("c", c=4, k=8, h=6), "fw", 4)
        assert op.sparse_operand == "weights"
        assert op.out_channels == 8 and op.in_channels == 4

    def test_bw_swaps_channel_roles(self):
        """Figure 2b: the backward conv produces dL/dx with C channels."""
        op = phase_op(conv("c", c=4, k=8, h=6), "bw", 4)
        assert op.sparse_operand == "weights"
        assert op.out_channels == 4 and op.in_channels == 8
        assert op.spatial == (6, 6)

    def test_wu_sparse_operand_is_iacts(self):
        """Section II-B: batch norm kills dL/dy sparsity, so the wu
        phase leans on input activations."""
        op = phase_op(conv("c", c=4, k=8, h=6), "wu", 4)
        assert op.sparse_operand == "iacts"
        assert "N" in op.sparsity_varies_along

    def test_sparse_macs_scales_by_density(self):
        op = phase_op(conv("c", c=4, k=8, h=6), "fw", 4)
        assert op.sparse_macs(0.25) == pytest.approx(op.dense_macs * 0.25)
        with pytest.raises(ValueError):
            op.sparse_macs(1.5)

    def test_unknown_phase(self):
        with pytest.raises(ValueError):
            phase_op(conv("c", c=4, k=8, h=6), "inference", 4)


class TestSyntheticProfile:
    def test_hits_target_sparsity(self, small_specs):
        profile = synthetic_profile("net", small_specs, 5.0, seed=0)
        assert profile.sparsity_factor() == pytest.approx(5.0, rel=0.05)

    def test_channel_density_means_match_layer(self, small_specs):
        profile = synthetic_profile("net", small_specs, 4.0, seed=0)
        for ls in profile.layers:
            assert ls.out_channel_density.mean() == pytest.approx(
                ls.weight_density, rel=0.15
            )

    def test_first_layer_input_is_dense(self, small_specs):
        profile = synthetic_profile("net", small_specs, 4.0, seed=0)
        assert profile.layers[0].iact_density == 1.0

    def test_mac_ratio_fitting(self, small_specs):
        """The allocation exponent search matches a MAC-reduction
        target alongside the weight budget (Table II calibration)."""
        def mac_ratio(profile):
            macs = np.array([s.macs_per_sample() for s in small_specs])
            dens = np.array([ls.weight_density for ls in profile.layers])
            return macs.sum() / (macs * dens).sum()

        low = synthetic_profile(
            "net", small_specs, 5.0, seed=0, target_mac_ratio=3.8
        )
        high = synthetic_profile(
            "net", small_specs, 5.0, seed=0, target_mac_ratio=6.0
        )
        # The fit moves the MAC ratio in the requested direction while
        # holding the weight budget.
        assert mac_ratio(low) < mac_ratio(high)
        assert mac_ratio(low) == pytest.approx(3.8, rel=0.25)
        assert low.sparsity_factor() == pytest.approx(5.0, rel=0.1)
        assert high.sparsity_factor() == pytest.approx(5.0, rel=0.1)

    def test_factor_one_is_dense(self, small_specs):
        profile = synthetic_profile("net", small_specs, 1.0, seed=0)
        assert all(ls.weight_density == 1.0 for ls in profile.layers)

    def test_rejects_bad_factor(self, small_specs):
        with pytest.raises(ValueError):
            synthetic_profile("net", small_specs, 0.5)

    def test_deterministic_by_seed(self, small_specs):
        a = synthetic_profile("net", small_specs, 4.0, seed=3)
        b = synthetic_profile("net", small_specs, 4.0, seed=3)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(
                la.out_channel_density, lb.out_channel_density
            )


class TestDenseAndMeasuredProfiles:
    def test_dense_profile_all_ones(self, small_specs):
        profile = dense_profile("net", small_specs)
        assert profile.sparsity_factor() == pytest.approx(1.0)
        assert all(ls.iact_density == 1.0 for ls in profile.layers)

    def test_profile_from_masks(self, small_specs, rng):
        spec = small_specs[0]
        mask = rng.uniform(size=(spec.k, spec.c, spec.r, spec.s)) < 0.3
        profile = profile_from_masks(
            "net", [spec], {spec.name: mask}, {spec.name: 0.4}
        )
        ls = profile.layers[0]
        assert ls.weight_density == pytest.approx(mask.mean())
        np.testing.assert_allclose(
            ls.out_channel_density,
            np.clip(mask.reshape(spec.k, -1).mean(axis=1), 1e-4, 1.0),
        )

    def test_profile_from_masks_missing_layer_dense(self, small_specs):
        profile = profile_from_masks("net", small_specs, {})
        assert all(ls.weight_density == 1.0 for ls in profile.layers)

    def test_by_layer_lookup(self, small_profile):
        by_name = small_profile.by_layer()
        assert set(by_name) == {ls.layer.name for ls in small_profile.layers}
