"""Tests for datasets, the Network container, SGD, and the trainer."""

import numpy as np
import pytest

from repro.models.vgg import mini_vgg_s
from repro.nn.data import make_blob_images, make_striped_images, minibatches
from repro.nn.layers import Parameter
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer


class TestDatasets:
    def test_blob_shapes_and_split(self):
        train, val = make_blob_images(
            n_classes=4, samples_per_class=10, size=8, val_fraction=0.25
        )
        assert train.images.shape[1:] == (3, 8, 8)
        assert len(train) + len(val) == 40
        assert len(val) == 10
        assert train.n_classes == 4

    def test_blob_deterministic_by_seed(self):
        a, _ = make_blob_images(n_classes=2, samples_per_class=5, seed=9)
        b, _ = make_blob_images(n_classes=2, samples_per_class=5, seed=9)
        np.testing.assert_array_equal(a.images, b.images)

    def test_blob_seed_changes_data(self):
        a, _ = make_blob_images(n_classes=2, samples_per_class=5, seed=1)
        b, _ = make_blob_images(n_classes=2, samples_per_class=5, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_striped_shapes(self):
        train, val = make_striped_images(
            n_classes=3, samples_per_class=8, channels=2, size=8
        )
        assert train.images.shape[1:] == (2, 8, 8)
        assert train.n_classes == 3

    def test_minibatches_drop_last(self, rng):
        train, _ = make_blob_images(n_classes=2, samples_per_class=10)
        batches = list(minibatches(train, 7, rng))
        assert all(b[0].shape[0] == 7 for b in batches)

    def test_minibatches_cover_all_without_drop(self, rng):
        train, _ = make_blob_images(n_classes=2, samples_per_class=10)
        batches = list(minibatches(train, 7, rng, drop_last=False))
        assert sum(b[0].shape[0] for b in batches) == len(train)

    def test_minibatch_bad_size(self, rng):
        train, _ = make_blob_images(n_classes=2, samples_per_class=4)
        with pytest.raises(ValueError):
            list(minibatches(train, 0, rng))


class TestNetwork:
    def test_parameter_counts(self):
        net = mini_vgg_s(n_classes=4, width=8)
        assert net.parameter_count() > net.prunable_count() > 0

    def test_loss_and_grad_fills_gradients(self, rng):
        net = mini_vgg_s(n_classes=4, width=8)
        x = rng.normal(size=(4, 3, 16, 16))
        labels = np.array([0, 1, 2, 3])
        loss, acc = net.loss_and_grad(x, labels)
        assert loss > 0
        assert 0.0 <= acc <= 1.0
        assert all(p.grad is not None for p in net.parameters())

    def test_evaluate_batches(self, rng):
        net = mini_vgg_s(n_classes=3, width=8)
        x = rng.normal(size=(10, 3, 16, 16))
        labels = rng.integers(0, 3, size=10)
        loss, acc = net.evaluate(x, labels, batch_size=4)
        assert loss > 0 and 0.0 <= acc <= 1.0

    def test_activation_densities_recorded(self, rng):
        net = mini_vgg_s(n_classes=3, width=8)
        net.forward(rng.normal(size=(2, 3, 16, 16)))
        densities = net.activation_densities()
        assert densities
        assert all(0.0 <= d <= 1.0 for d in densities.values())

    def test_describe_mentions_layers(self):
        net = mini_vgg_s(n_classes=3, width=8)
        text = net.describe()
        assert "conv" in text and "fc" in text


class TestSGD:
    def test_plain_step(self, rng):
        p = Parameter("w", np.ones(4))
        opt = SGD([p], lr=0.5)
        p.grad = np.ones(4)
        opt.step()
        np.testing.assert_allclose(p.data, 0.5)

    def test_weight_decay(self):
        p = Parameter("w", np.full(3, 2.0))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(p.data, 2.0 - 0.1 * 0.5 * 2.0)

    def test_momentum_accelerates(self):
        p1 = Parameter("a", np.zeros(1))
        p2 = Parameter("b", np.zeros(1))
        plain = SGD([p1], lr=0.1)
        heavy = SGD([p2], lr=0.1, momentum=0.9)
        for _ in range(5):
            p1.grad = np.ones(1)
            p2.grad = np.ones(1)
            plain.step()
            heavy.step()
        assert abs(p2.data[0]) > abs(p1.data[0])

    def test_missing_grad_raises(self):
        opt = SGD([Parameter("w", np.ones(1))])
        with pytest.raises(ValueError):
            opt.step()

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], momentum=1.0)


class TestTrainer:
    def _setup(self, seed=0):
        train, val = make_blob_images(
            n_classes=3, samples_per_class=16, size=16, seed=5, noise=0.3
        )
        net = mini_vgg_s(n_classes=3, width=8, seed=seed)
        opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
        return Trainer(net, opt, train, val, batch_size=8, seed=seed)

    def test_history_records_epochs(self):
        trainer = self._setup()
        history = trainer.run(2)
        assert history.epochs == [1, 2]
        assert len(history.val_accuracy) == 2
        assert history.iterations > 0

    def test_learning_improves_over_random(self):
        trainer = self._setup()
        history = trainer.run(4)
        assert history.best_val_accuracy > 0.5  # chance is 1/3

    def test_epochs_to_reach(self):
        trainer = self._setup()
        history = trainer.run(3)
        epoch = history.epochs_to_reach(0.0)
        assert epoch == 1
        assert history.epochs_to_reach(2.0) is None

    def test_activation_densities_collected(self):
        trainer = self._setup()
        trainer.run(1)
        densities = trainer.mean_activation_densities()
        assert densities
        assert all(0.0 < d < 1.0 for d in densities.values())
