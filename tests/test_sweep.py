"""Tests for the sweep engine: specs, cache semantics, runner, resume.

The cache tests pin down the contract the harness relies on: a hit
requires *everything* that determines a result to match (axis values,
fixed parameters, seed, evaluator name, and code-version key), an
interrupted sweep resumes from its last completed point, and a warm
re-run never calls the evaluator.
"""

from __future__ import annotations

import json

import pytest

from repro.report.export import ResultsDirectory
from repro.sweep import (
    Axis,
    ResultCache,
    SweepSpec,
    cache_key,
    canonical_json,
    point_seed,
    register,
    run_sweep,
)

#: Call log for the instrumented test evaluators (serial runs only).
CALLS: list[dict] = []

#: When set, ``test-flaky`` raises on this parameter value — cleared
#: by the resume test to model "the bug got fixed, re-run the sweep".
FAIL_ON: set[int] = set()


@register("test-counting", version="1")
def _counting(*, seed, x, scale=10):
    CALLS.append({"evaluator": "test-counting", "x": x, "seed": seed})
    return {"y": x * scale, "seed": seed}


@register("test-flaky", version="1")
def _flaky(*, seed, x, sleep_s=0.0):
    CALLS.append({"evaluator": "test-flaky", "x": x, "seed": seed})
    if x in FAIL_ON:
        raise RuntimeError(f"injected failure at x={x}")
    if sleep_s:
        import time

        time.sleep(sleep_s)
    return {"y": x * x}


@pytest.fixture(autouse=True)
def _reset_instrumentation():
    CALLS.clear()
    FAIL_ON.clear()
    yield
    CALLS.clear()
    FAIL_ON.clear()


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSpec:
    def test_grid_expansion_order(self):
        spec = SweepSpec.grid(
            "s", "echo", {"a": [1, 2], "b": ["x", "y"]}, fixed={"c": 0}
        )
        points = list(spec.points())
        assert spec.n_points == len(points) == 4
        assert [p.params for p in points] == [
            {"c": 0, "a": 1, "b": "x"},
            {"c": 0, "a": 1, "b": "y"},
            {"c": 0, "a": 2, "b": "x"},
            {"c": 0, "a": 2, "b": "y"},
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec("s", "echo", axes=(Axis("a", [1]), Axis("a", [2])))

    def test_axis_fixed_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            SweepSpec.grid("s", "echo", {"a": [1]}, fixed={"a": 2})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Axis("a", [])

    def test_non_json_axis_value_rejected(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            Axis("a", [object()])

    def test_fixed_seed_mode(self):
        spec = SweepSpec.grid("s", "echo", {"a": [1, 2]}, base_seed=7)
        assert [p.seed for p in spec.points()] == [7, 7]

    def test_derived_seeds_deterministic_and_distinct(self):
        spec = SweepSpec.grid(
            "s", "echo", {"a": list(range(20))},
            base_seed=3, seed_mode="derived",
        )
        seeds_a = [p.seed for p in spec.points()]
        seeds_b = [p.seed for p in spec.points()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)
        # A different base seed shifts every derived seed.
        other = SweepSpec.grid(
            "s", "echo", {"a": list(range(20))},
            base_seed=4, seed_mode="derived",
        )
        assert [p.seed for p in other.points()] != seeds_a

    def test_point_seed_depends_on_params(self):
        assert point_seed(0, {"a": 1}) != point_seed(0, {"a": 2})
        assert point_seed(0, {"a": 1}) == point_seed(0, {"a": 1})

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == canonical_json(
            {"a": [1, 2], "b": 1}
        )

    def test_explicit_points_in_list_order(self):
        spec = SweepSpec.explicit(
            "s", "echo", [{"a": 2}, {"a": 1}], fixed={"c": 0}
        )
        points = list(spec.points())
        assert spec.n_points == len(points) == 2
        assert [p.params for p in points] == [
            {"c": 0, "a": 2},
            {"c": 0, "a": 1},
        ]

    def test_explicit_rejects_axes(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec(
                "s", "echo",
                axes=(Axis("a", [1]),),
                explicit_points=({"b": 1},),
            )

    def test_explicit_fixed_overlap_rejected(self):
        with pytest.raises(ValueError, match="explicit point"):
            SweepSpec.explicit("s", "echo", [{"a": 1}], fixed={"a": 2})

    def test_explicit_points_survive_the_record(self):
        spec = SweepSpec.explicit(
            "s", "echo", [{"a": 2}, {"a": 1}], fixed={"c": 0}
        )
        record = run_sweep(spec).to_record()
        assert record["params"]["explicit_points"] == [{"a": 2}, {"a": 1}]
        # Grid specs keep the old shape (no explicit_points key).
        grid_record = run_sweep(
            SweepSpec.grid("g", "echo", {"a": [1]})
        ).to_record()
        assert "explicit_points" not in grid_record["params"]

    def test_explicit_derived_seeds_match_grid(self):
        grid = SweepSpec.grid(
            "g", "echo", {"x": [1, 2]}, seed_mode="derived", base_seed=5
        )
        explicit = SweepSpec.explicit(
            "e", "echo", [{"x": 1}, {"x": 2}],
            seed_mode="derived", base_seed=5,
        )
        assert [p.seed for p in grid.points()] == [
            p.seed for p in explicit.points()
        ]


class TestCache:
    KEY = {"evaluator": "e", "version": "1", "params": {"x": 1}, "seed": 0}

    def test_miss_then_hit(self, cache):
        assert cache.get(self.KEY) is None
        cache.put(self.KEY, {"y": 42})
        record = cache.get(self.KEY)
        assert record["values"] == {"y": 42}
        assert record["key"]["params"] == {"x": 1}
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        }

    def test_any_key_component_invalidates(self, cache):
        cache.put(self.KEY, {"y": 42})
        for variant in (
            {**self.KEY, "params": {"x": 2}},        # axis value changed
            {**self.KEY, "seed": 1},                 # seed changed
            {**self.KEY, "version": "2"},            # code version bumped
            {**self.KEY, "evaluator": "other"},      # different evaluator
            {**self.KEY, "params": {"x": 1, "z": 0}},  # new fixed param
        ):
            assert cache_key(variant) != cache_key(self.KEY)
            assert cache.get(variant) is None

    def test_contains_len_clear(self, cache):
        assert self.KEY not in cache
        assert len(cache) == 0
        cache.put(self.KEY, {"y": 1})
        cache.put({**self.KEY, "seed": 9}, {"y": 2})
        assert self.KEY in cache
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, cache):
        path = cache.put(self.KEY, {"y": 42})
        path.write_text("{ truncated")
        assert cache.get(self.KEY) is None


class TestRunner:
    def spec(self, n=4, **kwargs):
        return SweepSpec.grid(
            "counting", "test-counting", {"x": list(range(n))}, **kwargs
        )

    def test_serial_run_values_in_grid_order(self):
        result = run_sweep(self.spec(base_seed=5))
        assert result.values("y") == [0, 10, 20, 30]
        assert all(p.seed == 5 and not p.cached for p in result.points)
        assert len(CALLS) == 4

    def test_warm_run_never_calls_evaluator(self, cache):
        run_sweep(self.spec(), cache=cache)
        CALLS.clear()
        result = run_sweep(self.spec(), cache=cache)
        assert CALLS == []
        assert result.n_cached == len(result) == 4
        assert result.values("y") == [0, 10, 20, 30]

    def test_explicit_spec_shares_cache_with_grid(self, cache):
        run_sweep(self.spec(base_seed=5, seed_mode="derived"), cache=cache)
        CALLS.clear()
        explicit = SweepSpec.explicit(
            "revisit", "test-counting",
            [{"x": 3}, {"x": 0}],
            base_seed=5, seed_mode="derived",
        )
        result = run_sweep(explicit, cache=cache)
        assert CALLS == []
        assert result.n_cached == 2
        assert result.values("y") == [30, 0]

    def test_axis_value_change_recomputes_only_new_points(self, cache):
        run_sweep(self.spec(n=3), cache=cache)
        CALLS.clear()
        result = run_sweep(self.spec(n=5), cache=cache)
        assert [c["x"] for c in CALLS] == [3, 4]
        assert result.n_cached == 3

    def test_fixed_param_change_invalidates(self, cache):
        run_sweep(self.spec(), cache=cache)
        CALLS.clear()
        run_sweep(
            SweepSpec.grid(
                "counting", "test-counting",
                {"x": list(range(4))}, fixed={"scale": 100},
            ),
            cache=cache,
        )
        assert len(CALLS) == 4

    def test_seed_change_invalidates(self, cache):
        run_sweep(self.spec(base_seed=0), cache=cache)
        CALLS.clear()
        run_sweep(self.spec(base_seed=1), cache=cache)
        assert len(CALLS) == 4

    def test_version_bump_invalidates(self, cache):
        run_sweep(self.spec(), cache=cache)
        CALLS.clear()
        run_sweep(self.spec(version="after-bugfix"), cache=cache)
        assert len(CALLS) == 4

    def test_resume_after_failure(self, cache):
        """A failing point no longer torpedoes the rest of the sweep:
        every other point completes and commits, the failure is raised
        at the end, and the re-run recomputes *only* the failed point."""
        FAIL_ON.add(2)
        spec = SweepSpec.grid(
            "flaky", "test-flaky", {"x": list(range(5))}
        )
        with pytest.raises(RuntimeError, match="x=2"):
            run_sweep(spec, cache=cache)
        assert len(cache) == 4  # everything except x=2 committed

        FAIL_ON.clear()  # "fix the bug", re-run the same sweep
        CALLS.clear()
        result = run_sweep(spec, cache=cache)
        assert [c["x"] for c in CALLS] == [2]
        assert result.n_cached == 4
        assert result.values("y") == [0, 1, 4, 9, 16]
        assert result.reliability == {}

    def test_process_executor_matches_serial(self):
        spec = SweepSpec.grid(
            "par-echo", "echo", {"i": list(range(6))},
            fixed={"tag": "t"}, base_seed=2,
        )
        serial = run_sweep(spec, executor="serial")
        parallel = run_sweep(spec, executor="process", workers=2)
        assert parallel.rows() == serial.rows()

    def test_pool_failure_commits_in_flight_successes(self, cache):
        """A pool failure still harvests the points already running.

        x=0 fails immediately while the other workers are mid-sleep;
        the drained in-flight successes must land in the cache so a
        resume recomputes as little as possible.
        """
        FAIL_ON.add(0)
        spec = SweepSpec.grid(
            "pool-flaky", "test-flaky", {"x": list(range(4))},
            fixed={"sleep_s": 0.3},
        )
        with pytest.raises(RuntimeError, match="x=0"):
            run_sweep(spec, cache=cache, executor="process", workers=2)
        # At least the point in flight alongside the failure committed;
        # queued points may or may not have started before the cancel.
        assert 1 <= len(cache) <= 3

        FAIL_ON.clear()
        result = run_sweep(spec, cache=cache)
        assert result.values("y") == [0, 1, 4, 9]
        assert result.n_cached >= 1

    def test_process_executor_populates_cache(self, cache):
        spec = SweepSpec.grid("par-echo", "echo", {"i": list(range(6))})
        run_sweep(spec, executor="process", workers=2, cache=cache)
        assert len(cache) == 6
        warm = run_sweep(spec, executor="process", workers=2, cache=cache)
        assert warm.n_cached == 6

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_sweep(self.spec(), executor="threads")

    def test_unknown_evaluator(self):
        spec = SweepSpec.grid("s", "no-such-evaluator", {"x": [1]})
        with pytest.raises(KeyError, match="no-such-evaluator"):
            run_sweep(spec)

    def test_progress_callback(self):
        seen = []
        run_sweep(self.spec(), progress=lambda p: seen.append(p.index))
        assert sorted(seen) == [0, 1, 2, 3]


class TestResultHelpers:
    @pytest.fixture
    def result(self):
        return run_sweep(
            SweepSpec.grid(
                "helpers", "test-counting",
                {"x": [1, 2, 3]}, fixed={"scale": -1},
            )
        )

    def test_select_and_best(self, result):
        assert [p.params["x"] for p in result.select(x=2)] == [2]
        assert result.best("y", minimize=True).params["x"] == 3
        assert result.best("y", minimize=False).params["x"] == 1

    def test_rows_merge_params_and_values(self, result):
        row = result.rows()[0]
        assert row["x"] == 1 and row["scale"] == -1 and row["y"] == -1

    def test_export_through_report(self, result, tmp_path):
        results_dir = ResultsDirectory(tmp_path / "results")
        result.save(results_dir)
        record = results_dir.load_record("helpers")
        assert record["params"]["evaluator"] == "test-counting"
        assert record["params"]["axes"] == {"x": [1, 2, 3]}
        assert len(record["series"]["rows"]) == 3
        csv_path = results_dir.path_for("helpers", "points.csv")
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "x" in header.split(",") and "y" in header.split(",")

    def test_record_is_json_clean(self, result):
        json.dumps(result.to_record())
