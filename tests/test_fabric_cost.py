"""Tests for the interconnect area/energy cost model."""

import pytest

from repro.hw.config import ArchConfig, BASELINE_16x16
from repro.hw.fabric_cost import (
    FabricCostModel,
    FabricCostParams,
    _pe_pitch_um,
)


@pytest.fixture
def model():
    return FabricCostModel(BASELINE_16x16)


class TestParams:
    def test_defaults_valid(self):
        FabricCostParams()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FabricCostParams(wire_pj_per_bit_mm=0.0)
        with pytest.raises(ValueError):
            FabricCostParams(word_bits=0)

    def test_pitch_from_table_iii(self):
        # Per-PE area is dominated by the 198k um^2 register file;
        # pitch must land in the hundreds of micrometres.
        assert 300 < _pe_pitch_um() < 800


class TestSimpleFabric:
    def test_structure(self, model):
        simple = model.simple_fabric()
        assert simple.name == "simple-3net"
        assert set(simple.energy_pj_per_word) == {
            "horizontal",
            "vertical",
            "unicast",
        }
        assert simple.area_um2 > 0

    def test_multicast_energy_independent_of_listeners(self):
        # One full-length bus traversal regardless of fan-out: the
        # energy per word is set by bus length alone.
        small = FabricCostModel(ArchConfig(name="s", pe_rows=8, pe_cols=8))
        large = FabricCostModel(ArchConfig(name="l", pe_rows=16, pe_cols=16))
        e_small = small.simple_fabric().energy_pj_per_word["horizontal"]
        e_large = large.simple_fabric().energy_pj_per_word["horizontal"]
        assert e_large == pytest.approx(2.0 * e_small)

    def test_area_fraction_is_modest(self, model):
        # The simple fabric must stay a small fraction of the PE array
        # (the paper's fabric is not a reported area line item at all).
        frac = model.fabric_area_fraction(model.simple_fabric())
        assert frac < 0.15


class TestBalancedCKFabric:
    def test_costs_more_than_simple(self, model):
        simple = model.simple_fabric()
        balanced = model.balanced_ck_fabric()
        assert balanced.area_um2 > 2.0 * simple.area_um2
        for flow in ("horizontal", "vertical"):
            assert (
                balanced.energy_pj_per_word[flow]
                > simple.energy_pj_per_word[flow]
            )


class TestCrossbar:
    def test_superquadratic_in_array_side(self):
        at_16 = FabricCostModel(
            ArchConfig(name="16", pe_rows=16, pe_cols=16)
        ).full_crossbar()
        at_32 = FabricCostModel(
            ArchConfig(name="32", pe_rows=32, pe_cols=32)
        ).full_crossbar()
        # 4x the PEs: crosspoints grow 16x, port wiring 8x — total
        # lands well above the 4x a scalable fabric would show.
        assert at_32.area_um2 > 8.0 * at_16.area_um2

    def test_simple_fabric_grows_subquadratically(self):
        at_16 = FabricCostModel(
            ArchConfig(name="16", pe_rows=16, pe_cols=16)
        ).simple_fabric()
        at_32 = FabricCostModel(
            ArchConfig(name="32", pe_rows=32, pe_cols=32)
        ).simple_fabric()
        growth = at_32.area_um2 / at_16.area_um2
        assert growth < 8.0  # ~4x buses x 2x length, vs 16x for crossbar

    def test_crossbar_dominates_at_scale(self):
        model = FabricCostModel(ArchConfig(name="32", pe_rows=32, pe_cols=32))
        options = {f.name: f for f in model.options()}
        assert (
            options["crossbar"].area_um2
            > options["balanced-CK"].area_um2
            > options["simple-3net"].area_um2
        )


class TestScalingStory:
    def test_simple_fabric_fraction_stays_flat(self):
        # Figure 20's scalability rests on the fabric share of the die
        # not exploding as the array quadruples.
        frac_16 = FabricCostModel(
            ArchConfig(name="16", pe_rows=16, pe_cols=16)
        )
        frac_32 = FabricCostModel(
            ArchConfig(name="32", pe_rows=32, pe_cols=32)
        )
        f16 = frac_16.fabric_area_fraction(frac_16.simple_fabric())
        f32 = frac_32.fabric_area_fraction(frac_32.simple_fabric())
        assert f32 < 3.0 * f16

    def test_crossbar_fraction_explodes(self):
        # The crossbar's share of the die keeps rising with array
        # size; the simple fabric's share is constant by construction.
        m16 = FabricCostModel(ArchConfig(name="16", pe_rows=16, pe_cols=16))
        m64 = FabricCostModel(ArchConfig(name="64", pe_rows=64, pe_cols=64))
        f16 = m16.fabric_area_fraction(m16.full_crossbar())
        f64 = m64.fabric_area_fraction(m64.full_crossbar())
        assert f64 > 4.0 * f16
        s16 = m16.fabric_area_fraction(m16.simple_fabric())
        s64 = m64.fabric_area_fraction(m64.simple_fabric())
        assert s64 == pytest.approx(s16, rel=0.05)
