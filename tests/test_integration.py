"""End-to-end integration tests across the whole stack.

The flagship path: train a mini network with the Procrustes algorithm,
extract its real masks and measured activation densities, feed them to
the architecture model, and check the full-system claims hold on
*measured* (not synthetic) sparsity.
"""

import numpy as np
import pytest

from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.dataflow.simulator import simulate
from repro.harness.training_experiments import train_mini
from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16
from repro.hw.prng import WeightRecomputeUnit
from repro.models.vgg import mini_vgg_s
from repro.nn.data import make_blob_images
from repro.nn.trainer import Trainer
from repro.workloads.layer_spec import conv, fc
from repro.workloads.sparsity import dense_profile, profile_from_masks


def _train_procrustes(epochs=3, factor=4.0, seed=0):
    train, val = make_blob_images(
        n_classes=4, samples_per_class=24, size=16, seed=3, noise=0.4
    )
    model = mini_vgg_s(n_classes=4, width=8, seed=seed)
    config = DropbackConfig(
        sparsity_factor=factor,
        lr=0.08,
        selection="quantile",
        init_decay=0.9,
        init_decay_zero_after=20,
    )
    optimizer = DropbackOptimizer(model.parameters(), config)
    trainer = Trainer(model, optimizer, train, val, batch_size=8, seed=seed)
    trainer.run(epochs)
    return model, optimizer, trainer


class TestTrainThenSimulate:
    @pytest.fixture(scope="class")
    def trained(self):
        return _train_procrustes()

    def test_training_learns(self, trained):
        _, _, trainer = trained
        assert trainer.history.best_val_accuracy > 0.4  # chance = 0.25

    def test_pruned_weights_are_exact_zeros(self, trained):
        model, optimizer, _ = trained
        assert optimizer.computation_is_sparse()
        for param in model.parameters():
            if param.prunable:
                density = np.count_nonzero(param.data) / param.size
                assert density < 0.9

    def test_measured_masks_drive_arch_model(self, trained):
        model, optimizer, trainer = trained
        masks = optimizer.masks()
        # Build specs mirroring the mini network's conv/fc layers.
        specs = []
        for name, shape in model.weight_shapes().items():
            base = name.rsplit(".", 1)[0]
            if len(shape) == 4:
                specs.append(
                    conv(name, c=shape[1], k=shape[0], h=16, r=shape[2])
                )
            else:
                specs.append(fc(name, shape[1], shape[0]))
        profile = profile_from_masks(
            "mini-vgg-measured",
            specs,
            {s.name: masks[s.name] for s in specs if s.name in masks},
        )
        dense = dense_profile("mini-vgg-dense", specs)
        s = simulate(profile, "KN", arch=PROCRUSTES_16x16, n=16)
        d = simulate(dense, "KN", arch=BASELINE_16x16, n=16, sparse=False)
        assert s.total_cycles < d.total_cycles
        assert s.total_energy_j < d.total_energy_j

    def test_activation_densities_measured(self, trained):
        _, _, trainer = trained
        densities = trainer.mean_activation_densities()
        assert densities
        assert all(0.0 < v < 1.0 for v in densities.values())


class TestWRUnitRegeneratesTraining:
    def test_wr_unit_reproduces_optimizer_weights_after_flush(self):
        """The WR-unit semantics (decayed init + accum) coincide with
        optimizer state once the decay has flushed."""
        rng = np.random.default_rng(0)
        from repro.nn.layers import Parameter

        param = Parameter("w", rng.normal(size=64), prunable=True)
        config = DropbackConfig(
            sparsity_factor=4.0,
            lr=0.1,
            init_decay=0.9,
            init_decay_zero_after=5,
            decay_tracked_init=True,
        )
        opt = DropbackOptimizer([param], config)
        for _ in range(6):
            param.grad = rng.normal(size=64)
            opt.step()
        state = opt._prunable[0]
        wr = WeightRecomputeUnit(
            seed=1, sigma=1.0, decay=opt.decay_schedule
        )
        tracked = state.accumulated != 0.0
        materialized = wr.materialize(
            np.arange(64), state.accumulated, tracked, opt.iteration
        )
        # Past the flush the PRNG term is zero, so materialization is
        # exactly the stored accumulated gradients.
        np.testing.assert_allclose(materialized, param.data)


class TestSortVsQuantileEquivalence:
    def test_both_selections_learn(self):
        sort_run = train_mini(
            "vgg-s", "dropback-decay", epochs=3,
            data_overrides=dict(samples_per_class=24),
        )
        quant_run = train_mini(
            "vgg-s", "procrustes", epochs=3,
            data_overrides=dict(samples_per_class=24),
        )
        assert sort_run.history.best_val_accuracy > 0.3
        assert quant_run.history.best_val_accuracy > 0.3

    def test_quantile_tracks_more_weights(self):
        sort_run = train_mini(
            "vgg-s", "dropback-decay", epochs=2, sparsity_factor=7.5,
            data_overrides=dict(samples_per_class=16),
        )
        quant_run = train_mini(
            "vgg-s", "procrustes", epochs=2, sparsity_factor=7.5,
            data_overrides=dict(samples_per_class=16),
        )
        assert sort_run.achieved_sparsity == pytest.approx(7.5, rel=0.05)
        assert quant_run.achieved_sparsity < 7.5


class TestHeadlineClaim:
    def test_procrustes_vs_dense_baseline(self):
        """The abstract's claim at reduced scale: sparse training saves
        energy and time versus the dense baseline while pruning weights
        by a large factor at comparable accuracy."""
        from repro.harness.common import dense_profile_for, sparse_profile_for

        sparse = sparse_profile_for("resnet18")
        dense = dense_profile_for("resnet18")
        s = simulate(sparse, "KN", arch=PROCRUSTES_16x16, n=64)
        d = simulate(dense, "KN", arch=BASELINE_16x16, n=64, sparse=False)
        energy_saving = d.total_energy_j / s.total_energy_j
        speedup = d.total_cycles / s.total_cycles
        assert 2.0 < energy_saving < 4.5
        assert 2.0 < speedup < 4.5


class TestTrainedMasksDriveCycleSim:
    """Close the loop: real Dropback masks through the cycle-level
    simulator and the Eager Pruning model."""

    @pytest.fixture(scope="class")
    def conv_mask(self):
        model, optimizer, _ = _train_procrustes()
        masks = optimizer.masks()
        # Pick the largest 4-D (conv) mask from the trained model.
        conv_masks = [m for m in masks.values() if m.ndim == 4]
        return max(conv_masks, key=lambda m: m.size)

    def test_mac_conservation_on_real_masks(self, conv_mask):
        from repro.hw.cyclesim import IDEAL_FABRIC, CycleLevelSimulator
        from repro.dataflow.eager_accel import EagerPruningAccelerator

        arch = PROCRUSTES_16x16
        expect = int(conv_mask.sum()) * 4 * 4 * 8
        kn = CycleLevelSimulator(arch, IDEAL_FABRIC).run_conv(
            conv_mask, p=4, q=4, n=8, mapping="KN", balance=True
        )
        eager = EagerPruningAccelerator(arch).run_conv(
            conv_mask, p=4, q=4, n=8
        )
        assert kn.macs == expect
        assert eager.macs == expect

    def test_balancing_helps_on_real_masks(self, conv_mask):
        from repro.hw.cyclesim import IDEAL_FABRIC, CycleLevelSimulator

        sim = CycleLevelSimulator(PROCRUSTES_16x16, IDEAL_FABRIC)
        plain = sim.run_conv(conv_mask, p=4, q=4, n=8, mapping="KN")
        balanced = sim.run_conv(
            conv_mask, p=4, q=4, n=8, mapping="KN", balance=True
        )
        # Real learned sparsity is uneven across channels, so the
        # half-tile pairing must not hurt and usually helps.
        assert balanced.cycles <= plain.cycles

    def test_format_costs_on_real_masks(self, conv_mask):
        from repro.sparse.rivals import access_costs

        rng = np.random.default_rng(0)
        dense = np.where(conv_mask, rng.normal(size=conv_mask.shape), 0.0)
        table = access_costs(dense)
        csb = table[0]
        assert csb.backward_penalty == 1.0
        for rival in table[1:]:
            assert rival.backward_penalty > 1.0
