"""Tests for the pluggable sweep-executor seam.

Covers the satellite contract: ``executor="batched"`` returns results
in grid order and bit-identical to serial evaluation, singleton
batches fall back to the scalar evaluator, evaluators with no batch
form degrade to serial, unknown executor names raise with the
registered names listed, and custom backends plug in through
:func:`repro.sweep.runner.register_executor` (including
:class:`~repro.api.config.RuntimeConfig` accepting the new name).
"""

import pytest

from repro.api.config import RuntimeConfig
from repro.sweep import evaluators as ev
from repro.sweep.runner import (
    SweepRunner,
    available_executors,
    register_executor,
    run_sweep,
)
from repro.sweep.spec import Axis, SweepSpec


@pytest.fixture
def tracked_evaluator():
    """A scalar+batch evaluator pair that records which form ran."""
    calls = {"scalar": [], "batch": []}

    @ev.register("exec-probe", version="1")
    def probe(*, seed, group, x, **_):
        calls["scalar"].append((group, x))
        return {"y": x * 10 + group, "seed": seed}

    @ev.register_batch("exec-probe", group_by=("group",))
    def probe_batch(jobs):
        calls["batch"].append([p["x"] for p, _ in jobs])
        return [
            {"y": params["x"] * 10 + params["group"], "seed": seed}
            for params, seed in jobs
        ]

    try:
        yield calls
    finally:
        ev._REGISTRY.pop("exec-probe", None)
        ev._BATCH_REGISTRY.pop("exec-probe", None)


def probe_spec(xs=(1, 2, 3, 4), groups=(0, 1)):
    return SweepSpec(
        name="exec-probe-grid",
        evaluator="exec-probe",
        axes=(Axis("group", tuple(groups)), Axis("x", tuple(xs))),
        base_seed=5,
    )


class TestBatchedExecutor:
    def test_grid_order_and_values_match_serial(self, tracked_evaluator):
        spec = probe_spec()
        serial = run_sweep(spec, executor="serial")
        batched = run_sweep(spec, executor="batched")
        assert [p.index for p in batched.points] == list(
            range(spec.n_points)
        )
        for a, b in zip(serial.points, batched.points):
            assert a.params == b.params
            assert a.values == b.values
        # Two groups of four: the batch form ran, the scalar form only
        # for the serial sweep.
        assert tracked_evaluator["batch"] == [[1, 2, 3, 4], [1, 2, 3, 4]]

    def test_singleton_groups_fall_back_to_scalar(self, tracked_evaluator):
        # Four groups of one point each: no batch call should happen.
        spec = probe_spec(xs=(7,), groups=(0, 1, 2, 3))
        result = run_sweep(spec, executor="batched")
        assert [p.values["y"] for p in result.points] == [70, 71, 72, 73]
        assert tracked_evaluator["batch"] == []
        assert len(tracked_evaluator["scalar"]) == 4

    def test_evaluator_without_batch_form_runs_serial(self):
        spec = SweepSpec(
            name="echo-grid",
            evaluator="echo",
            axes=(Axis("x", (1, 2, 3)),),
        )
        result = run_sweep(spec, executor="batched")
        assert [p.values["x"] for p in result.points] == [1, 2, 3]

    def test_batched_points_are_cached_individually(
        self, tracked_evaluator, tmp_path
    ):
        from repro.sweep.cache import ResultCache

        spec = probe_spec()
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache, executor="batched")
        # A warm serial run over the same cache touches no evaluator.
        warm = run_sweep(spec, cache=cache, executor="serial")
        assert warm.n_cached == spec.n_points
        assert len(tracked_evaluator["scalar"]) == 0

    def test_wrong_batch_result_count_raises(self, tracked_evaluator):
        @ev.register_batch("exec-probe", group_by=("group",))
        def bad_batch(jobs):
            return [{"y": 0}]  # one result for many jobs

        spec = probe_spec(groups=(0,))
        with pytest.raises(ValueError, match="returned"):
            run_sweep(spec, executor="batched")


def _pool_probe(*, seed, group, x, **_):
    return {"y": x * 10 + group, "seed": seed}


def _pool_probe_batch(jobs):
    return [
        {"y": params["x"] * 10 + params["group"], "seed": seed}
        for params, seed in jobs
    ]


def _pool_probe_batch_broken(jobs):
    raise RuntimeError("worker-side failure")


@pytest.fixture
def pool_evaluator():
    """A module-level (picklable) evaluator pair for the pool path."""
    ev.register("exec-pool", version="1")(_pool_probe)
    ev.register_batch("exec-pool", group_by=("group",))(_pool_probe_batch)
    try:
        yield
    finally:
        ev._REGISTRY.pop("exec-pool", None)
        ev._BATCH_REGISTRY.pop("exec-pool", None)


class TestPooledBatchGroups:
    """``executor="batched"`` with ``workers > 1`` fans multi-point
    groups over a process pool; results stay identical to serial."""

    def pool_spec(self, xs=(1, 2, 3), groups=(0, 1)):
        return SweepSpec(
            name="exec-pool-grid",
            evaluator="exec-pool",
            axes=(Axis("group", tuple(groups)), Axis("x", tuple(xs))),
            base_seed=5,
        )

    def test_pooled_groups_match_serial(self, pool_evaluator):
        spec = self.pool_spec()
        serial = run_sweep(spec, executor="serial")
        pooled = run_sweep(spec, executor="batched", workers=2)
        assert [p.index for p in pooled.points] == list(range(spec.n_points))
        for a, b in zip(serial.points, pooled.points):
            assert a.params == b.params
            assert a.values == b.values

    def test_pooled_points_are_cached_individually(
        self, pool_evaluator, tmp_path
    ):
        from repro.sweep.cache import ResultCache

        spec = self.pool_spec()
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache, executor="batched", workers=2)
        warm = run_sweep(spec, cache=cache, executor="serial")
        assert warm.n_cached == spec.n_points

    def test_unpicklable_batch_fn_stays_in_process(self, tracked_evaluator):
        # The tracked fixture registers closures, which can't cross a
        # process boundary; the executor must detect that and keep the
        # in-process group loop (the recorded calls prove it did).
        spec = probe_spec()
        result = run_sweep(spec, executor="batched", workers=4)
        assert [p.values["y"] for p in result.points] == [
            10, 20, 30, 40, 11, 21, 31, 41
        ]
        assert tracked_evaluator["batch"] == [[1, 2, 3, 4], [1, 2, 3, 4]]

    def test_broken_batch_degrades_to_serial(self, pool_evaluator):
        # A failing batch pass no longer cancels the sweep: the group
        # degrades to per-point serial evaluation (the scalar evaluator
        # still works), and the fallback is counted, not hidden.
        ev.register_batch("exec-pool", group_by=("group",))(
            _pool_probe_batch_broken
        )
        spec = self.pool_spec()
        result = run_sweep(spec, executor="batched", workers=2)
        serial = run_sweep(spec, executor="serial")
        assert result.rows() == serial.rows()
        assert result.reliability["batch_fallbacks"] == 2
        assert result.reliability["point_errors"] == 2


class TestExecutorRegistry:
    def test_unknown_executor_lists_registered_names(self):
        with pytest.raises(ValueError, match="executor") as err:
            SweepRunner(executor="threads")
        message = str(err.value)
        for name in ("serial", "process", "batched", "distributed"):
            assert name in message

    def test_distributed_stub_raises_at_run_time(self):
        runner = SweepRunner(executor="distributed")  # selectable...
        spec = SweepSpec(
            name="stub", evaluator="echo", axes=(Axis("x", (1, 2)),)
        )
        with pytest.raises(NotImplementedError, match="register_executor"):
            runner.run(spec)  # ...but not runnable

    def test_distributed_stub_message_shows_registration_example(self):
        runner = SweepRunner(executor="distributed")
        spec = SweepSpec(
            name="stub-msg", evaluator="echo", axes=(Axis("x", (1, 2)),)
        )
        with pytest.raises(NotImplementedError) as err:
            runner.run(spec)
        message = str(err.value)
        assert "register_executor('distributed', execute)" in message
        assert "finish(point, values, wall_seconds)" in message
        assert "RuntimeConfig" in message

    def test_register_executor_overrides_distributed_stub(self):
        from repro.sweep.runner import (
            _execute_distributed,
            _execute_serial,
            _EXECUTORS,
        )

        ran = []

        def execute(runner, spec, fn, pending, finish):
            ran.append(len(pending))
            _execute_serial(runner, spec, fn, pending, finish)

        register_executor("distributed", execute)
        try:
            spec = SweepSpec(
                name="dist-real", evaluator="echo", axes=(Axis("x", (1, 2)),)
            )
            result = run_sweep(spec, executor="distributed")
            assert [p.values["x"] for p in result.points] == [1, 2]
            assert ran == [2]
            # The (now backed) name stays accepted by the config layer.
            assert (
                RuntimeConfig(executor="distributed").executor
                == "distributed"
            )
        finally:
            _EXECUTORS["distributed"] = _execute_distributed

    def test_register_executor_plugs_in_and_extends_config(self):
        ran = []

        def capped_serial(runner, spec, fn, pending, finish):
            from repro.sweep.runner import _execute_serial

            ran.append(len(pending))
            _execute_serial(runner, spec, fn, pending, finish)

        register_executor("capped", capped_serial)
        try:
            assert "capped" in available_executors()
            spec = SweepSpec(
                name="custom", evaluator="echo", axes=(Axis("x", (1, 2)),)
            )
            result = run_sweep(spec, executor="capped")
            assert [p.values["x"] for p in result.points] == [1, 2]
            assert ran == [2]
            # The config layer accepts the registered name too.
            assert RuntimeConfig(executor="capped").executor == "capped"
        finally:
            from repro.api.config import _KNOWN_EXECUTORS
            from repro.sweep.runner import _EXECUTORS

            _EXECUTORS.pop("capped", None)
            _KNOWN_EXECUTORS.discard("capped")

    def test_single_pending_point_is_always_serial(self):
        # Even under the distributed stub, one pending point runs
        # inline rather than reaching the backend.
        spec = SweepSpec(
            name="one", evaluator="echo", axes=(Axis("x", (5,)),)
        )
        result = run_sweep(spec, executor="distributed")
        assert result.points[0].values["x"] == 5


class TestBuiltinBatchEvaluators:
    def test_design_point_batched_matches_serial(self):
        spec = SweepSpec(
            name="dp",
            evaluator="design-point",
            axes=(
                Axis("mapping", ("KN", "CK")),
                Axis("glb_kib", (128, 256)),
            ),
            fixed={"network": "vgg-s", "sparsity_factor": 4.0},
            base_seed=3,
        )
        serial = run_sweep(spec, executor="serial")
        batched = run_sweep(spec, executor="batched")
        for a, b in zip(serial.points, batched.points):
            assert a.values == b.values, a.params

    def test_simulate_batched_matches_serial(self):
        spec = SweepSpec(
            name="sim",
            evaluator="simulate",
            axes=(Axis("mapping", ("KN", "CN")),),
            fixed={"network": "vgg-s"},
            base_seed=2,
            seed_mode="fixed",
        )
        serial = run_sweep(spec, executor="serial")
        batched = run_sweep(spec, executor="batched")
        for a, b in zip(serial.points, batched.points):
            assert a.values == b.values, a.params

    def test_simulate_groups_pin_the_seed(self):
        # Derived seeds differ per point, and the simulate profile
        # depends on the seed — every group must be a singleton.
        batch = ev.get_batch_evaluator("simulate")
        assert batch is not None and batch.group_by_seed
        dp = ev.get_batch_evaluator("design-point")
        assert dp is not None and not dp.group_by_seed
