"""Campaign subsystem: spec identity, trajectories, replay parity.

The two contracts the PR pins hardest:

* **Determinism** — re-running a campaign with the same
  :class:`CampaignSpec` is a 100% :class:`TrajectoryStore` cache hit,
  and the loaded trajectory is bit-identical to the trained one.
* **Parity** — a constant-density trajectory replays to *exactly* the
  static analytic ``simulate()`` numbers: the measured path is a
  strict generalization of the analytic one, not a fork.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    Trajectory,
    TrajectoryDensitySource,
    TrajectoryStore,
    observe_network,
    replay_trajectory,
    run_campaign,
)
from repro.dataflow.simulator import simulate
from repro.models.zoo import MINI_MODELS
from repro.sweep import ResultCache, run_sweep
from repro.sweep.evaluators import available_evaluators
from repro.workloads.sparsity import synthetic_profile


def tiny_spec(**overrides) -> CampaignSpec:
    """A seconds-fast campaign for unit tests."""
    params = dict(
        model="vgg-s",
        mode="procrustes",
        epochs=2,
        sparsity_factor=4.0,
        batch_size=8,
        seed=0,
        n_classes=3,
        samples_per_class=12,
        image_size=8,
        decay_zero_after=6,
    )
    params.update(overrides)
    return CampaignSpec(**params)


# ----------------------------------------------------------------------
# spec identity
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_key_is_stable_and_content_addressed(self):
        a, b = tiny_spec(), tiny_spec()
        assert a.key() == b.key()
        assert a.key() != tiny_spec(seed=1).key()
        assert a.key() != tiny_spec(epochs=3).key()

    def test_params_roundtrip(self):
        spec = tiny_spec(mode="dropback-decay", lr=0.05)
        assert CampaignSpec.from_params(spec.params()) == spec

    def test_with_replaces_fields(self):
        spec = tiny_spec().with_(mode="sgd", epochs=4)
        assert (spec.mode, spec.epochs) == ("sgd", 4)

    @pytest.mark.parametrize(
        "bad",
        [
            {"mode": "adam"},
            {"epochs": 0},
            {"batch_size": 0},
            {"image_size": 4},
            {"sparsity_factor": 1.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            tiny_spec(**bad)

    def test_sweep_spec_fans_campaign_out(self):
        spec = tiny_spec()
        sweep = spec.sweep_spec(
            "campaign-modes", {"mode": ["procrustes", "sgd"]}
        )
        assert sweep.evaluator == "campaign"
        assert sweep.n_points == 2
        points = list(sweep.points())
        # Every non-axis campaign field rides along; the sweep point's
        # seed drives training, so "seed" must not appear as a param.
        assert points[0].params["epochs"] == spec.epochs
        assert "seed" not in points[0].params

    def test_campaign_evaluators_registered(self):
        names = available_evaluators()
        assert "campaign" in names
        assert "trajectory-point" in names


# ----------------------------------------------------------------------
# derived layer specs
# ----------------------------------------------------------------------
class TestObserveNetwork:
    @pytest.mark.parametrize("model_name", sorted(MINI_MODELS))
    def test_specs_match_prunable_shapes(self, model_name):
        """Every prunable tensor maps to a spec with the same weights."""
        model = MINI_MODELS[model_name](n_classes=4, seed=0)
        sample = np.zeros((1, 3, 16, 16))
        specs, iact_relu = observe_network(model, sample)
        by_name = {s.name: s for s in specs}
        shapes = model.weight_shapes()
        assert set(by_name) == {
            name.removesuffix(".weight") for name in shapes
        }
        for param_name, shape in shapes.items():
            spec = by_name[param_name.removesuffix(".weight")]
            assert spec.weight_count == int(np.prod(shape))
        # Every conv/fc layer has an iact feed entry (possibly None).
        assert set(iact_relu) == set(by_name)

    def test_first_layer_has_no_relu_feed(self):
        model = MINI_MODELS["vgg-s"](n_classes=4, seed=0)
        specs, iact_relu = observe_network(model, np.zeros((1, 3, 16, 16)))
        assert iact_relu[specs[0].name] is None


# ----------------------------------------------------------------------
# determinism / the trajectory store
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_rerun_is_full_cache_hit(self, tmp_path):
        """Same spec ⇒ second run touches no trainer, identical result."""
        store = TrajectoryStore(tmp_path / "campaign")
        spec = tiny_spec()
        first = run_campaign(spec, store=store)
        assert not first.cached
        assert store.stats.stores == 1
        second = run_campaign(spec, store=store)
        assert second.cached
        assert store.stats.hits == 1
        assert store.stats.stores == 1  # nothing re-written
        assert json.dumps(first.trajectory.to_values()) == json.dumps(
            second.trajectory.to_values()
        )

    def test_retrain_matches_stored(self, tmp_path):
        """force=True retrains to the exact same trajectory."""
        store = TrajectoryStore(tmp_path / "campaign")
        spec = tiny_spec()
        stored = run_campaign(spec, store=store).trajectory
        retrained = run_campaign(spec, store=store, force=True).trajectory
        assert json.dumps(stored.to_values()) == json.dumps(
            retrained.to_values()
        )

    def test_different_seeds_are_different_campaigns(self, tmp_path):
        store = TrajectoryStore(tmp_path / "campaign")
        t0 = run_campaign(tiny_spec(seed=0), store=store).trajectory
        t1 = run_campaign(tiny_spec(seed=1), store=store).trajectory
        assert len(store) == 2
        assert t0.to_values() != t1.to_values()

    def test_trajectory_records_shapes(self):
        spec = tiny_spec()
        trajectory = run_campaign(spec).trajectory
        assert trajectory.n_epochs == spec.epochs
        assert trajectory.total_iterations > 0
        for record in trajectory.records:
            assert record.iterations > 0
            for spec_layer, layer in zip(trajectory.specs, record.layers):
                assert layer.name == spec_layer.name
                assert 0.0 < layer.weight_density <= 1.0
                assert 0.0 < layer.iact_density <= 1.0
                assert layer.out_channel_density.shape == (spec_layer.k,)
                assert layer.in_channel_density.shape == (spec_layer.c,)
        # DropBack pruned: the measured network density is well under 1.
        assert trajectory.density_curve()[-1] < 0.8

    def test_dense_baseline_measures_dense_weights(self):
        trajectory = run_campaign(tiny_spec(mode="sgd")).trajectory
        assert all(d == 1.0 for d in trajectory.density_curve())
        assert all(s == 1.0 for s in trajectory.sparsity_curve())
        # ... but activations are still measured, not assumed.
        later = trajectory.records[-1].layers[1:]
        assert any(layer.iact_density < 1.0 for layer in later)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestTrajectoryRoundtrip:
    def test_json_roundtrip_is_exact(self):
        trajectory = run_campaign(tiny_spec()).trajectory
        values = json.loads(json.dumps(trajectory.to_values()))
        restored = Trajectory.from_values(values)
        assert restored.to_values() == trajectory.to_values()
        for epoch in range(trajectory.n_epochs):
            a, b = trajectory.profile(epoch), restored.profile(epoch)
            for la, lb in zip(a.layers, b.layers):
                assert la.weight_density == lb.weight_density
                assert np.array_equal(
                    la.out_channel_density, lb.out_channel_density
                )
                assert np.array_equal(
                    la.in_channel_density, lb.in_channel_density
                )

    def test_mismatched_layers_rejected(self, small_specs):
        profile = synthetic_profile("small", small_specs, 4.0, seed=3)
        trajectory = Trajectory.constant(profile, 2, 5)
        values = trajectory.to_values()
        values["records"][1]["layers"] = values["records"][1]["layers"][:-1]
        with pytest.raises(ValueError, match="do not match specs"):
            Trajectory.from_values(values)


# ----------------------------------------------------------------------
# replay parity with the analytic path
# ----------------------------------------------------------------------
class TestReplayParity:
    @pytest.mark.parametrize("mapping", ["KN", "CK"])
    def test_constant_trajectory_matches_simulate_bit_identically(
        self, small_specs, mapping
    ):
        """The tentpole parity claim: measured path ⊇ analytic path."""
        profile = synthetic_profile("small", small_specs, 4.0, seed=3)
        trajectory = Trajectory.constant(
            profile, epochs=3, iterations_per_epoch=7
        )
        replay = replay_trajectory(
            trajectory, mapping=mapping, n=8, seed=11
        )
        reference = simulate(profile, mapping, n=8, seed=11)
        for cost in replay.epochs:
            assert cost.cycles_per_iteration == reference.total_cycles
            assert cost.energy_j_per_iteration == reference.total_energy_j
        assert replay.run_cycles == 21 * reference.total_cycles

    def test_parity_survives_the_store(self, small_specs, tmp_path):
        """JSON persistence must not perturb a single bit."""
        profile = synthetic_profile("small", small_specs, 4.0, seed=3)
        trajectory = Trajectory.constant(profile, 2, 5)
        values = json.loads(json.dumps(trajectory.to_values()))
        restored = Trajectory.from_values(values)
        direct = replay_trajectory(trajectory, mapping="KN", n=8, seed=2)
        roundtripped = replay_trajectory(restored, mapping="KN", n=8, seed=2)
        assert direct.curves() == roundtripped.curves()

    def test_replay_totals_accumulate_epochs(self):
        trajectory = run_campaign(tiny_spec()).trajectory
        replay = replay_trajectory(trajectory, mapping="KN", n=8)
        assert replay.run_cycles == pytest.approx(
            sum(e.cycles for e in replay.epochs)
        )
        assert replay.total_iterations == trajectory.total_iterations
        record = replay.to_record()
        assert record["series"]["run_cycles"] == replay.run_cycles
        assert len(record["series"]["cycles"]) == trajectory.n_epochs


# ----------------------------------------------------------------------
# density sources
# ----------------------------------------------------------------------
class TestDensitySources:
    def test_analytic_source_matches_sparse_profile_for(self):
        from repro.harness.common import analytic_source_for, sparse_profile_for

        source = analytic_source_for("vgg-s", seed=1)
        assert source.n_epochs is None
        a = source.profile()
        b = sparse_profile_for("vgg-s", seed=1)
        for la, lb in zip(a.layers, b.layers):
            assert la.weight_density == lb.weight_density
            assert np.array_equal(
                la.out_channel_density, lb.out_channel_density
            )

    def test_trajectory_source_is_epoch_resolved(self):
        trajectory = run_campaign(tiny_spec()).trajectory
        source = TrajectoryDensitySource(trajectory)
        assert source.n_epochs == trajectory.n_epochs
        final = source.profile()
        assert final.name == trajectory.profile(source.n_epochs - 1).name
        with pytest.raises(IndexError):
            source.profile(source.n_epochs)

    def test_density_source_for_dispatch(self):
        from repro.harness.common import density_source_for

        dense = density_source_for("vgg-s", source="dense")
        assert all(
            ls.weight_density == 1.0 for ls in dense.profile().layers
        )
        with pytest.raises(KeyError, match="unknown density source"):
            density_source_for("vgg-s", source="measured")

    def test_density_source_for_trajectory(self, tmp_path, monkeypatch):
        from repro.harness.common import density_source_for

        monkeypatch.setenv(
            TrajectoryStore.ENV_VAR, str(tmp_path / "campaign")
        )
        source = density_source_for(
            "vgg-s", source="trajectory", campaign_spec=tiny_spec()
        )
        assert source.n_epochs == 2
        assert len(TrajectoryStore.from_env()) == 1


# ----------------------------------------------------------------------
# sweep / explorer integration
# ----------------------------------------------------------------------
class TestCampaignEvaluator:
    def test_campaign_sweep_warm_rerun_is_all_cached(self, tmp_path):
        spec = tiny_spec()
        sweep_spec = spec.sweep_spec(
            "campaign-modes-test", {"mode": ["procrustes", "sgd"]}
        )
        cache = ResultCache(tmp_path / "sweep")
        cold = run_sweep(sweep_spec, cache=cache)
        assert {p.params["mode"] for p in cold.points} == {
            "procrustes",
            "sgd",
        }
        for point in cold.points:
            assert point.values["run_cycles"] > 0
            assert point.values["run_j"] > 0
            assert (
                len(point.values["val_accuracy"]) == spec.epochs
            )
        warm = run_sweep(sweep_spec, cache=cache)
        assert all(p.cached for p in warm.points)

    def test_trajectory_point_shares_one_training_run(self, tmp_path):
        from repro.sweep.evaluators import get_evaluator

        fn = get_evaluator("trajectory-point")
        common = dict(
            model="vgg-s",
            mode="procrustes",
            epochs=2,
            sparsity_factor=4.0,
            batch_size=8,
            n_classes=3,
            samples_per_class=12,
            image_size=8,
            campaign_seed=3,
        )
        first = fn(seed=0, mapping="KN", array_side=16, **common)
        second = fn(seed=1, mapping="CK", array_side=8, **common)
        # Same campaign key (common random numbers), trained once.
        assert first["campaign_key"] == second["campaign_key"]
        assert second["trajectory_cached"]
        assert first["run_cycles"] != second["run_cycles"]
        assert first["area_mm2"] > second["area_mm2"]

    @pytest.mark.slow
    def test_trajectory_objective_explore(self, tmp_path):
        from repro.harness.explore_experiments import run_explore

        result = run_explore(
            budget=6,
            strategy="random",
            cache_dir=str(tmp_path / "cache"),
            objective="trajectory",
        )
        assert result.n_evaluated == 6
        assert len(result.frontier) >= 1
        for point in result.frontier_points():
            assert point.values["run_cycles"] > 0
        # The campaign cache-tier landed next to the sweep cache.
        assert (tmp_path / "cache" / "campaign").exists()

    def test_cache_tiers_scopes_config_without_env_mutation(
        self, tmp_path, monkeypatch
    ):
        """cache_tiers routes every tier through the scoped
        RuntimeConfig — the environment is never written, a
        pre-existing env knob is overridden inside the scope, and the
        prior config layering returns on exit."""
        import os

        from repro.api.config import get_config
        from repro.harness.explore_experiments import cache_tiers

        monkeypatch.delenv("REPRO_EVALCORE_CACHE_DIR", raising=False)
        monkeypatch.setenv(TrajectoryStore.ENV_VAR, "preexisting")
        environ_before = dict(os.environ)
        with cache_tiers(str(tmp_path / "tiers")) as scoped:
            active = get_config()
            assert active is scoped
            assert active.effective_evalcore_cache_dir().endswith("evalcore")
            assert active.effective_campaign_cache_dir().endswith("campaign")
            assert dict(os.environ) == environ_before  # no mutation
        assert dict(os.environ) == environ_before
        # Back outside, the env layer governs again.
        assert (
            get_config().effective_campaign_cache_dir() == "preexisting"
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCli:
    def test_parse_flags(self):
        from repro.harness.campaign_cmd import parse_campaign_args

        options = parse_campaign_args(
            ["--smoke", "--cache-dir", "x", "--epochs", "4"]
        )
        assert options["smoke"] is True
        assert options["cache_dir"] == "x"
        assert options["epochs"] == 4
        with pytest.raises(ValueError, match="unknown flag"):
            parse_campaign_args(["--bogus", "1"])
        with pytest.raises(ValueError, match="needs a value"):
            parse_campaign_args(["--epochs"])

    def test_smoke_applies_explicit_overrides(self):
        from repro.harness.campaign_cmd import build_spec, parse_campaign_args

        options = parse_campaign_args(["--smoke", "--epochs", "5"])
        spec = build_spec(options)
        assert spec.epochs == 5  # override applied, not discarded
        assert spec.image_size == CampaignSpec.smoke().image_size

    def test_cli_honors_env_store(self, tmp_path, monkeypatch, capsys):
        from repro.harness.campaign_cmd import run_campaign_cli

        monkeypatch.setenv(
            TrajectoryStore.ENV_VAR, str(tmp_path / "env-store")
        )
        monkeypatch.chdir(tmp_path)
        run_campaign_cli(["--smoke", "--out", str(tmp_path / "r")])
        assert len(TrajectoryStore.from_env()) == 1
        run_campaign_cli(["--smoke", "--out", str(tmp_path / "r")])
        assert "cache hit" in capsys.readouterr().out

    def test_unknown_explore_flag_rejected(self):
        from repro.harness.__main__ import run_explore_cli

        with pytest.raises(ValueError, match="unknown explore flag"):
            run_explore_cli("--objectiv", "trajectory")

    def test_memo_hit_writes_through_to_new_store(
        self, tmp_path, monkeypatch
    ):
        from repro.sweep import evaluators

        spec = tiny_spec(seed=17)
        monkeypatch.delenv(TrajectoryStore.ENV_VAR, raising=False)
        monkeypatch.setattr(evaluators, "_TRAJECTORY_MEMO", {})
        evaluators._campaign_trajectory(spec)  # trains, no store yet
        monkeypatch.setenv(
            TrajectoryStore.ENV_VAR, str(tmp_path / "late-store")
        )
        _, cached = evaluators._campaign_trajectory(spec)
        assert cached
        assert len(TrajectoryStore.from_env()) == 1  # written through

    def test_smoke_run_is_deterministic(self, tmp_path, capsys):
        """The acceptance check: identical artifact hash across runs."""
        from repro.harness.campaign_cmd import run_campaign_cli

        args = [
            "--smoke",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--out",
            str(tmp_path / "results"),
        ]
        first = run_campaign_cli(list(args))
        second = run_campaign_cli(list(args))
        assert first == second
        out = capsys.readouterr().out
        assert "artifact sha256" in out
        assert "cache hit" in out  # the second run loaded the store
        record = json.loads(
            (
                tmp_path
                / "results"
                / "campaign-vgg-s-procrustes-KN"
                / "record.json"
            ).read_text()
        )
        assert record["series"]["run_cycles"] > 0

    def test_harness_dispatch(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        code = main(
            [
                "harness",
                "campaign",
                "--smoke",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(tmp_path / "results"),
            ]
        )
        assert code == 0
        assert "artifact sha256" in capsys.readouterr().out
