"""Tests for the cycle-level PE-array simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import ArchConfig
from repro.hw.cyclesim import (
    CycleLevelSimulator,
    FabricConfig,
    IDEAL_FABRIC,
    SINGLE_WORD_FABRIC,
    _chunk_channels,
    _pair_halves_exact,
)
from repro.hw.pe import PEArraySimulator


def sparse_mask(rng, shape, density=0.2):
    return rng.uniform(size=shape) < density


@pytest.fixture
def small_arch():
    return ArchConfig(name="t4x4", pe_rows=4, pe_cols=4)


@pytest.fixture
def roomy_arch():
    # A register file large enough that no layer in these tests chunks.
    return ArchConfig(name="t4x4-big-rf", pe_rows=4, pe_cols=4,
                      rf_bytes_per_pe=1 << 20)


class TestChunking:
    def test_single_chunk_when_budget_ample(self, rng):
        nnz = rng.integers(0, 9, size=(8, 6))
        chunks = _chunk_channels(nnz, budget_words=10_000)
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0], np.arange(6))

    def test_chunks_partition_channels(self, rng):
        nnz = rng.integers(0, 9, size=(8, 32))
        chunks = _chunk_channels(nnz, budget_words=20)
        recovered = np.concatenate(chunks)
        np.testing.assert_array_equal(recovered, np.arange(32))

    def test_chunks_respect_budget(self, rng):
        nnz = rng.integers(0, 9, size=(8, 32))
        budget = 20
        chunks = _chunk_channels(nnz, budget_words=budget)
        for chunk in chunks:
            if len(chunk) > 1:
                assert nnz[:, chunk].sum(axis=1).max() <= budget

    def test_oversized_single_kernel_allowed(self):
        nnz = np.full((2, 3), 50)
        chunks = _chunk_channels(nnz, budget_words=10)
        assert all(len(c) == 1 for c in chunks)

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            _chunk_channels(np.ones((2, 2), dtype=int), budget_words=0)


class TestPairHalvesExact:
    def test_preserves_total(self, rng):
        first = rng.integers(0, 100, size=12).astype(float)
        second = rng.integers(0, 100, size=12).astype(float)
        paired = _pair_halves_exact(first, second)
        assert paired.sum() == pytest.approx(first.sum() + second.sum())

    def test_reduces_maximum(self, rng):
        first = rng.integers(0, 100, size=16).astype(float)
        second = rng.integers(0, 100, size=16).astype(float)
        paired = _pair_halves_exact(first, second)
        assert paired.max() <= first.max() + second.max()

    def test_perfectly_balances_uniform_pairs(self):
        first = np.array([10.0, 0.0])
        second = np.array([0.0, 10.0])
        paired = _pair_halves_exact(first, second)
        np.testing.assert_allclose(paired, [10.0, 10.0])


class TestFabricConfig:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            FabricConfig(h_words=0.0)

    def test_weight_budget_halved_by_double_buffering(self, small_arch):
        double = CycleLevelSimulator(small_arch, FabricConfig())
        single = CycleLevelSimulator(
            small_arch, FabricConfig(double_buffered=False)
        )
        assert double.weight_budget_words * 2 == single.weight_budget_words

    def test_rejects_bad_weight_share(self, small_arch):
        with pytest.raises(ValueError):
            CycleLevelSimulator(small_arch, rf_weight_share=0.0)


class TestKNAgainstAnalytical:
    """With ideal fabric the cycle sim must match the analytical model."""

    def test_matches_pe_array_simulator(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 6, 3, 3))
        weight = np.where(mask, rng.normal(size=mask.shape), 0.0)
        x = rng.normal(size=(8, 6, 10, 10))

        _, stats = PEArraySimulator(roomy_arch).run_conv_kn(x, weight)
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        result = sim.run_conv(mask, p=8, q=8, n=8, mapping="KN")

        assert result.compute_cycles == pytest.approx(stats.cycles, rel=1e-9)
        assert result.cycles == pytest.approx(stats.cycles, rel=1e-4)
        assert result.macs == stats.macs

    def test_macs_equal_nnz_times_outputs(self, rng, roomy_arch):
        mask = sparse_mask(rng, (4, 4, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        result = sim.run_conv(mask, p=5, q=5, n=4, mapping="KN")
        assert result.macs == int(mask.sum()) * 5 * 5 * 4

    def test_dense_mask_fully_utilizes(self, roomy_arch):
        mask = np.ones((4, 4, 3, 3), dtype=bool)
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        result = sim.run_conv(mask, p=6, q=6, n=4, mapping="KN")
        # 4 output channels on 4 rows, 4 samples on 4 columns: all PEs
        # active, equal work, so utilization approaches 1.
        assert result.utilization > 0.99


class TestKNBalancing:
    def test_balancing_reduces_cycles_for_skewed_masks(self, rng, roomy_arch):
        # One dense output channel among sparse ones: the unbalanced
        # per-set max is the dense channel's work.
        mask = sparse_mask(rng, (4, 16, 3, 3), density=0.1)
        mask[0] = True
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        plain = sim.run_conv(mask, p=6, q=6, n=4, mapping="KN")
        balanced = sim.run_conv(mask, p=6, q=6, n=4, mapping="KN", balance=True)
        assert balanced.cycles < plain.cycles
        assert balanced.macs == plain.macs

    def test_balancing_preserves_traffic_pattern(self, rng, roomy_arch):
        mask = sparse_mask(rng, (4, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        plain = sim.run_conv(mask, p=6, q=6, n=4, mapping="KN")
        balanced = sim.run_conv(mask, p=6, q=6, n=4, mapping="KN", balance=True)
        # The defining property of Figure 12: same buses, same word
        # counts — only the per-PE work distribution changes.
        assert balanced.bus_words == plain.bus_words


class TestCKMapping:
    def test_ck_runs_and_counts_macs(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        result = sim.run_conv(mask, p=5, q=5, n=3, mapping="CK")
        assert result.macs == int(mask.sum()) * 5 * 5 * 3

    def test_ck_unicast_carries_all_weights(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        result = sim.run_conv(mask, p=5, q=5, n=3, mapping="CK")
        assert result.bus_words["unicast"] == int(mask.sum())

    def test_ck_balanced_doubles_iact_traffic(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        plain = sim.run_conv(mask, p=5, q=5, n=3, mapping="CK")
        balanced = sim.run_conv(mask, p=5, q=5, n=3, mapping="CK", balance=True)
        assert balanced.bus_words["horizontal"] == pytest.approx(
            2.0 * plain.bus_words["horizontal"]
        )

    def test_ck_balanced_equalizes_compute(self, rng, roomy_arch):
        mask = sparse_mask(rng, (4, 4, 3, 3), density=0.3)
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        balanced = sim.run_conv(mask, p=5, q=5, n=2, mapping="CK", balance=True)
        # Perfect chip-wide balancing: compute = total / n_pes exactly.
        expect = int(mask.sum()) * 5 * 5 / roomy_arch.n_pes * 2
        assert balanced.compute_cycles == pytest.approx(expect)


class TestPipelineComposition:
    def test_double_buffering_hides_fills(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3), density=0.4)
        double = CycleLevelSimulator(roomy_arch, FabricConfig())
        single = CycleLevelSimulator(
            roomy_arch, FabricConfig(double_buffered=False)
        )
        fast = double.run_conv(mask, p=8, q=8, n=8, mapping="KN")
        slow = single.run_conv(mask, p=8, q=8, n=8, mapping="KN")
        assert fast.cycles < slow.cycles

    def test_starved_fabric_stalls(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3), density=0.4)
        starved = CycleLevelSimulator(
            roomy_arch, FabricConfig(h_words=0.01, v_words=0.01)
        )
        result = starved.run_conv(mask, p=4, q=4, n=8, mapping="KN")
        assert result.stall_fraction > 0.5
        assert result.bound_histogram()["fill"] > 0

    def test_ample_fabric_is_compute_bound(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3), density=0.4)
        sim = CycleLevelSimulator(roomy_arch, IDEAL_FABRIC)
        result = sim.run_conv(mask, p=8, q=8, n=8, mapping="KN")
        hist = result.bound_histogram()
        assert hist["compute"] == len(result.traces)

    def test_stall_cycles_consistent(self, rng, roomy_arch):
        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        result = sim.run_conv(mask, p=6, q=6, n=8, mapping="KN")
        assert result.stall_cycles == pytest.approx(
            result.cycles - result.compute_cycles
        )
        assert result.stall_cycles >= 0.0


class TestRFChunking:
    def test_small_rf_multiplies_sets(self, rng, small_arch):
        mask = np.ones((4, 64, 3, 3), dtype=bool)
        tight = CycleLevelSimulator(
            ArchConfig(name="tight", pe_rows=4, pe_cols=4,
                       rf_bytes_per_pe=256),
            IDEAL_FABRIC,
        )
        roomy = CycleLevelSimulator(
            ArchConfig(name="roomy", pe_rows=4, pe_cols=4,
                       rf_bytes_per_pe=1 << 20),
            IDEAL_FABRIC,
        )
        few = roomy.run_conv(mask, p=4, q=4, n=4, mapping="KN")
        many = tight.run_conv(mask, p=4, q=4, n=4, mapping="KN")
        assert len(many.traces) > len(few.traces)
        # Work is conserved regardless of chunking.
        assert many.macs == few.macs

    def test_input_validation(self, small_arch):
        sim = CycleLevelSimulator(small_arch)
        with pytest.raises(ValueError):
            sim.run_conv(np.ones((2, 2)), p=2, q=2, n=2)
        with pytest.raises(ValueError):
            sim.run_conv(np.ones((2, 2, 3, 3)), p=0, q=2, n=2)
        with pytest.raises(ValueError):
            sim.run_conv(np.ones((2, 2, 3, 3)), p=2, q=2, n=2, mapping="PQ")


class TestInterconnectArgument:
    """The paper's claim, cycle-accurate: the KN multicast dataflow
    needs less fill bandwidth than unicast-heavy CK."""

    def test_balancing_ck_backfires_on_simple_fabric(self, rng, roomy_arch):
        # Figure 10: chip-wide balancing equalizes CK's compute, but
        # the duplicated activation traffic stalls the simple fabric —
        # total cycles get *worse*, while balanced KN improves with
        # identical bus traffic (Figure 12).
        mask = sparse_mask(rng, (16, 16, 3, 3), density=0.2)
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        ck = sim.run_conv(mask, p=4, q=4, n=8, mapping="CK")
        ck_bal = sim.run_conv(mask, p=4, q=4, n=8, mapping="CK", balance=True)
        kn = sim.run_conv(mask, p=4, q=4, n=8, mapping="KN")
        kn_bal = sim.run_conv(mask, p=4, q=4, n=8, mapping="KN", balance=True)
        assert ck_bal.compute_cycles < ck.compute_cycles  # balance works...
        assert ck_bal.cycles > ck.cycles  # ...but the fabric can't feed it
        assert kn_bal.cycles < kn.cycles  # KN balancing helps outright
        assert kn_bal.cycles < ck_bal.cycles

    def test_kn_faster_than_ck_overall(self, rng, roomy_arch):
        # Figure 19's headline on the same simple fabric: the
        # spatial-minibatch mapping beats weight-stationary CK.
        mask = sparse_mask(rng, (16, 16, 3, 3), density=0.2)
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        kn = sim.run_conv(mask, p=4, q=4, n=8, mapping="KN", balance=True)
        ck = sim.run_conv(mask, p=4, q=4, n=8, mapping="CK")
        assert kn.cycles < ck.cycles


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(1, 10),
    c=st.integers(1, 10),
    n=st.integers(1, 9),
    seed=st.integers(0, 2**31),
)
def test_mac_conservation_property(k, c, n, seed):
    """MAC counts never depend on mapping, balancing, or fabric."""
    rng = np.random.default_rng(seed)
    mask = rng.uniform(size=(k, c, 3, 3)) < 0.3
    arch = ArchConfig(name="t", pe_rows=4, pe_cols=4, rf_bytes_per_pe=1 << 20)
    sim = CycleLevelSimulator(arch, SINGLE_WORD_FABRIC)
    expect = int(mask.sum()) * 4 * 4 * n
    for mapping in ("KN", "CK"):
        for balance in (False, True):
            result = sim.run_conv(mask, p=4, q=4, n=n,
                                  mapping=mapping, balance=balance)
            assert result.macs == expect


class TestFabricEnergyBridge:
    def test_energy_prices_bus_words(self, rng, roomy_arch):
        from repro.hw.fabric_cost import FabricCostModel

        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        result = sim.run_conv(mask, p=6, q=6, n=8, mapping="KN")
        costs = FabricCostModel(roomy_arch).simple_fabric()
        energy = result.fabric_energy_pj(costs)
        expect = sum(
            words * costs.energy_pj_per_word[flow]
            for flow, words in result.bus_words.items()
        )
        assert energy == pytest.approx(expect)
        assert energy > 0.0

    def test_balanced_kn_same_fabric_energy(self, rng, roomy_arch):
        from repro.hw.fabric_cost import FabricCostModel

        # Figure 12's invariant, in picojoules: balancing K,N does not
        # change what the wires carry.
        mask = sparse_mask(rng, (8, 8, 3, 3))
        sim = CycleLevelSimulator(roomy_arch, SINGLE_WORD_FABRIC)
        costs = FabricCostModel(roomy_arch).simple_fabric()
        plain = sim.run_conv(mask, p=6, q=6, n=8, mapping="KN")
        balanced = sim.run_conv(mask, p=6, q=6, n=8, mapping="KN",
                                balance=True)
        assert balanced.fabric_energy_pj(costs) == pytest.approx(
            plain.fabric_energy_pj(costs)
        )
