"""Tests for the harness export pipeline (fast experiments only)."""

import json

import pytest

from repro.harness.export_all import (
    _export_fig01,
    _export_tables,
    _save_rows,
)
from repro.report.export import ResultsDirectory


@pytest.fixture
def results(tmp_path):
    return ResultsDirectory(tmp_path / "results")


class TestSaveRows:
    def test_writes_record_and_csv(self, results):
        rows = [
            {"network": "vgg-s", "total_j": 1.5},
            {"network": "resnet18", "total_j": 2.5},
        ]
        _save_rows(results, "figX", rows, {"mapping": "KN"}, notes="test")
        record = results.load_record("figX")
        assert record["params"] == {"mapping": "KN"}
        assert record["series"]["rows"] == rows
        csv_path = results.path_for("figX", "rows.csv")
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header == "network,total_j"

    def test_empty_rows_skip_csv(self, results):
        _save_rows(results, "figY", [], {}, notes="")
        assert results.load_record("figY")["series"]["rows"] == []
        assert not results.path_for("figY", "rows.csv").exists()


class TestFig01Export:
    def test_record_is_loadable_and_sane(self, results):
        _export_fig01(results)
        record = results.load_record("fig01")
        assert record["params"]["network"] == "vgg-s"
        # Figure 1's headline: >2x ideal speedup and energy saving.
        assert record["series"]["speedup"] > 2.0
        assert record["series"]["energy_saving"] > 2.0
        # Per-phase breakdowns present for all three phases.
        assert set(record["series"]["dense_cycles"]) == {"fw", "bw", "wu"}


class TestTablesExport:
    def test_table2_and_table3(self, results):
        _export_tables(results)
        t2 = results.load_record("table2")
        networks = {row["network"] for row in t2["series"]["rows"]}
        assert "vgg-s" in networks and "resnet18" in networks
        t3 = results.load_record("table3")
        assert 0.10 < t3["series"]["area_overhead"] < 0.20
        assert 0.05 < t3["series"]["power_overhead"] < 0.15
        names = {c["name"] for c in t3["series"]["components"]}
        assert "Quantile Engine" in names

    def test_records_round_trip_through_json(self, results, tmp_path):
        _export_tables(results)
        raw = results.path_for("table3", "record.json").read_text()
        assert json.loads(raw)["experiment"] == "table3"


class TestBeyondExport:
    def test_three_records_written(self, results):
        from repro.harness.export_all import _export_beyond

        _export_beyond(results)
        ids = results.list_experiments()
        assert {"fabric-pricing", "format-costs", "schedule-survey"} <= set(ids)
        survey = results.load_record("schedule-survey")
        assert survey["series"]["procrustes"]["avg_density"] < 0.1
        fabric = results.load_record("fabric-pricing")
        assert fabric["series"]["16"]["simple-3net"] < 0.1
