"""Tests for the model zoo: paper-scale stats and mini trainability."""

import numpy as np
import pytest

from repro.models import MINI_MODELS, PAPER_MODELS, get_specs


class TestPaperScaleSpecs:
    @pytest.mark.parametrize("name", sorted(PAPER_MODELS))
    def test_weight_count_matches_table2(self, name):
        """Dense model sizes within 3% of the paper's Table II."""
        entry = PAPER_MODELS[name]
        weights = sum(s.weight_count for s in entry.specs())
        assert weights == pytest.approx(entry.table2.dense_size, rel=0.03)

    @pytest.mark.parametrize(
        "name,rel",
        [
            ("vgg-s", 0.20),
            ("resnet18", 0.05),
            ("mobilenet-v2", 0.05),
            ("densenet", 0.40),
            ("wrn-28-10", 0.35),
        ],
    )
    def test_mac_count_near_table2(self, name, rel):
        """Forward MACs in the neighbourhood of Table II (the paper's
        exact pooling/config details differ slightly for the CIFAR
        nets; see EXPERIMENTS.md)."""
        entry = PAPER_MODELS[name]
        macs = sum(s.macs_per_sample() for s in entry.specs())
        assert macs == pytest.approx(entry.table2.dense_macs, rel=rel)

    def test_resnet18_structure(self):
        specs = get_specs("resnet18")
        assert specs[0].r == 7 and specs[0].stride == 2
        assert specs[-1].kind == "fc"
        assert specs[-1].k == 1000

    def test_mobilenet_has_depthwise(self):
        specs = get_specs("mobilenet-v2")
        depthwise = [s for s in specs if s.groups > 1]
        assert len(depthwise) == 17  # one per bottleneck block
        assert all(s.groups == s.c for s in depthwise)

    def test_vgg_has_thirteen_convs(self):
        specs = get_specs("vgg-s")
        convs = [s for s in specs if s.kind == "conv"]
        assert len(convs) == 13

    def test_densenet_channel_growth(self):
        specs = get_specs("densenet")
        block_layers = [s for s in specs if "block0" in s.name]
        assert block_layers[0].c == 24
        assert block_layers[-1].c == 24 + 9 * 24

    def test_wrn_widths(self):
        specs = get_specs("wrn-28-10")
        assert max(s.k for s in specs) == 640

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_specs("alexnet")

    @pytest.mark.parametrize("name", sorted(PAPER_MODELS))
    def test_act_density_ranges_sane(self, name):
        lo, hi = PAPER_MODELS[name].act_density_range
        assert 0.0 < lo < hi <= 1.0


class TestMiniModels:
    @pytest.mark.parametrize("name", sorted(MINI_MODELS))
    def test_forward_backward(self, name, rng):
        net = MINI_MODELS[name](n_classes=4)
        x = rng.normal(size=(4, 3, 16, 16))
        labels = np.array([0, 1, 2, 3])
        loss, _ = net.loss_and_grad(x, labels)
        assert np.isfinite(loss)
        assert all(
            p.grad is not None and np.isfinite(p.grad).all()
            for p in net.parameters()
        )

    @pytest.mark.parametrize("name", sorted(MINI_MODELS))
    def test_eval_mode_no_cache(self, name, rng):
        net = MINI_MODELS[name](n_classes=3)
        logits = net.forward(rng.normal(size=(2, 3, 16, 16)), training=False)
        assert logits.shape == (2, 3)

    @pytest.mark.parametrize("name", sorted(MINI_MODELS))
    def test_deterministic_by_seed(self, name, rng):
        x = rng.normal(size=(2, 3, 16, 16))
        a = MINI_MODELS[name](n_classes=3, seed=11)
        b = MINI_MODELS[name](n_classes=3, seed=11)
        np.testing.assert_allclose(
            a.forward(x, training=False), b.forward(x, training=False)
        )

    def test_mini_models_have_prunable_weights(self):
        for name, builder in MINI_MODELS.items():
            net = builder(n_classes=3)
            assert net.prunable_count() > 0.5 * net.parameter_count(), name

    def test_mini_resnet_residual_paths(self, rng):
        net = MINI_MODELS["resnet18"](n_classes=3)
        # A residual net's gradient must flow to the first conv.
        x = rng.normal(size=(2, 3, 16, 16))
        net.loss_and_grad(x, np.array([0, 1]))
        first = net.parameters()[0]
        assert np.abs(first.grad).max() > 0
