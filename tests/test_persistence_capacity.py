"""Tests for checkpointing and GLB mask-residency checks."""

import numpy as np
import pytest

from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.hw.capacity import check_mask_residency
from repro.hw.config import PROCRUSTES_16x16
from repro.models.vgg import mini_vgg_s
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.data import make_blob_images
from repro.nn.trainer import Trainer


class TestCheckpoint:
    def _trained(self, seed=0, selection="quantile"):
        train, val = make_blob_images(
            n_classes=3, samples_per_class=12, size=16, seed=2
        )
        model = mini_vgg_s(n_classes=3, width=8, seed=seed)
        opt = DropbackOptimizer(
            model.parameters(),
            DropbackConfig(
                sparsity_factor=4.0, lr=0.05, selection=selection,
                init_decay=0.9, init_decay_zero_after=10,
            ),
        )
        Trainer(model, opt, train, val, batch_size=6, seed=seed).run(2)
        return model, opt, (train, val)

    def test_roundtrip_restores_weights(self, tmp_path):
        model, opt, _ = self._trained()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, opt)
        fresh = mini_vgg_s(n_classes=3, width=8, seed=99)
        fresh_opt = DropbackOptimizer(
            fresh.parameters(),
            DropbackConfig(
                sparsity_factor=4.0, lr=0.05, selection="quantile",
                init_decay=0.9, init_decay_zero_after=10,
            ),
        )
        load_checkpoint(path, fresh, fresh_opt)
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_array_equal(a.data, b.data)
        assert fresh_opt.iteration == opt.iteration
        assert fresh_opt.threshold == pytest.approx(opt.threshold)

    def test_resumed_training_matches_uninterrupted(self, tmp_path):
        """Save/load mid-run, continue, and get bit-identical weights
        to an uninterrupted run (sort mode: fully deterministic)."""
        train, val = make_blob_images(
            n_classes=3, samples_per_class=12, size=16, seed=2
        )

        def fresh_pair(seed=0):
            model = mini_vgg_s(n_classes=3, width=8, seed=seed)
            opt = DropbackOptimizer(
                model.parameters(),
                DropbackConfig(
                    sparsity_factor=4.0, lr=0.05, selection="sort",
                    init_decay=0.9, init_decay_zero_after=10,
                ),
            )
            return model, opt

        # Uninterrupted: 2 epochs.
        model_a, opt_a = fresh_pair()
        Trainer(model_a, opt_a, train, val, batch_size=6, seed=0).run(2)

        # Interrupted: 1 epoch, checkpoint, reload, 1 more epoch with a
        # trainer whose shuffling resumes from the same stream state.
        model_b, opt_b = fresh_pair()
        trainer_b = Trainer(model_b, opt_b, train, val, batch_size=6, seed=0)
        trainer_b.run(1)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, model_b, opt_b)
        model_c, opt_c = fresh_pair(seed=5)
        load_checkpoint(path, model_c, opt_c)
        trainer_c = Trainer(model_c, opt_c, train, val, batch_size=6, seed=0)
        trainer_c._rng = trainer_b._rng  # hand over the shuffle stream
        trainer_c.run(1)
        for a, c in zip(model_a.parameters(), model_c.parameters()):
            np.testing.assert_allclose(a.data, c.data, atol=1e-12)

    def test_model_only_checkpoint(self, tmp_path):
        model, _, _ = self._trained()
        path = tmp_path / "model.npz"
        save_checkpoint(path, model)
        fresh = mini_vgg_s(n_classes=3, width=8, seed=42)
        load_checkpoint(path, fresh)
        x = np.zeros((2, 3, 16, 16))
        np.testing.assert_allclose(
            model.forward(x, training=False),
            fresh.forward(x, training=False),
        )


class TestMaskResidency:
    @pytest.mark.parametrize(
        "network", ["vgg-s", "resnet18", "wrn-28-10", "mobilenet-v2", "densenet"]
    )
    def test_working_set_masks_fit_glb(self, network):
        """Section IV-B's claim: mask arrays fit on chip — true at
        working-set granularity for every layer of every network."""
        from repro.harness.common import sparse_profile_for

        profile = sparse_profile_for(network)
        results = check_mask_residency(profile, PROCRUSTES_16x16)
        assert all(r.fits_working_set for r in results), [
            r.layer_name for r in results if not r.fits_working_set
        ]

    def test_whole_layer_masks_do_not_always_fit(self):
        """...but whole-model masks would not, which is why residency
        is managed at tile granularity."""
        from repro.harness.common import sparse_profile_for

        profile = sparse_profile_for("wrn-28-10")
        results = check_mask_residency(profile, PROCRUSTES_16x16)
        assert any(not r.fits_whole_layer for r in results)

    def test_report_fields(self):
        from repro.harness.common import sparse_profile_for

        profile = sparse_profile_for("vgg-s")
        results = check_mask_residency(profile, PROCRUSTES_16x16)
        assert len(results) == len(profile.layers)
        for r in results:
            assert r.working_set_mask_bits <= r.layer_mask_bits
