"""Tests for the alternative threshold estimators (Section III-B)."""

import numpy as np
import pytest

from repro.core.quantile import DumiqueEstimator
from repro.core.quantile_variants import (
    P2Estimator,
    SetPointThreshold,
    estimator_hardware_cost,
)


def stream(rng, n=20_000):
    """A heavy-tailed gradient-magnitude-like stream."""
    return np.abs(rng.normal(size=n)) ** 1.5


class TestSetPointThreshold:
    def test_converges_with_good_init(self, rng):
        values = stream(rng)
        truth = np.quantile(values, 0.9)
        est = SetPointThreshold(0.9, initial=truth * 1.5, adjust_every=500)
        est.update_many(values)
        assert est.estimate == pytest.approx(truth, rel=0.25)

    def test_bad_init_converges_slowly(self, rng):
        # The hyperparameter sensitivity the paper criticizes: start
        # six orders of magnitude off and the controller is still far
        # from the quantile after the same stream.
        values = stream(rng)
        truth = np.quantile(values, 0.9)
        good = SetPointThreshold(0.9, initial=truth, adjust_every=500)
        bad = SetPointThreshold(0.9, initial=truth * 1e-6, adjust_every=500)
        good.update_many(values)
        bad.update_many(values)
        good_err = abs(np.log(good.estimate / truth))
        bad_err = abs(np.log(bad.estimate / truth))
        assert bad_err > 2.0 * good_err

    def test_counts(self, rng):
        est = SetPointThreshold(0.5, initial=1.0)
        est.update_many(stream(rng, 100))
        assert est.count == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            SetPointThreshold(0.0, initial=1.0)
        with pytest.raises(ValueError):
            SetPointThreshold(0.5, initial=0.0)
        with pytest.raises(ValueError):
            SetPointThreshold(0.5, initial=1.0, adjust_every=0)
        with pytest.raises(ValueError):
            SetPointThreshold(0.5, initial=1.0, gain=0.0)


class TestP2Estimator:
    def test_small_stream_uses_exact(self):
        est = P2Estimator(0.5)
        for v in (5.0, 1.0, 3.0):
            est.update(v)
        assert est.estimate == 3.0

    def test_empty_estimate(self):
        assert P2Estimator(0.5).estimate == 0.0

    def test_accuracy_on_uniform(self, rng):
        values = rng.uniform(size=50_000)
        est = P2Estimator(0.9)
        est.update_many(values)
        assert est.estimate == pytest.approx(0.9, abs=0.02)

    def test_accuracy_on_heavy_tail(self, rng):
        values = stream(rng, 50_000)
        truth = np.quantile(values, 0.9)
        est = P2Estimator(0.9)
        est.update_many(values)
        assert est.estimate == pytest.approx(truth, rel=0.1)

    def test_beats_or_matches_dumique_accuracy(self, rng):
        # P2 is the accuracy reference; DUMIQUE trades accuracy for a
        # single-register datapath.
        values = stream(rng, 50_000)
        truth = np.quantile(values, 0.9)
        p2 = P2Estimator(0.9)
        dumique = DumiqueEstimator(0.9)
        p2.update_many(values)
        dumique.update_many(values)
        p2_err = abs(np.log(p2.estimate / truth))
        dumique_err = abs(np.log(dumique.estimate / truth))
        assert p2_err <= dumique_err + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Estimator(1.0)


class TestHardwareCost:
    def test_ordering(self):
        dumique = estimator_hardware_cost("dumique")
        setpoint = estimator_hardware_cost("set-point")
        p2 = estimator_hardware_cost("p2")
        assert dumique["registers"] < setpoint["registers"] < p2["registers"]
        assert p2["multiplies"] > dumique["multiplies"]

    def test_unknown(self):
        with pytest.raises(ValueError):
            estimator_hardware_cost("magic")
