"""Tests for the Pareto utilities: dominance, frontier, hypervolume, diff.

These pin down the semantics the explorer's documentation promises:
ties dominate in neither direction and both stay on the frontier,
maximized objectives are negated internally, an empty frontier has
zero hypervolume, and frontier diffs compare by objective vector.
"""

from __future__ import annotations

import pytest

from repro.explore.pareto import (
    FrontierDiff,
    Objective,
    ParetoFrontier,
    dominates,
    frontier_diff,
    hypervolume,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((2, 2), (1, 1))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (1, 3))

    def test_tie_dominates_neither_way(self):
        assert not dominates((1, 2), (1, 2))

    def test_tradeoff_is_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_single_objective(self):
        assert dominates((1,), (2,))
        assert not dominates((2,), (1,))
        assert not dominates((1,), (1,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates((1, 2), (1, 2, 3))


class TestObjective:
    def test_parse_string(self):
        assert Objective.parse("cycles") == Objective("cycles", minimize=True)
        assert Objective.parse("acc:max") == Objective("acc", minimize=False)
        assert Objective.parse("j:min") == Objective("j", minimize=True)

    def test_parse_passthrough(self):
        objective = Objective("x", minimize=False)
        assert Objective.parse(objective) is objective

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            Objective.parse("x:upwards")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Objective("")


class TestParetoFrontier:
    def test_empty_frontier(self):
        frontier = ParetoFrontier(["a"])
        assert len(frontier) == 0
        assert frontier.points == ()
        assert frontier.hypervolume() == 0.0
        assert frontier.hypervolume((10.0,)) == 0.0

    def test_requires_objectives(self):
        with pytest.raises(ValueError, match="at least one"):
            ParetoFrontier([])
        with pytest.raises(ValueError, match="duplicate"):
            ParetoFrontier(["a", "a"])

    def test_add_keeps_non_dominated(self):
        frontier = ParetoFrontier(["a", "b"])
        assert frontier.add({"p": 1}, {"a": 1, "b": 3})
        assert frontier.add({"p": 2}, {"a": 3, "b": 1})
        assert not frontier.add({"p": 3}, {"a": 4, "b": 4})
        assert len(frontier) == 2

    def test_add_evicts_newly_dominated(self):
        frontier = ParetoFrontier(["a", "b"])
        frontier.add({"p": 1}, {"a": 2, "b": 2})
        frontier.add({"p": 2}, {"a": 3, "b": 3, "extra": "kept"})
        assert len(frontier) == 1  # (3,3) rejected outright
        assert frontier.add({"p": 3}, {"a": 1, "b": 1})
        assert len(frontier) == 1
        assert frontier.points[0].params == {"p": 3}

    def test_ties_both_stay(self):
        frontier = ParetoFrontier(["a", "b"])
        assert frontier.add({"p": 1}, {"a": 1, "b": 2})
        assert frontier.add({"p": 2}, {"a": 1, "b": 2})
        assert len(frontier) == 2

    def test_single_objective_keeps_only_best(self):
        frontier = ParetoFrontier(["a"])
        frontier.add({"p": 1}, {"a": 5})
        assert frontier.add({"p": 2}, {"a": 3})
        assert not frontier.add({"p": 3}, {"a": 4})
        assert [p.vector for p in frontier] == [(3.0,)]

    def test_maximized_objective_negated(self):
        frontier = ParetoFrontier(["cost", "accuracy:max"])
        frontier.add({"p": 1}, {"cost": 1, "accuracy": 0.9})
        assert not frontier.add({"p": 2}, {"cost": 2, "accuracy": 0.8})
        assert frontier.add({"p": 3}, {"cost": 2, "accuracy": 0.95})
        assert len(frontier) == 2

    def test_sorted_points(self):
        frontier = ParetoFrontier(["a", "b"])
        frontier.add({}, {"a": 3, "b": 1})
        frontier.add({}, {"a": 1, "b": 3})
        ordered = frontier.sorted_points(0)
        assert [p.vector[0] for p in ordered] == [1.0, 3.0]


class TestHypervolume:
    def test_known_2d_value(self):
        assert hypervolume([(1, 3), (2, 2), (3, 1)], (4, 4)) == 6.0

    def test_single_point_is_box_volume(self):
        assert hypervolume([(0, 0)], (2, 3)) == 6.0

    def test_1d(self):
        assert hypervolume([(2,), (4,)], (10,)) == 8.0

    def test_duplicates_do_not_double_count(self):
        assert hypervolume([(1, 1), (1, 1)], (2, 2)) == 1.0

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(1, 1)], (4, 4))
        assert hypervolume([(1, 1), (2, 2)], (4, 4)) == base

    def test_3d(self):
        # Unit-box corner: volume 1 within a 2-reference cube is 8.
        assert hypervolume([(0, 0, 0)], (2, 2, 2)) == 8.0

    def test_empty(self):
        assert hypervolume([], (1, 1)) == 0.0

    def test_default_reference_is_nadir(self):
        # Nadir of {(1,3),(2,2),(3,1)} is (3,3); within that box only
        # (2,2) dominates non-degenerate volume: the 1x1 square.
        assert hypervolume([(1, 3), (2, 2), (3, 1)]) == 1.0
        # Extreme points alone span only degenerate slabs.
        assert hypervolume([(1, 3), (3, 1)]) == 0.0

    def test_reference_must_be_weakly_worse(self):
        with pytest.raises(ValueError, match="worse than the reference"):
            hypervolume([(5, 5)], (4, 4))

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError, match="mixed vector lengths"):
            hypervolume([(1, 2), (1, 2, 3)], (4, 4))


class TestFrontierDiff:
    def _frontier(self, *vectors):
        frontier = ParetoFrontier(["a", "b"])
        for i, (a, b) in enumerate(vectors):
            frontier.add({"i": i}, {"a": a, "b": b})
        return frontier

    def test_identical_frontiers_unchanged(self):
        new = self._frontier((1, 3), (3, 1))
        old = self._frontier((1, 3), (3, 1))
        diff = frontier_diff(new, old)
        assert diff.unchanged
        assert len(diff.common) == 2
        assert diff.summary() == "+0 gained, -0 lost, 2 unchanged"

    def test_gained_and_lost(self):
        new = self._frontier((1, 3), (2, 2))
        old = self._frontier((1, 3), (3, 1))
        diff = frontier_diff(new, old)
        assert [p.vector for p in diff.gained] == [(2.0, 2.0)]
        assert [p.vector for p in diff.lost] == [(3.0, 1.0)]
        assert [p.vector for p in diff.common] == [(1.0, 3.0)]
        assert not diff.unchanged

    def test_matching_is_by_vector_not_params(self):
        new = ParetoFrontier(["a", "b"])
        new.add({"design": "x"}, {"a": 1, "b": 1})
        old = ParetoFrontier(["a", "b"])
        old.add({"design": "y"}, {"a": 1, "b": 1})
        assert frontier_diff(new, old).unchanged

    def test_objective_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different objectives"):
            frontier_diff(
                ParetoFrontier(["a", "b"]), ParetoFrontier(["a", "c"])
            )

    def test_empty_diff_dataclass(self):
        assert FrontierDiff().unchanged
