"""Tests for the beyond-the-paper harness drivers."""

import pytest

from repro.harness import beyond_experiments as _beyond

format_eager_comparison = _beyond.entry_point("format_eager_comparison")
format_fabric_pricing = _beyond.entry_point("format_fabric_pricing")
format_format_costs = _beyond.entry_point("format_format_costs")
format_schedule_survey = _beyond.entry_point("format_schedule_survey")
run_eager_comparison = _beyond.entry_point("run_eager_comparison")
run_fabric_pricing = _beyond.entry_point("run_fabric_pricing")
run_format_costs = _beyond.entry_point("run_format_costs")
run_schedule_survey = _beyond.entry_point("run_schedule_survey")


class TestFormatCostsDriver:
    def test_structure_and_rendering(self):
        results = run_format_costs(density=0.3)
        assert set(results) == {"conv", "fc"}
        rendered = format_format_costs(results)
        assert "CSB" in rendered and "EIE" in rendered
        assert "in-place wu" in rendered


class TestScheduleSurveyDriver:
    def test_all_methods_present(self):
        rows = run_schedule_survey(total_iterations=10_000)
        assert set(rows) == {
            "lottery", "eager-pruning", "dsr", "dropback", "procrustes",
        }
        rendered = format_schedule_survey(rows)
        assert "procrustes" in rendered

    def test_headline_ordering(self):
        rows = run_schedule_survey(total_iterations=300_000)
        assert rows["procrustes"]["avg_density"] < rows["lottery"]["avg_density"]
        assert rows["procrustes"]["peak_reduction"] > 1.0


class TestFabricPricingDriver:
    def test_simple_fabric_flat(self):
        table = run_fabric_pricing(sides=(8, 16))
        assert table[8]["simple-3net"] == pytest.approx(
            table[16]["simple-3net"], rel=0.05
        )
        rendered = format_fabric_pricing(table)
        assert "crossbar" in rendered


class TestEagerComparisonDriver:
    def test_rows_and_sorting(self):
        rows, sorting = run_eager_comparison()
        assert len(rows) == 3
        assert sorting > 1.0
        rendered = format_eager_comparison(rows, sorting)
        assert "Mcycles" in rendered
