"""Tests for zero-free activation storage (Section IV-A / Gist-style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.activations import (
    CompressedActivations,
    relu_density,
    storage_bits_at_density,
)


def relu_like(rng, shape, density=0.5):
    acts = rng.normal(size=shape)
    acts[acts < 0] = 0.0  # relu
    # Thin further to the requested density.
    keep = rng.uniform(size=shape) < (density / max(relu_density(acts), 1e-9))
    return np.where(keep, acts, 0.0)


class TestReluDensity:
    def test_half_for_symmetric_relu(self, rng):
        acts = np.maximum(rng.normal(size=(4, 8, 16, 16)), 0.0)
        assert 0.4 < relu_density(acts) < 0.6

    def test_empty(self):
        assert relu_density(np.zeros((0, 1, 1, 1))) == 0.0

    def test_all_zero(self):
        assert relu_density(np.zeros((2, 2, 2, 2))) == 0.0


class TestCompressedActivations:
    def test_roundtrip(self, rng):
        acts = relu_like(rng, (3, 4, 8, 8))
        comp = CompressedActivations.from_dense(acts)
        np.testing.assert_allclose(comp.to_dense(), acts)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            CompressedActivations.from_dense(rng.normal(size=(4, 4)))

    def test_slab_matches_dense(self, rng):
        acts = relu_like(rng, (2, 3, 5, 5))
        comp = CompressedActivations.from_dense(acts)
        for n in range(2):
            for c in range(3):
                np.testing.assert_allclose(comp.slab(n, c), acts[n, c])

    def test_slab_out_of_range(self, rng):
        comp = CompressedActivations.from_dense(relu_like(rng, (2, 2, 4, 4)))
        with pytest.raises(IndexError):
            comp.slab(2, 0)
        with pytest.raises(IndexError):
            comp.slab(0, -1)

    def test_density_and_nnz(self, rng):
        acts = relu_like(rng, (2, 4, 8, 8), density=0.3)
        comp = CompressedActivations.from_dense(acts)
        assert comp.nnz == np.count_nonzero(acts)
        assert comp.density == pytest.approx(relu_density(acts))

    def test_compression_wins_at_relu_density(self, rng):
        acts = relu_like(rng, (4, 16, 16, 16), density=0.4)
        comp = CompressedActivations.from_dense(acts)
        assert comp.compression_ratio() > 1.5

    def test_compression_loses_when_dense(self, rng):
        acts = rng.normal(size=(2, 4, 8, 8))  # no zeros
        comp = CompressedActivations.from_dense(acts)
        assert comp.compression_ratio() < 1.0

    def test_storage_bits_components(self, rng):
        acts = relu_like(rng, (2, 3, 4, 4))
        comp = CompressedActivations.from_dense(acts)
        bits = comp.storage_bits()
        assert bits["values"] == comp.nnz * 32
        assert bits["masks"] == acts.size
        assert comp.total_storage_bits() == sum(bits.values())

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 4),
        c=st.integers(1, 6),
        h=st.integers(1, 10),
        seed=st.integers(0, 2**31),
    )
    def test_roundtrip_property(self, n, c, h, seed):
        rng = np.random.default_rng(seed)
        acts = relu_like(rng, (n, c, h, h), density=0.4)
        comp = CompressedActivations.from_dense(acts)
        np.testing.assert_allclose(comp.to_dense(), acts)


class TestAnalyticStorage:
    def test_matches_materialized_encoding(self, rng):
        acts = relu_like(rng, (2, 8, 16, 16), density=0.5)
        comp = CompressedActivations.from_dense(acts)
        analytic = storage_bits_at_density(
            acts.size, comp.density, slab_size=16 * 16
        )
        # Pointer granularity differs slightly; values+masks dominate.
        assert analytic == pytest.approx(comp.total_storage_bits(), rel=0.02)

    def test_zero_density(self):
        bits = storage_bits_at_density(1000, 0.0)
        assert bits == 1000 + (1000 // 64 + 1) * 32  # masks + pointers

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_bits_at_density(100, 1.5)
        with pytest.raises(ValueError):
            storage_bits_at_density(-1, 0.5)

    def test_monotone_in_density(self):
        sizes = [
            storage_bits_at_density(10_000, d)
            for d in (0.1, 0.3, 0.5, 0.9)
        ]
        assert sizes == sorted(sizes)
