"""Tests for the DUMIQUE streaming quantile estimator (Algorithm 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantile import (
    DumiqueEstimator,
    ParallelQuantileEstimator,
    quantile_for_sparsity,
    sparsity_for_quantile,
)


class TestQuantileConversions:
    def test_sparsity_ten_means_ninetieth_quantile(self):
        assert quantile_for_sparsity(10.0) == pytest.approx(0.9)

    def test_sparsity_two_means_median(self):
        assert quantile_for_sparsity(2.0) == pytest.approx(0.5)

    def test_roundtrip(self):
        for factor in (1.5, 2.0, 5.2, 7.5, 11.7):
            q = quantile_for_sparsity(factor)
            assert sparsity_for_quantile(q) == pytest.approx(factor)

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            quantile_for_sparsity(0.9)

    def test_rejects_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            sparsity_for_quantile(1.0)


class TestDumiqueEstimator:
    def test_paper_defaults(self):
        est = DumiqueEstimator(0.9)
        assert est.estimate == pytest.approx(1e-6)
        assert est.rho == pytest.approx(1e-3)

    def test_update_moves_up_when_below_sample(self):
        est = DumiqueEstimator(0.9, initial=1.0)
        est.update(2.0)
        assert est.estimate > 1.0

    def test_update_moves_down_when_above_sample(self):
        est = DumiqueEstimator(0.9, initial=1.0)
        est.update(0.5)
        assert est.estimate < 1.0

    def test_update_factors_match_algorithm4(self):
        est = DumiqueEstimator(0.8, rho=1e-2, initial=1.0)
        est.update(2.0)
        assert est.estimate == pytest.approx(1.0 + 1e-2 * 0.8)
        est2 = DumiqueEstimator(0.8, rho=1e-2, initial=1.0)
        est2.update(0.1)
        assert est2.estimate == pytest.approx(1.0 - 1e-2 * 0.2)

    def test_converges_to_uniform_quantile(self, rng):
        est = DumiqueEstimator(0.9, rho=5e-3, initial=0.5)
        for value in rng.uniform(0, 1, size=60_000):
            est.update(float(value))
        assert est.estimate == pytest.approx(0.9, abs=0.05)

    def test_converges_to_exponential_quantile(self, rng):
        est = DumiqueEstimator(0.75, rho=5e-3, initial=1e-3)
        data = rng.exponential(2.0, size=80_000)
        est.update_many(data)
        truth = float(np.quantile(data, 0.75))
        assert est.estimate == pytest.approx(truth, rel=0.15)

    def test_update_many_matches_scalar_loop(self, rng):
        data = rng.lognormal(0, 1.0, size=3000)
        a = DumiqueEstimator(0.9, initial=0.5)
        b = DumiqueEstimator(0.9, initial=0.5)
        for value in data:
            a.update(float(value))
        b.update_many(data)
        assert b.estimate == pytest.approx(a.estimate, rel=1e-6)
        assert b.count == a.count == 3000

    def test_count_increments(self):
        est = DumiqueEstimator(0.5)
        est.update(1.0)
        est.update(2.0)
        assert est.count == 2

    @pytest.mark.parametrize("bad_q", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_quantile(self, bad_q):
        with pytest.raises(ValueError):
            DumiqueEstimator(bad_q)

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            DumiqueEstimator(0.9, rho=0.0)

    def test_rejects_nonpositive_initial(self):
        with pytest.raises(ValueError):
            DumiqueEstimator(0.9, initial=0.0)

    def test_estimate_stays_positive(self, rng):
        est = DumiqueEstimator(0.1, initial=1e-6)
        est.update_many(rng.uniform(0, 1, size=10_000))
        assert est.estimate > 0.0

    @given(
        q=st.floats(0.05, 0.95),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_equilibrium_property(self, q, seed):
        """At equilibrium the estimate sits near the q-th quantile."""
        gen = np.random.default_rng(seed)
        est = DumiqueEstimator(q, rho=1e-2, initial=0.5)
        data = gen.uniform(0, 1, size=30_000)
        est.update_many(data)
        assert abs(est.estimate - q) < 0.12


class TestParallelQuantileEstimator:
    def test_width_one_matches_scalar(self, rng):
        data = rng.uniform(0, 1, size=2000)
        scalar = DumiqueEstimator(0.9, initial=0.5)
        parallel = ParallelQuantileEstimator(0.9, width=1, initial=0.5)
        scalar.update_many(data)
        parallel.update_many(data)
        assert parallel.estimate == pytest.approx(scalar.estimate, rel=1e-9)

    def test_group_averaging(self):
        est = ParallelQuantileEstimator(0.9, width=4, rho=1e-2, initial=1.0)
        # One full group of four values averaging 2.0 -> single up-move.
        est.update_many(np.array([1.0, 2.0, 3.0, 2.0]))
        assert est.estimate == pytest.approx(1.0 * (1 + 1e-2 * 0.9))

    def test_cycle_accounting_one_group_per_cycle(self, rng):
        est = ParallelQuantileEstimator(0.9, width=4)
        est.update_many(rng.uniform(0, 1, size=4000))
        assert est.cycles == 1000

    def test_partial_group_waits(self):
        est = ParallelQuantileEstimator(0.9, width=4, initial=1.0)
        est.update(2.0)
        est.update(2.0)
        assert est.estimate == pytest.approx(1.0)  # no update fired yet
        assert est.cycles == 0

    def test_flush_fires_partial_group(self):
        est = ParallelQuantileEstimator(0.9, width=4, rho=1e-2, initial=1.0)
        est.update(2.0)
        est.flush()
        assert est.estimate > 1.0
        assert est.cycles == 1

    def test_converges_to_group_mean_quantile(self, rng):
        est = ParallelQuantileEstimator(0.9, width=4, rho=5e-3, initial=0.5)
        est.update_many(rng.uniform(0, 1, size=80_000))
        # The width-4 variant estimates the quantile of 4-sample means:
        # for U(0,1) that is 0.5 + 1.282 * (1/sqrt(12))/2 ~ 0.685.
        assert est.estimate == pytest.approx(0.685, abs=0.05)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ParallelQuantileEstimator(0.9, width=0)

    def test_keeps_up_with_peak_rate(self):
        # 4 updates/cycle is exactly the paper's peak VGG-S demand.
        est = ParallelQuantileEstimator(0.9, width=4)
        n = 10_000
        est.update_many(np.linspace(0, 1, n))
        assert est.cycles == math.ceil(n / 4)
