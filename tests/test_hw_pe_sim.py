"""Tests for the behavioural PE-array simulator, validating the
analytical latency model's assumptions on a real sparse convolution."""

import numpy as np
import pytest

from repro.hw.config import ArchConfig
from repro.hw.pe import PEArraySimulator
from repro.nn.functional import conv2d


@pytest.fixture
def tiny_arch():
    return ArchConfig(name="tiny", pe_rows=4, pe_cols=4)


class TestPEArraySimulator:
    def test_result_matches_dense_conv(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(6, 3, 8, 8))
        w = rng.normal(size=(8, 3, 3, 3))
        w[rng.uniform(size=w.shape) > 0.3] = 0.0
        y, _ = sim.run_conv_kn(x, w, padding=1)
        ref, _ = conv2d(x, w, padding=1)
        np.testing.assert_allclose(y, ref)

    def test_cycles_are_max_over_pes(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(4, 2, 4, 4))
        w = np.zeros((4, 2, 3, 3))
        w[0] = 1.0  # only output channel 0 has work
        _, stats = sim.run_conv_kn(x, w, padding=1)
        # One working set; slowest PE does nnz(W[0]) * P * Q MACs.
        assert stats.working_sets == 1
        assert stats.cycles == 18 * 16

    def test_dense_utilization_high(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(4, 2, 4, 4))
        w = rng.normal(size=(4, 2, 3, 3))
        _, stats = sim.run_conv_kn(x, w, padding=1)
        assert stats.utilization == pytest.approx(1.0)

    def test_sparse_imbalance_lowers_utilization(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(4, 4, 4, 4))
        w = rng.normal(size=(4, 4, 3, 3))
        w[rng.uniform(size=w.shape) > 0.2] = 0.0
        _, stats = sim.run_conv_kn(x, w, padding=1)
        assert stats.utilization < 1.0

    def test_macs_count_skips_zeros(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(4, 2, 4, 4))
        w = rng.normal(size=(4, 2, 3, 3))
        w[rng.uniform(size=w.shape) > 0.5] = 0.0
        _, stats = sim.run_conv_kn(x, w, padding=1)
        expected = np.count_nonzero(w) * 16 * 4  # nnz * P*Q * N
        assert stats.macs == expected

    def test_multiple_working_sets(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(8, 2, 4, 4))  # N=8 -> 2 column tiles
        w = rng.normal(size=(8, 2, 3, 3))  # K=8 -> 2 row tiles
        _, stats = sim.run_conv_kn(x, w, padding=1)
        assert stats.working_sets == 4

    def test_imbalance_overheads_shape(self, tiny_arch, rng):
        sim = PEArraySimulator(tiny_arch)
        x = rng.normal(size=(4, 2, 4, 4))
        w = rng.normal(size=(4, 2, 3, 3))
        w[rng.uniform(size=w.shape) > 0.4] = 0.0
        _, stats = sim.run_conv_kn(x, w, padding=1)
        overheads = sim.imbalance_overheads(stats)
        assert overheads.shape == (stats.working_sets,)
        assert (overheads >= 0).all()

    def test_analytical_model_agrees_with_simulator(self, rng):
        """Cross-validation: the analytical KN latency equals the
        behavioural simulator's cycles when fed the measured per-channel
        non-zero counts (same max-per-set accounting)."""
        arch = ArchConfig(name="t", pe_rows=4, pe_cols=4)
        sim = PEArraySimulator(arch)
        x = rng.normal(size=(4, 3, 6, 6))
        w = rng.normal(size=(8, 3, 3, 3))
        w[rng.uniform(size=w.shape) > 0.3] = 0.0
        _, stats = sim.run_conv_kn(x, w, padding=1)
        nnz_per_k = np.count_nonzero(w.reshape(8, -1), axis=1)
        p = q = 6
        expected = sum(
            nnz_per_k[k0 : k0 + 4].max() * p * q
            for k0 in range(0, 8, 4)
        )  # one N tile (N=4 == cols)
        assert stats.cycles == expected
