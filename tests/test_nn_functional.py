"""Gradient checks and semantics tests for the substrate kernels."""

import numpy as np
import pytest

from repro.nn import functional as F
from tests.conftest import numeric_gradient


class TestConvForward:
    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        y, _ = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(y, x)

    def test_output_shape_stride(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        y, _ = F.conv2d(x, w, stride=2, padding=1)
        assert y.shape == (2, 4, 4, 4)

    def test_matches_naive_loop(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        y, _ = F.conv2d(x, w, padding=0)
        # Naive seven-loop reference (Algorithm 1).
        n_, c_, h_, w_ = x.shape
        k_ = w.shape[0]
        p_ = h_ - 2
        q_ = w_ - 2
        ref = np.zeros((n_, k_, p_, q_))
        for n in range(n_):
            for k in range(k_):
                for p in range(p_):
                    for q in range(q_):
                        for c in range(c_):
                            for r in range(3):
                                for s in range(3):
                                    ref[n, k, p, q] += (
                                        w[k, c, r, s] * x[n, c, p + r, q + s]
                                    )
        np.testing.assert_allclose(y, ref, atol=1e-10)

    def test_grouped_conv_blocks_channels(self, rng):
        x = rng.normal(size=(1, 4, 6, 6))
        w = rng.normal(size=(4, 2, 3, 3))
        y, _ = F.conv2d(x, w, padding=1, groups=2)
        # Group 0 outputs must ignore channels 2-3.
        x2 = x.copy()
        x2[:, 2:] = 0.0
        y2, _ = F.conv2d(x2, w, padding=1, groups=2)
        np.testing.assert_allclose(y[:, :2], y2[:, :2])

    def test_depthwise_conv(self, rng):
        x = rng.normal(size=(2, 6, 4, 4))
        w = rng.normal(size=(6, 1, 3, 3))
        y, _ = F.conv2d(x, w, padding=1, groups=6)
        assert y.shape == (2, 6, 4, 4)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = np.zeros((3, 2, 1, 1))
        bias = np.array([1.0, -2.0, 3.0])
        y, _ = F.conv2d(x, w, bias)
        np.testing.assert_allclose(y[0, 0], 1.0)
        np.testing.assert_allclose(y[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestConvBackward:
    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 1, 1), (2, 1, 1), (1, 0, 1), (1, 1, 2), (2, 1, 4),
    ])
    def test_gradients_match_numeric(self, rng, stride, padding, groups):
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 4 // groups, 3, 3))
        y, cache = F.conv2d(x, w, stride=stride, padding=padding,
                            groups=groups)
        dy = rng.normal(size=y.shape)

        def loss():
            out, _ = F.conv2d(x, w, stride=stride, padding=padding,
                              groups=groups)
            return float((out * dy).sum())

        dx, dw, _ = F.conv2d_backward(dy, cache)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numeric_gradient(loss, w), atol=1e-6)

    def test_bias_gradient(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        y, cache = F.conv2d(x, w, b, padding=1)
        dy = rng.normal(size=y.shape)
        _, _, db = F.conv2d_backward(dy, cache)
        np.testing.assert_allclose(db, dy.sum(axis=(0, 2, 3)))

    def test_skip_dx_for_first_layer(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        y, cache = F.conv2d(x, w, padding=1)
        dx, dw, _ = F.conv2d_backward(np.ones_like(y), cache, need_dx=False)
        assert dx is None
        assert dw.shape == w.shape


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        y, _ = F.linear(x, w, b)
        np.testing.assert_allclose(y, x @ w.T + b)

    def test_gradients_match_numeric(self, rng):
        x = rng.normal(size=(3, 5))
        w = rng.normal(size=(4, 5))
        y, cache = F.linear(x, w)
        dy = rng.normal(size=y.shape)

        def loss():
            out, _ = F.linear(x, w)
            return float((out * dy).sum())

        dx, dw, _ = F.linear_backward(dy, w, cache)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-7)
        np.testing.assert_allclose(dw, numeric_gradient(loss, w), atol=1e-7)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        y, _ = F.batchnorm2d(
            x, np.ones(4), np.zeros(4), np.zeros(4), np.ones(4),
            training=True,
        )
        assert abs(y.mean()) < 1e-7
        assert y.std() == pytest.approx(1.0, abs=1e-3)

    def test_running_stats_updated(self, rng):
        x = rng.normal(2.0, 1.0, size=(16, 2, 4, 4))
        rm, rv = np.zeros(2), np.ones(2)
        F.batchnorm2d(x, np.ones(2), np.zeros(2), rm, rv, training=True,
                      momentum=0.5)
        assert rm.mean() == pytest.approx(1.0, abs=0.2)

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rm, rv = np.full(2, 5.0), np.full(2, 4.0)
        y, cache = F.batchnorm2d(
            x, np.ones(2), np.zeros(2), rm, rv, training=False
        )
        assert cache is None
        np.testing.assert_allclose(
            y, (x - 5.0) / np.sqrt(4.0 + 1e-5), rtol=1e-6
        )

    def test_gradients_match_numeric(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        gamma = rng.normal(size=2) + 1.0
        beta = rng.normal(size=2)
        y, cache = F.batchnorm2d(
            x, gamma, beta, np.zeros(2), np.ones(2), training=True
        )
        dy = rng.normal(size=y.shape)

        def loss():
            out, _ = F.batchnorm2d(
                x, gamma, beta, np.zeros(2), np.ones(2), training=True
            )
            return float((out * dy).sum())

        dx, dgamma, dbeta = F.batchnorm2d_backward(dy, cache)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-6)
        np.testing.assert_allclose(
            dgamma, numeric_gradient(loss, gamma), atol=1e-6
        )
        np.testing.assert_allclose(
            dbeta, numeric_gradient(loss, beta), atol=1e-6
        )

    def test_dense_gradient_from_sparse_upstream(self, rng):
        """Section II-B: batch norm destroys dL/dy sparsity."""
        x = rng.normal(size=(8, 2, 4, 4))
        y, cache = F.batchnorm2d(
            x, np.ones(2), np.zeros(2), np.zeros(2), np.ones(2),
            training=True,
        )
        dy = np.zeros_like(y)
        dy[0, 0, 0, 0] = 1.0  # extremely sparse upstream gradient
        dx, _, _ = F.batchnorm2d_backward(dy, cache)
        # Normalization couples every position of the touched channel:
        # one non-zero in dL/dy densifies that whole channel of dL/dx.
        channel0 = dx[:, 0]
        assert np.count_nonzero(channel0) == channel0.size


class TestPoolingAndActivations:
    def test_maxpool_selects_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d(x, 2)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        y, cache = F.maxpool2d(x, 2)
        dy = rng.normal(size=y.shape)

        def loss():
            out, _ = F.maxpool2d(x, 2)
            return float((out * dy).sum())

        dx = F.maxpool2d_backward(dy, cache)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-7)

    def test_maxpool_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            F.maxpool2d(rng.normal(size=(1, 1, 5, 5)), 2)

    def test_relu_masks_negatives(self):
        x = np.array([[-1.0, 2.0, -3.0, 0.5]])
        y, mask = F.relu(x)
        np.testing.assert_allclose(y, [[0.0, 2.0, 0.0, 0.5]])
        assert mask.mean() == 0.5

    def test_relu_backward(self):
        x = np.array([-1.0, 1.0])
        _, mask = F.relu(x)
        np.testing.assert_allclose(
            F.relu_backward(np.array([3.0, 3.0]), mask), [0.0, 3.0]
        )

    def test_global_avgpool_and_backward(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        y, shape = F.global_avgpool(x)
        np.testing.assert_allclose(y, x.mean(axis=(2, 3)))
        dx = F.global_avgpool_backward(np.ones_like(y), shape)
        np.testing.assert_allclose(dx, 1.0 / 16.0)


class TestLoss:
    def test_softmax_normalizes(self, rng):
        probs = F.softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_with_large_logits(self):
        probs = F.softmax(np.array([[1e4, 1e4 - 1.0]]))
        assert np.isfinite(probs).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = F.cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_numeric(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])

        def loss():
            value, _ = F.cross_entropy(logits, labels)
            return value

        _, dlogits = F.cross_entropy(logits.copy(), labels)
        np.testing.assert_allclose(
            dlogits, numeric_gradient(loss, logits), atol=1e-7
        )

    def test_conv_output_size_errors_on_collapse(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)
