"""Cross-process integration tests for :mod:`repro.obs`.

The telemetry contract the PR pins end-to-end:

* pool workers ship metric deltas back to the parent (the cache-stats
  protocol generalized), so merged counters reconcile with the sum of
  per-worker contributions;
* forked workers flush their spans to per-pid JSONL files that merge
  into one valid Chrome trace, parented across the process boundary;
* a serve session exposes a merged ``metrics`` section in ``/stats``
  and exports its trace at shutdown;
* result payloads are bit-identical with telemetry on and off;
* a quarantined cache entry is counted, logged, and warned about.
"""

import json
import logging

import pytest

from repro.api.config import RuntimeConfig, config_scope
from repro.api.envelope import evaluate_requests, point_request
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve import Client, Server
from repro.sweep import SweepSpec, run_sweep
from repro.sweep import evaluators as ev
from repro.sweep.cache import ResultCache
from repro.sweep.spec import Axis, canonical_json


def _counting_probe(*, seed, x, **_):
    """Module-level (picklable) evaluator that bumps a worker-side
    counter — the delta must come home through the pool protocol."""
    _metrics.inc("obs.itest.worker_points")
    return {"y": x * 2, "seed": seed}


@pytest.fixture
def counting_evaluator():
    ev.register("obs-count", version="1")(_counting_probe)
    try:
        yield
    finally:
        ev._REGISTRY.pop("obs-count", None)


def count_spec(n=4):
    return SweepSpec(
        name="obs-count-grid",
        evaluator="obs-count",
        axes=(Axis("x", tuple(range(n))),),
        base_seed=3,
    )


class TestSweepMetricsReconcile:
    def test_worker_deltas_merge_into_run_metrics(
        self, counting_evaluator
    ):
        spec = count_spec(4)
        result = run_sweep(
            spec,
            executor="process",
            workers=2,
            config=RuntimeConfig(metrics=True),
        )
        counters = result.metrics["counters"]
        # The parent counted the points it finished; the workers each
        # counted the points they ran.  Both views must agree.
        assert counters["sweep.points_evaluated"] == spec.n_points
        assert counters["obs.itest.worker_points"] == spec.n_points
        hist = result.metrics["histograms"]["sweep.point_wall_s"]
        assert hist["count"] == spec.n_points
        # ...and the metrics section rides home in the record payload.
        record = result.to_record()
        assert (
            record["series"]["metrics"]["counters"][
                "obs.itest.worker_points"
            ]
            == spec.n_points
        )

    def test_serial_run_counts_match_process_run(self, counting_evaluator):
        spec = count_spec(3)
        serial = run_sweep(
            spec, executor="serial", config=RuntimeConfig(metrics=True)
        )
        pooled = run_sweep(
            spec,
            executor="process",
            workers=2,
            config=RuntimeConfig(metrics=True),
        )
        key = "obs.itest.worker_points"
        assert (
            serial.metrics["counters"][key]
            == pooled.metrics["counters"][key]
            == spec.n_points
        )


class TestSweepTraceAcrossProcesses:
    def test_worker_spans_flush_and_parent_across_the_fork(
        self, tmp_path
    ):
        _trace.get_buffer().clear()
        config = RuntimeConfig(trace=True, trace_dir=str(tmp_path))
        spec = SweepSpec(
            name="traced-grid",
            evaluator="echo",
            axes=(Axis("x", (1, 2, 3, 4)),),
        )
        with config_scope(config):
            run_sweep(spec, executor="process", workers=2, config=config)
            parent_file = _trace.flush()
        assert parent_file is not None
        worker_files = [
            p for p in tmp_path.glob("spans-*.jsonl") if p != parent_file
        ]
        assert worker_files
        # The fork hook cleared inherited spans: worker files hold the
        # workers' own sweep.point spans, never the parent's sweep.run.
        for path in worker_files:
            names = {s["name"] for s in _trace.load_spans(path)}
            assert names == {"sweep.point"}
        spans = _trace.load_spans(tmp_path)
        run_spans = [s for s in spans if s["name"] == "sweep.run"]
        points = [s for s in spans if s["name"] == "sweep.point"]
        assert len(run_spans) == 1 and len(points) == spec.n_points
        # Cross-process parentage: every worker span hangs off the
        # parent's sweep.run span, and the merged trace validates.
        assert {s["parent_id"] for s in points} == {
            run_spans[0]["span_id"]
        }
        payload = _trace.chrome_trace(spans)
        assert (
            _trace.validate_chrome_trace(payload, require_nesting=True)
            == []
        )
        _trace.get_buffer().clear()


class TestTelemetryParity:
    def test_sweep_values_identical_with_telemetry_on(self, tmp_path):
        spec = SweepSpec(
            name="parity-grid",
            evaluator="echo",
            axes=(Axis("x", (1, 2, 3)), Axis("mode", ("a", "b"))),
            base_seed=7,
        )
        off = run_sweep(spec, config=RuntimeConfig())
        on_config = RuntimeConfig(
            trace=True, trace_dir=str(tmp_path), metrics=True
        )
        with config_scope(on_config):
            on = run_sweep(spec, config=on_config)
        for a, b in zip(off.points, on.points):
            assert a.params == b.params
            assert canonical_json(dict(a.values)) == canonical_json(
                dict(b.values)
            )
        # Telemetry is additive: off-runs carry no metrics section.
        assert off.metrics == {}
        assert "metrics" not in off.to_record()["series"]
        assert on.metrics["counters"]["sweep.points_evaluated"] == 6
        _trace.get_buffer().clear()

    def test_served_results_identical_with_telemetry_on(self, tmp_path):
        requests = [point_request("echo", {"x": i}, seed=2) for i in (1, 2)]
        off_config = RuntimeConfig(cache_root=str(tmp_path / "off"))
        on_config = RuntimeConfig(
            cache_root=str(tmp_path / "on"), trace=True, metrics=True
        )
        off_results, _ = evaluate_requests(requests, config=off_config)
        on_results, accounting = evaluate_requests(
            requests, config=on_config
        )
        for a, b in zip(off_results, on_results):
            assert a.canonical() == b.canonical()
        _trace.get_buffer().clear()


class TestServeSessionTelemetry:
    def test_two_client_session_reconciles_and_exports_trace(
        self, tmp_path
    ):
        config = RuntimeConfig(
            cache_root=str(tmp_path), trace=True, metrics=True
        )
        points = [{"x": i} for i in (1, 2, 3)]
        requests = [point_request("echo", p, seed=4) for p in points]
        with Server(config, workers=2) as server:
            batches = []
            for _ in range(2):  # two sequential client connections
                with Client(server.socket_path) as client:
                    batches.append(
                        [client.submit(r) for r in requests]
                    )
            stats = server.stats()

        # Both clients saw identical, successful results.
        for first, second in zip(*batches):
            assert first.ok and second.ok
            assert first.canonical() == second.canonical()
        counters = stats["metrics"]["counters"]
        # Session-level accounting: 6 submissions, 3 unique.
        assert counters["serve.jobs.submitted"] == 6
        assert counters["serve.jobs.completed"] == 6
        assert counters["serve.jobs.evaluated"] == 3
        assert (
            counters["serve.jobs.cache_hits"]
            + counters["serve.jobs.evaluated"]
            == counters["serve.jobs.completed"]
        )
        # Worker deltas came home: the pool evaluated exactly the
        # unique points and stored each one in the sweep cache.
        assert counters["sweep.points_evaluated"] == 3
        assert counters["cache.stores"] == 3
        assert "serve.queue_depth" in stats["metrics"]["gauges"]

        # Shutdown exported a merged, loadable Chrome trace.
        trace_path = tmp_path / "traces" / "trace.json"
        assert trace_path.exists()
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert _trace.validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "serve.job" in names
        assert "serve.worker" in names


class TestCacheQuarantineTelemetry:
    def test_corrupt_entry_counts_logs_and_warns(self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        key = {"evaluator": "echo", "params": {"x": 1}, "seed": 0}
        path = cache.put(key, {"y": 1.0})
        path.write_text("{ definitely not json", encoding="utf-8")
        with config_scope(metrics=True):
            before = _metrics.registry().snapshot()
            with caplog.at_level(
                logging.WARNING, logger="repro.sweep.cache"
            ):
                with pytest.warns(RuntimeWarning, match="quarantined"):
                    assert cache.get(key) is None
            delta = _metrics.registry().diff(before).as_dict()
        assert delta["counters"]["cache.corrupt"] == 1
        assert cache.stats.corrupt == 1
        quarantined = [
            r for r in caplog.records if "cache.quarantine" in r.message
        ]
        assert quarantined and "undecodable JSON" in quarantined[0].message
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()
