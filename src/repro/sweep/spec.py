"""Declarative sweep specifications.

A :class:`SweepSpec` names an evaluator (see
:mod:`repro.sweep.evaluators`) and spans a grid over named axes —
architecture, fabric, mapping, sparsity, network, anything the
evaluator accepts as a keyword argument.  The spec expands to an
ordered list of :class:`SweepPoint` objects, each carrying its full
parameter assignment plus a deterministic seed, so a sweep is fully
reproducible from the spec alone and every point is independently
cacheable and schedulable.

Not every sweep is a grid: the design-space explorer
(:mod:`repro.explore`) proposes arbitrary candidate lists — random
samples, greedy neighbourhood moves — so :meth:`SweepSpec.explicit`
builds a spec from an explicit sequence of parameter assignments
instead of axes.  Explicit specs run through the same runner and hit
the same cache entries a grid spec would for identical parameters.

Axis values must be JSON-canonicalizable (numbers, strings, booleans,
``None``, and nested lists/tuples/dicts thereof): the canonical JSON
encoding of a point is both its identity for the result cache and the
input to its derived seed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Axis",
    "SweepPoint",
    "SweepSpec",
    "canonical_json",
    "point_seed",
]


def canonical_json(value: Any) -> str:
    """Stable JSON encoding: sorted keys, tuples as lists, no spaces.

    Raises ``TypeError`` for values that cannot round-trip through
    JSON (arbitrary objects would make cache keys unstable across
    processes).
    """

    def normalize(v: Any) -> Any:
        if isinstance(v, Mapping):
            return {str(k): normalize(v[k]) for k in v}
        if isinstance(v, (list, tuple)):
            return [normalize(x) for x in v]
        if isinstance(v, bool) or v is None or isinstance(v, (int, str)):
            return v
        if isinstance(v, float):
            return v
        raise TypeError(
            f"sweep axis values must be JSON-serializable primitives; "
            f"got {type(v).__name__}: {v!r}"
        )

    return json.dumps(normalize(value), sort_keys=True, separators=(",", ":"))


def point_seed(base_seed: int, params: Mapping[str, Any]) -> int:
    """Deterministic per-point seed derived from the parameter values.

    Stable across processes and Python versions (unlike ``hash()``):
    the SHA-256 of the canonical parameter JSON, folded with the
    sweep's base seed into a 31-bit integer.
    """
    digest = hashlib.sha256(canonical_json(params).encode()).digest()
    derived = int.from_bytes(digest[:8], "big")
    return (derived ^ (base_seed * 0x9E3779B9)) % (2**31)


@dataclass(frozen=True)
class Axis:
    """One named dimension of a sweep grid."""

    name: str
    values: tuple[Any, ...]

    def __init__(self, name: str, values: Sequence[Any]) -> None:
        if not name:
            raise ValueError("axis name must be non-empty")
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        for v in values:
            canonical_json(v)  # validate early, with a clear message
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-assigned grid point of a sweep."""

    index: int
    params: Mapping[str, Any]
    seed: int

    def key_material(self, evaluator: str, version: str) -> dict[str, Any]:
        """Everything that determines this point's result."""
        return {
            "evaluator": evaluator,
            "version": version,
            "params": dict(self.params),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of evaluator invocations.

    ``axes`` span the grid (cartesian product, in axis order);
    ``fixed`` parameters are passed to every point unchanged.  Seeds
    are either the ``base_seed`` applied verbatim to every point
    (``seed_mode="fixed"`` — what the paper-figure sweeps use so a
    whole figure shares one seed) or derived per point from the
    parameter values (``seed_mode="derived"`` — what Monte-Carlo style
    sweeps want so no two points share a random stream).

    ``version`` is the code-version key folded into every cache entry;
    bump it (or the evaluator's registered version) to invalidate
    stale results after a model change.

    ``explicit_points`` replaces the axis grid with a literal sequence
    of parameter assignments (see :meth:`explicit`); a spec carries
    either axes or explicit points, never both.
    """

    name: str
    evaluator: str
    axes: tuple[Axis, ...] = ()
    fixed: Mapping[str, Any] = field(default_factory=dict)
    base_seed: int = 0
    seed_mode: str = "fixed"
    version: str = ""
    explicit_points: tuple[Mapping[str, Any], ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if not self.evaluator:
            raise ValueError("sweep evaluator must be non-empty")
        if self.seed_mode not in ("fixed", "derived"):
            raise ValueError(
                f"seed_mode must be 'fixed' or 'derived', "
                f"got {self.seed_mode!r}"
            )
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        overlap = set(names) & set(self.fixed)
        if overlap:
            raise ValueError(
                f"parameters {sorted(overlap)} appear both as axes "
                "and as fixed values"
            )
        canonical_json(dict(self.fixed))
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "fixed", dict(self.fixed))
        if self.explicit_points is not None:
            if self.axes:
                raise ValueError(
                    "a spec carries either axes or explicit_points, not both"
                )
            points = tuple(dict(p) for p in self.explicit_points)
            for params in points:
                canonical_json(params)
                overlap = set(params) & set(self.fixed)
                if overlap:
                    raise ValueError(
                        f"parameters {sorted(overlap)} appear both in an "
                        "explicit point and as fixed values"
                    )
            object.__setattr__(self, "explicit_points", points)

    @classmethod
    def grid(
        cls,
        name: str,
        evaluator: str,
        axes: Mapping[str, Sequence[Any]],
        **kwargs: Any,
    ) -> "SweepSpec":
        """Convenience constructor from an ``{axis: values}`` mapping."""
        return cls(
            name=name,
            evaluator=evaluator,
            axes=tuple(Axis(k, v) for k, v in axes.items()),
            **kwargs,
        )

    @classmethod
    def explicit(
        cls,
        name: str,
        evaluator: str,
        points: Sequence[Mapping[str, Any]],
        **kwargs: Any,
    ) -> "SweepSpec":
        """Spec from a literal candidate list instead of an axis grid.

        The explorer's search strategies emit these: each entry is one
        full parameter assignment (merged over ``fixed``), evaluated
        in list order.  With ``seed_mode="derived"`` an identical
        assignment gets an identical seed no matter which spec — or
        which search strategy — proposed it, so explicit specs share
        cache entries with grid specs point-for-point.
        """
        return cls(
            name=name,
            evaluator=evaluator,
            explicit_points=tuple(dict(p) for p in points),
            **kwargs,
        )

    @property
    def n_points(self) -> int:
        if self.explicit_points is not None:
            return len(self.explicit_points)
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def _seed_for(self, params: Mapping[str, Any]) -> int:
        if self.seed_mode == "fixed":
            return self.base_seed
        return point_seed(self.base_seed, params)

    def points(self) -> Iterator[SweepPoint]:
        """The points, in deterministic (row-major / list) order."""
        if self.explicit_points is not None:
            for index, assignment in enumerate(self.explicit_points):
                params = dict(self.fixed)
                params.update(assignment)
                yield SweepPoint(
                    index=index, params=params, seed=self._seed_for(params)
                )
            return
        names = [a.name for a in self.axes]
        for index, combo in enumerate(
            itertools.product(*(a.values for a in self.axes))
        ):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            yield SweepPoint(
                index=index, params=params, seed=self._seed_for(params)
            )
