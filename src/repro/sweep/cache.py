"""Content-addressed on-disk cache for sweep point results.

Each entry is keyed by the SHA-256 of the canonical JSON of everything
that determines the result: evaluator name, code-version key, the
point's full parameter assignment, and its seed.  Changing any axis
value, fixed parameter, seed, or version key therefore addresses a
different entry — invalidation is free and stale hits are impossible
(up to honesty of the version key).

Entries are plain JSON files under ``<root>/<aa>/<digest>.json``
(fan-out over the first byte keeps directories small), written
atomically via a temp-file rename, which also makes the cache safe
for concurrent multi-process writers: a reader only ever sees a
complete record — the old one or the new one, never a torn mix.

Every record additionally carries a ``checksum`` over its canonical
key+values JSON.  A record that fails to decode or to verify — bit
rot, a torn write on a non-atomic filesystem, a partial copy — is
*quarantined*: renamed to ``<digest>.json.corrupt`` (preserved for
forensics, invisible to future lookups), counted in
:attr:`CacheStats.corrupt`, and surfaced as a ``RuntimeWarning``
rather than a silent miss.  The caller then recomputes and the next
write repopulates the entry; re-running a sweep after any interrupt
or corruption resumes from whatever survives intact.

The deterministic chaos suite exercises both properties through the
:mod:`repro.reliability.faults` hooks in :meth:`ResultCache.get` /
:meth:`ResultCache.put` (no-ops unless the active
:class:`~repro.api.config.RuntimeConfig` carries a fault plan).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger, log_event
from repro.reliability import faults as _faults
from repro.sweep.spec import canonical_json

__all__ = ["CacheStats", "ResultCache", "cache_key", "record_checksum"]

_logger = get_logger("repro.sweep.cache")


def cache_key(key_material: Mapping[str, Any]) -> str:
    """Hex digest addressing one result record."""
    return hashlib.sha256(canonical_json(key_material).encode()).hexdigest()


def record_checksum(key: Mapping[str, Any], values: Mapping[str, Any]) -> str:
    """Integrity checksum over one record's canonical key+values JSON."""
    body = canonical_json({"key": dict(key), "values": dict(values)})
    return hashlib.sha256(body.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store/quarantine counters for one cache instance.

    Counters are per-instance (and therefore per-process): a pool
    worker's hits land in *its* cache object, not the parent's.
    :meth:`snapshot` / :meth:`diff` / :meth:`merge` exist so
    multi-process callers — the sweep runner, the evaluation service —
    can ship per-run deltas across the process boundary and aggregate
    them instead of under-reporting hit rates.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    @classmethod
    def from_dict(cls, counters: Mapping[str, Any]) -> "CacheStats":
        """Rebuild stats from an :meth:`as_dict` payload (unknown keys
        are ignored so newer writers stay readable)."""
        return cls(
            hits=int(counters.get("hits", 0)),
            misses=int(counters.get("misses", 0)),
            stores=int(counters.get("stores", 0)),
            corrupt=int(counters.get("corrupt", 0)),
        )

    def snapshot(self) -> "CacheStats":
        """An immutable-by-convention copy of the current counters."""
        return CacheStats(**self.as_dict())

    def diff(self, earlier: "CacheStats | None") -> "CacheStats":
        """The counter delta since an earlier :meth:`snapshot`
        (``None`` means "since zero": a copy of the current values)."""
        if earlier is None:
            return self.snapshot()
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            corrupt=self.corrupt - earlier.corrupt,
        )

    def merge(self, other: "CacheStats | Mapping[str, Any]") -> "CacheStats":
        """Add another instance's (or worker's ``as_dict``) counters
        into this one, in place; returns ``self`` for chaining."""
        counters = (
            other.as_dict() if isinstance(other, CacheStats) else other
        )
        self.hits += int(counters.get("hits", 0))
        self.misses += int(counters.get("misses", 0))
        self.stores += int(counters.get("stores", 0))
        self.corrupt += int(counters.get("corrupt", 0))
        return self

    def hit_rate(self) -> float:
        """Hits over lookups (1.0 when no lookups happened yet)."""
        lookups = self.hits + self.misses
        return 1.0 if lookups == 0 else self.hits / lookups


class ResultCache:
    """Content-addressed JSON result store (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, key_material: Mapping[str, Any]) -> dict[str, Any] | None:
        """The stored record for this key, or ``None`` on a miss.

        Undecodable or checksum-failing records are quarantined (see
        module docstring) and count as misses — the re-run recomputes
        and overwrites them.
        """
        digest = cache_key(key_material)
        path = self._path(digest)
        _faults.maybe_slow_io(digest)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            _metrics.inc("cache.misses")
            return None
        except json.JSONDecodeError:
            self._quarantine(path, "undecodable JSON")
            self.stats.misses += 1
            _metrics.inc("cache.misses")
            return None
        if not isinstance(record, dict) or "values" not in record:
            self._quarantine(path, "malformed record")
            self.stats.misses += 1
            _metrics.inc("cache.misses")
            return None
        stored = record.get("checksum")
        if stored is not None:
            try:
                expected = record_checksum(
                    record.get("key", {}), record["values"]
                )
            except (TypeError, AttributeError):
                expected = None
            if stored != expected:
                self._quarantine(path, "checksum mismatch")
                self.stats.misses += 1
                return None
        # Records written before checksums existed carry none; they
        # stay readable (decode errors above still catch torn JSON).
        self.stats.hits += 1
        _metrics.inc("cache.hits")
        return record

    def put(
        self, key_material: Mapping[str, Any], values: Mapping[str, Any]
    ) -> Path:
        """Store a result; returns the path written.

        The record keeps the key material alongside the values so cache
        directories are self-describing and auditable, plus a checksum
        over both so at-rest corruption is detected on read.
        """
        digest = cache_key(key_material)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": dict(key_material),
                "values": dict(values),
                "checksum": record_checksum(key_material, values),
            },
            indent=2,
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload + "\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        _faults.maybe_corrupt_file(path, digest)
        _faults.maybe_slow_io(digest)
        self.stats.stores += 1
        _metrics.inc("cache.stores")
        return path

    def quarantine(self, key_material: Mapping[str, Any]) -> bool:
        """Quarantine one entry by key (callers that detect semantic
        corruption the checksum cannot — e.g. a record whose decoded
        values fail domain validation).  Returns whether an entry was
        moved."""
        path = self._path(cache_key(key_material))
        if not path.exists():
            return False
        self._quarantine(path, "caller-reported corruption")
        return True

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad record aside as ``<name>.corrupt`` and count it."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # A concurrent reader already moved (or a writer replaced)
            # it; either way the bad bytes are gone from the lookup path.
            pass
        self.stats.corrupt += 1
        _metrics.inc("cache.corrupt")
        log_event(
            _logger,
            "cache.quarantine",
            tier="result-cache",
            path=path,
            reason=reason,
        )
        warnings.warn(
            f"quarantined corrupt cache entry ({reason}): {path} -> "
            f"{target.name}",
            RuntimeWarning,
            stacklevel=3,
        )

    def __contains__(self, key_material: Mapping[str, Any]) -> bool:
        return self._path(cache_key(key_material)).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def corrupt_entries(self) -> list[Path]:
        """Quarantined records currently on disk (forensics helper)."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json.corrupt"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed
