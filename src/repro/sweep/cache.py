"""Content-addressed on-disk cache for sweep point results.

Each entry is keyed by the SHA-256 of the canonical JSON of everything
that determines the result: evaluator name, code-version key, the
point's full parameter assignment, and its seed.  Changing any axis
value, fixed parameter, seed, or version key therefore addresses a
different entry — invalidation is free and stale hits are impossible
(up to honesty of the version key).

Entries are plain JSON files under ``<root>/<aa>/<digest>.json``
(fan-out over the first byte keeps directories small), written
atomically via a temp-file rename so an interrupted sweep never leaves
a truncated record behind; re-running a sweep after an interrupt
resumes from whatever completed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.sweep.spec import canonical_json

__all__ = ["CacheStats", "ResultCache", "cache_key"]


def cache_key(key_material: Mapping[str, Any]) -> str:
    """Hex digest addressing one result record."""
    return hashlib.sha256(canonical_json(key_material).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Content-addressed JSON result store (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, key_material: Mapping[str, Any]) -> dict[str, Any] | None:
        """The stored record for this key, or ``None`` on a miss."""
        path = self._path(cache_key(key_material))
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except json.JSONDecodeError:
            # A corrupt record (e.g. torn write on an old filesystem)
            # counts as a miss and will be overwritten by the re-run.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(
        self, key_material: Mapping[str, Any], values: Mapping[str, Any]
    ) -> Path:
        """Store a result; returns the path written.

        The record keeps the key material alongside the values so cache
        directories are self-describing and auditable.
        """
        digest = cache_key(key_material)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "key": dict(key_material),
                "values": dict(values),
            },
            indent=2,
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload + "\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.stats.stores += 1
        return path

    def __contains__(self, key_material: Mapping[str, Any]) -> bool:
        return self._path(cache_key(key_material)).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed
