"""Parallel sweep/orchestration engine for grids of evaluations.

Every headline experiment in the paper — the Figure 19 mapping sweep,
the Table 2 sparsity grid, the Figure 20 scalability curves — is a
grid of independent evaluator calls.  This package gives them one
shared engine instead of bespoke nested loops:

* :class:`SweepSpec` / :class:`Axis` — a declarative grid over named
  axes (arch, fabric, mapping, sparsity, ...) with deterministic
  per-point seeds; :meth:`SweepSpec.explicit` builds the same thing
  from a literal candidate list (how the design-space explorer of
  :mod:`repro.explore` rides this engine);
* :mod:`repro.sweep.evaluators` — the registry of named evaluators a
  spec fans out over (``simulate``, ``design-point``, ``train-mini``,
  ``fabric-cost``);
* :class:`ResultCache` — a content-addressed on-disk JSON cache, so
  re-runs and interrupted sweeps are near-instant to finish;
* :class:`SweepRunner` / :func:`run_sweep` — serial or
  process-parallel execution, returning :class:`SweepResult` rows
  that export through :mod:`repro.report`.

Quick use::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.grid(
        "mapping-sweep", "simulate",
        {"network": ["vgg-s"], "mapping": ["PQ", "CK", "CN", "KN"]},
        fixed={"sparse": True}, base_seed=1,
    )
    result = run_sweep(spec, executor="process")
    best = result.best("total_cycles")
"""

from repro.sweep import evaluators as evaluators  # register built-ins
from repro.sweep.cache import CacheStats, ResultCache, cache_key
from repro.sweep.evaluators import (
    available_evaluators,
    evaluator_version,
    get_evaluator,
    register,
)
from repro.sweep.runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.sweep.spec import (
    Axis,
    SweepPoint,
    SweepSpec,
    canonical_json,
    point_seed,
)

__all__ = [
    "Axis",
    "CacheStats",
    "PointResult",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "available_evaluators",
    "cache_key",
    "canonical_json",
    "evaluator_version",
    "get_evaluator",
    "point_seed",
    "register",
    "run_sweep",
]
