"""The sweep runner: evaluate a grid, cached and with pluggable fan-out.

``run_sweep`` (or :class:`SweepRunner` for reuse across specs) walks a
:class:`SweepSpec`'s points, satisfies what it can from the
:class:`ResultCache`, and hands the misses to the configured
*executor* — a named strategy from an extensible registry:

``"serial"``
    Evaluate inline, in grid order; easiest to debug.
``"process"``
    Fan out over a ``ProcessPoolExecutor`` (``workers`` processes).
``"batched"``
    Group points that share a workload (per the evaluator's registered
    batch contract, :func:`repro.sweep.evaluators.register_batch`) and
    evaluate each group in one multi-candidate pass through the
    batched evaluation core; when several groups are pending and
    ``workers > 1``, the group chunks are submitted to a process pool
    and run concurrently.  Evaluators without a batch form — and
    singleton groups — degrade to serial evaluation, so the executor
    is always safe to select.
``"distributed"``
    A stub seam for a future remote backend; selecting it raises
    ``NotImplementedError`` at run time.

:func:`register_executor` installs additional strategies; unknown
names raise with the registered names listed.  Whatever the executor,
every completed point is written to the cache *as it finishes*, so an
interrupted sweep resumes from its last completed point and a warm
re-run touches no evaluator at all — and results always come back in
grid order.

Results come back as a :class:`SweepResult` — an ordered list of
:class:`PointResult` rows plus timing and cache statistics — with
helpers to slice, rank, and export through :mod:`repro.report`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.report.export import _jsonable as to_jsonable
from repro.report.export import experiment_record
from repro.sweep.cache import ResultCache
from repro.sweep.evaluators import (
    evaluator_version,
    get_batch_evaluator,
    get_evaluator,
)
from repro.sweep.spec import SweepPoint, SweepSpec

__all__ = [
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "available_executors",
    "register_executor",
    "run_sweep",
]


@dataclass(frozen=True)
class PointResult:
    """One evaluated (or cache-restored) grid point."""

    index: int
    params: Mapping[str, Any]
    seed: int
    values: Mapping[str, Any]
    cached: bool
    wall_time_s: float

    def row(self) -> dict[str, Any]:
        """Flat params+values record (params win on key collisions)."""
        return {**dict(self.values), **dict(self.params)}


@dataclass
class SweepResult:
    """All points of one sweep, in grid order."""

    spec: SweepSpec
    points: list[PointResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def n_cached(self) -> int:
        return sum(1 for p in self.points if p.cached)

    def rows(self) -> list[dict[str, Any]]:
        return [p.row() for p in self.points]

    def values(self, key: str) -> list[Any]:
        """One result column across the grid, in point order."""
        return [p.values[key] for p in self.points]

    def select(self, **matches: Any) -> list[PointResult]:
        """Points whose parameters equal every given value."""
        return [
            p
            for p in self.points
            if all(p.params.get(k) == v for k, v in matches.items())
        ]

    def best(self, key: str, minimize: bool = True) -> PointResult:
        """The point optimizing one scalar result column."""
        if not self.points:
            raise ValueError(f"sweep {self.spec.name!r} has no points")
        chooser = min if minimize else max
        return chooser(self.points, key=lambda p: float(p.values[key]))

    def to_record(self) -> dict[str, Any]:
        """The canonical :func:`experiment_record` payload.

        Carries whichever point source the spec used — the axis grid
        or the explicit candidate list — so the sweep is reproducible
        from the record alone.
        """
        params: dict[str, Any] = {
            "evaluator": self.spec.evaluator,
            "axes": {a.name: list(a.values) for a in self.spec.axes},
            "fixed": dict(self.spec.fixed),
            "base_seed": self.spec.base_seed,
            "seed_mode": self.spec.seed_mode,
        }
        if self.spec.explicit_points is not None:
            params["explicit_points"] = [
                dict(p) for p in self.spec.explicit_points
            ]
        return experiment_record(
            self.spec.name,
            params,
            {
                "rows": self.rows(),
                "wall_time_s": self.wall_time_s,
                "cache": dict(self.cache_stats),
            },
            notes=f"sweep over {self.spec.n_points} points",
        )

    def save(self, results_dir) -> None:
        """Persist through a :class:`repro.report.ResultsDirectory`.

        Writes the JSON record plus a flat CSV of every scalar column
        (nested per-phase dicts stay in the JSON record only).
        """
        results_dir.save_record(self.to_record())
        rows = self.rows()
        if not rows:
            return
        headers = [
            k
            for k, v in rows[0].items()
            if not isinstance(v, (dict, list, tuple))
        ]
        results_dir.save_table(
            self.spec.name,
            "points",
            headers,
            [[row.get(h) for h in headers] for row in rows],
        )


def _version_key(spec: SweepSpec) -> str:
    """The code-version component of every cache key.

    Combines the package version (global invalidation on release
    bumps), the evaluator's registered version (targeted invalidation
    when one model changes), and the spec's own override.
    """
    import repro

    parts = [f"repro={repro.__version__}",
             f"{spec.evaluator}={evaluator_version(spec.evaluator)}"]
    if spec.version:
        parts.append(f"spec={spec.version}")
    return ";".join(parts)


def _evaluate_point(
    fn: Callable[..., Mapping[str, Any]],
    params: Mapping[str, Any],
    seed: int,
    config=None,
) -> tuple[dict[str, Any], float]:
    """Worker body: run one evaluator call, timed.

    Module-level so it pickles for the process pool.  The evaluator is
    shipped as the callable itself (pickled by module+qualname), not
    looked up from the registry inside the worker: under the "spawn"
    start method a fresh worker only registers the built-ins, so a
    by-name lookup would break user-registered evaluators; unpickling
    the callable imports its defining module instead, which re-runs
    the ``@register`` decorator as a side effect.

    ``config`` — a :class:`repro.api.RuntimeConfig` — is shipped the
    same way (a plain picklable dataclass) and installed for the
    duration of the call, so pool workers share the caller's cache
    tiers and sampling mode without inheriting mutated environment
    variables.
    """
    start = time.perf_counter()
    if config is None:
        values = to_jsonable(dict(fn(seed=seed, **dict(params))))
    else:
        from repro.api.config import config_scope

        with config_scope(config):
            values = to_jsonable(dict(fn(seed=seed, **dict(params))))
    return values, time.perf_counter() - start


def _execute_serial(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"serial"`` executor: evaluate inline, in grid order."""
    for point in pending:
        values, wall = _evaluate_point(
            fn, point.params, point.seed, runner.config
        )
        finish(point, values, wall)


def _execute_process(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"process"`` executor: ``ProcessPoolExecutor`` fan-out."""
    runner._run_pool(fn, pending, finish)


def _evaluate_batch_group(
    batch_fn: Callable[[list], list],
    jobs: list[tuple[Mapping[str, Any], int]],
    config=None,
) -> tuple[list[dict], float]:
    """Worker body: one batch-evaluator call, timed.

    Module-level so it pickles for the process pool; the batch callable
    and the config ship by pickle exactly like :func:`_evaluate_point`'s
    scalar evaluator.
    """
    start = time.perf_counter()
    if config is None:
        rows = batch_fn(jobs)
    else:
        from repro.api.config import config_scope

        with config_scope(config):
            rows = batch_fn(jobs)
    return (
        [to_jsonable(dict(values)) for values in rows],
        time.perf_counter() - start,
    )


def _finish_batch_group(
    spec: SweepSpec,
    group: list[SweepPoint],
    rows: list[dict],
    elapsed: float,
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Commit one batch group's results, wall time split evenly."""
    if len(rows) != len(group):
        raise ValueError(
            f"batch evaluator for {spec.evaluator!r} returned "
            f"{len(rows)} results for {len(group)} points"
        )
    wall = elapsed / len(group)
    for point, values in zip(group, rows):
        finish(point, values, wall)


def _execute_batched(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"batched"`` executor: chunked multi-candidate passes.

    Points are grouped by the evaluator's registered batch contract
    (the parameters pinning the shared workload, plus the point seed
    when the evaluator's workload depends on it).  Each group of two
    or more runs through the batch evaluator in one pass; singleton
    groups — and evaluators with no batch form at all — fall back to
    serial evaluation.  When several groups are pending and the runner
    has workers to spare, the group chunks are submitted to a process
    pool and run concurrently (each group is still one batch pass, and
    group results are identical wherever they run).  Wall time is
    attributed evenly across a group's points, and each point's values
    are cached individually, so batched and serial runs produce
    interchangeable records.
    """
    batch = get_batch_evaluator(spec.evaluator)
    if batch is None:
        _execute_serial(runner, spec, fn, pending, finish)
        return
    groups: dict[tuple, list[SweepPoint]] = {}
    for point in pending:
        key = tuple(
            repr(point.params.get(name)) for name in batch.group_by
        )
        if batch.group_by_seed:
            key += (point.seed,)
        groups.setdefault(key, []).append(point)
    multis: list[list[SweepPoint]] = []
    for group in groups.values():
        if len(group) == 1:
            _execute_serial(runner, spec, fn, group, finish)
        else:
            multis.append(group)
    if len(multis) >= 2 and runner.workers > 1 and _picklable(batch.fn):
        _run_group_pool(runner, spec, batch.fn, multis, finish)
        return
    for group in multis:
        jobs = [(point.params, point.seed) for point in group]
        rows, elapsed = _evaluate_batch_group(
            batch.fn, jobs, runner.config
        )
        _finish_batch_group(spec, group, rows, elapsed, finish)


def _picklable(obj: Any) -> bool:
    """Whether ``obj`` survives a round trip to a pool worker.

    Locally-defined batch evaluators (tests, notebooks) don't; they
    keep the in-process path rather than failing mid-submission.
    """
    import pickle

    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_group_pool(
    runner: "SweepRunner",
    spec: SweepSpec,
    batch_fn: Callable[[list], list],
    multis: list[list[SweepPoint]],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Fan batch groups over a process pool (chunked submissions).

    Mirrors :meth:`SweepRunner._run_pool`'s failure semantics: on the
    first error, unstarted groups are cancelled, in-flight ones are
    drained with their successes committed, and the first error is
    re-raised with the cache consistent.
    """
    workers = min(runner.workers, len(multis))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _evaluate_batch_group,
                batch_fn,
                [(point.params, point.seed) for point in group],
                runner.config,
            ): group
            for group in multis
        }
        remaining = set(futures)
        first_error: BaseException | None = None
        while remaining and first_error is None:
            done, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
            for future in done:
                error = future.exception()
                if error is not None:
                    first_error = first_error or error
                    continue
                rows, elapsed = future.result()
                _finish_batch_group(
                    spec, futures[future], rows, elapsed, finish
                )
        if first_error is not None:
            in_flight = {f for f in remaining if not f.cancel()}
            for future in in_flight:
                if future.exception() is None:
                    rows, elapsed = future.result()
                    _finish_batch_group(
                        spec, futures[future], rows, elapsed, finish
                    )
            raise first_error


def _execute_distributed(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Placeholder ``"distributed"`` backend: the registration seam is
    real, the transport is not."""
    raise NotImplementedError(
        "the 'distributed' executor is a placeholder; register a real "
        "backend with repro.sweep.runner.register_executor('distributed', fn)"
    )


#: Executor registry: name -> strategy callable taking
#: ``(runner, spec, evaluator_fn, pending_points, finish)``.
_EXECUTORS: dict[str, Callable[..., None]] = {
    "serial": _execute_serial,
    "process": _execute_process,
    "batched": _execute_batched,
    "distributed": _execute_distributed,
}


def register_executor(
    name: str, execute: Callable[..., None]
) -> Callable[..., None]:
    """Register (or replace) a sweep executor strategy.

    ``execute(runner, spec, fn, pending, finish)`` must call
    ``finish(point, values, wall_seconds)`` exactly once per pending
    point (in any order — the runner re-sorts into grid order) with
    JSON-able ``values``.  The name also becomes a valid
    :class:`repro.api.RuntimeConfig` executor value.
    """
    from repro.api.config import register_known_executor

    _EXECUTORS[name] = execute
    register_known_executor(name)
    return execute


def available_executors() -> list[str]:
    """Registered executor names (built-ins plus custom backends)."""
    return sorted(_EXECUTORS)


class SweepRunner:
    """Reusable sweep executor (cache + executor policy).

    ``executor`` names a registered strategy — ``"serial"``,
    ``"process"``, ``"batched"``, the ``"distributed"`` stub, or any
    backend added via :func:`register_executor`; see the module
    docstring.  Whatever the strategy, results are returned in grid
    order.

    ``config`` — a :class:`repro.api.RuntimeConfig` — is applied around
    every evaluator call, serial, pooled, or batched: pool workers
    receive it by pickle, which is how one ``--cache-dir`` serves a
    whole parallel sweep without any environment mutation.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        executor: str = "serial",
        workers: int | None = None,
        config=None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; registered executors: "
                f"{available_executors()}"
            )
        self.cache = cache
        self.executor = executor
        self.workers = workers or os.cpu_count() or 1
        self.config = config

    def run(
        self,
        spec: SweepSpec,
        progress: Callable[[PointResult], None] | None = None,
    ) -> SweepResult:
        """Evaluate every point of ``spec``; see class docstring."""
        start = time.perf_counter()
        version = _version_key(spec)
        fn = get_evaluator(spec.evaluator)
        results: dict[int, PointResult] = {}
        pending: list[SweepPoint] = []
        for point in spec.points():
            record = (
                self.cache.get(point.key_material(spec.evaluator, version))
                if self.cache is not None
                else None
            )
            if record is not None:
                results[point.index] = PointResult(
                    index=point.index,
                    params=point.params,
                    seed=point.seed,
                    values=record["values"],
                    cached=True,
                    wall_time_s=0.0,
                )
            else:
                pending.append(point)

        def finish(point: SweepPoint, values: dict, wall: float) -> None:
            if self.cache is not None:
                self.cache.put(
                    point.key_material(spec.evaluator, version), values
                )
            result = PointResult(
                index=point.index,
                params=point.params,
                seed=point.seed,
                values=values,
                cached=False,
                wall_time_s=wall,
            )
            results[point.index] = result
            if progress is not None:
                progress(result)

        if pending:
            # A single pending point never benefits from fan-out or
            # batching — every executor degrades to serial for it.
            execute = (
                _execute_serial
                if len(pending) <= 1
                else _EXECUTORS[self.executor]
            )
            execute(self, spec, fn, pending, finish)

        ordered = [results[i] for i in sorted(results)]
        return SweepResult(
            spec=spec,
            points=ordered,
            wall_time_s=time.perf_counter() - start,
            cache_stats=(
                self.cache.stats.as_dict() if self.cache is not None else {}
            ),
        )

    def _run_pool(
        self,
        fn: Callable[..., Mapping[str, Any]],
        pending: list[SweepPoint],
        finish: Callable[[SweepPoint, dict, float], None],
    ) -> None:
        """Fan pending points over a process pool.

        Completed points are committed to the cache as they land.  On
        the first failure, queued-but-unstarted futures are cancelled,
        in-flight ones are drained (their successes still committed —
        a resume recomputes as little as possible), and the first
        error is re-raised with the cache left consistent.
        """
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _evaluate_point, fn, point.params, point.seed, self.config
                ): point
                for point in pending
            }
            remaining = set(futures)
            first_error: BaseException | None = None
            while remaining and first_error is None:
                done, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
                for future in done:
                    error = future.exception()
                    if error is not None:
                        first_error = first_error or error
                        continue
                    values, wall = future.result()
                    finish(futures[future], values, wall)
            if first_error is not None:
                # cancel() only stops futures still in the queue; the
                # in-flight ones run to completion anyway, so harvest
                # their results instead of discarding them.
                in_flight = {f for f in remaining if not f.cancel()}
                for future in in_flight:
                    if future.exception() is None:
                        values, wall = future.result()
                        finish(futures[future], values, wall)
                raise first_error


def run_sweep(
    spec: SweepSpec,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    progress: Callable[[PointResult], None] | None = None,
    config=None,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        cache=cache, executor=executor, workers=workers, config=config
    ).run(spec, progress=progress)
