"""The sweep runner: evaluate a grid, cached, fault-tolerant, resumable.

``run_sweep`` (or :class:`SweepRunner` for reuse across specs) walks a
:class:`SweepSpec`'s points, satisfies what it can from the
:class:`ResultCache` and the run manifest, and hands the misses to the
configured *executor* — a named strategy from an extensible registry:

``"serial"``
    Evaluate inline, in grid order; easiest to debug.
``"process"``
    Fan out over a ``ProcessPoolExecutor`` (``workers`` processes).
``"batched"``
    Group points that share a workload (per the evaluator's registered
    batch contract, :func:`repro.sweep.evaluators.register_batch`) and
    evaluate each group in one multi-candidate pass through the
    batched evaluation core; when several groups are pending and
    ``workers > 1``, the group chunks are submitted to a process pool
    and run concurrently.  Evaluators without a batch form — and
    singleton groups — degrade to serial evaluation, so the executor
    is always safe to select.
``"distributed"``
    A stub seam for a future remote backend; selecting it raises
    ``NotImplementedError`` at run time.

:func:`register_executor` installs additional strategies; unknown
names raise with the registered names listed.

**Fault tolerance** (see :mod:`repro.reliability` and
``docs/reliability.md``): every evaluator call runs under the runner's
:class:`~repro.reliability.retry.RetryPolicy` — a per-point deadline
(``point_timeout_s``) and bounded re-attempts (``retries``) with
deterministic jittered backoff.  The built-in executors never discard
finished work on a failure: completed points are committed to the
cache and the run manifest *as they finish*, a failing point is
retried and — only once its budget is exhausted — recorded, and the
first error is raised only after everything completable completed.
The process executor survives worker death (``BrokenProcessPool``):
it respawns the pool and requeues only the unfinished points, a
bounded number of times.  The batched executor degrades a failing
group to per-point serial evaluation instead of cancelling the sweep.
A sweep killed outright resumes via :class:`~repro.reliability.
manifest.RunManifest` (``resume=True``, the default): completed
points replay from the journal bit-identically, and journal entries
heal cache records lost to quarantine.

Results come back as a :class:`SweepResult` — an ordered list of
:class:`PointResult` rows plus timing, cache, and reliability
statistics — with helpers to slice, rank, and export through
:mod:`repro.report`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.reliability import faults as _faults
from repro.reliability.retry import PointTimeoutError, RetryPolicy, deadline
from repro.report.export import _jsonable as to_jsonable
from repro.report.export import experiment_record
from repro.sweep.cache import ResultCache, cache_key
from repro.sweep.evaluators import (
    evaluator_version,
    get_batch_evaluator,
    get_evaluator,
)
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "available_executors",
    "register_executor",
    "run_sweep",
]

#: Serial fail-fast fuse: with zero successes so far, this many
#: consecutive exhausted points abort the pass early — a sweep whose
#: every point fails (a bad evaluator argument, a missing dependency)
#: should not burn through a thousand-point grid to prove it.
FAIL_FAST_FUSE = 8


@dataclass(frozen=True)
class PointResult:
    """One evaluated (or cache-restored) grid point."""

    index: int
    params: Mapping[str, Any]
    seed: int
    values: Mapping[str, Any]
    cached: bool
    wall_time_s: float

    def row(self) -> dict[str, Any]:
        """Flat params+values record (params win on key collisions)."""
        return {**dict(self.values), **dict(self.params)}


@dataclass
class SweepResult:
    """All points of one sweep, in grid order."""

    spec: SweepSpec
    points: list[PointResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Reliability counters for this run: retries, timeouts,
    #: point_errors, worker_crashes, batch_fallbacks, failures,
    #: manifest_restored — absent keys mean zero events.
    reliability: dict[str, int] = field(default_factory=dict)
    #: This run's :mod:`repro.obs.metrics` delta (counters/gauges/
    #: histograms), merged across pool workers; ``{}`` unless the
    #: config enables metrics.
    metrics: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def n_cached(self) -> int:
        return sum(1 for p in self.points if p.cached)

    def rows(self) -> list[dict[str, Any]]:
        return [p.row() for p in self.points]

    def values(self, key: str) -> list[Any]:
        """One result column across the grid, in point order."""
        return [p.values[key] for p in self.points]

    def select(self, **matches: Any) -> list[PointResult]:
        """Points whose parameters equal every given value."""
        return [
            p
            for p in self.points
            if all(p.params.get(k) == v for k, v in matches.items())
        ]

    def best(self, key: str, minimize: bool = True) -> PointResult:
        """The point optimizing one scalar result column."""
        if not self.points:
            raise ValueError(f"sweep {self.spec.name!r} has no points")
        chooser = min if minimize else max
        return chooser(self.points, key=lambda p: float(p.values[key]))

    def to_record(self) -> dict[str, Any]:
        """The canonical :func:`experiment_record` payload.

        Carries whichever point source the spec used — the axis grid
        or the explicit candidate list — so the sweep is reproducible
        from the record alone.
        """
        params: dict[str, Any] = {
            "evaluator": self.spec.evaluator,
            "axes": {a.name: list(a.values) for a in self.spec.axes},
            "fixed": dict(self.spec.fixed),
            "base_seed": self.spec.base_seed,
            "seed_mode": self.spec.seed_mode,
        }
        if self.spec.explicit_points is not None:
            params["explicit_points"] = [
                dict(p) for p in self.spec.explicit_points
            ]
        results: dict[str, Any] = {
            "rows": self.rows(),
            "wall_time_s": self.wall_time_s,
            "cache": dict(self.cache_stats),
            "reliability": dict(self.reliability),
        }
        if self.metrics:
            results["metrics"] = dict(self.metrics)
        return experiment_record(
            self.spec.name,
            params,
            results,
            notes=f"sweep over {self.spec.n_points} points",
        )

    def save(self, results_dir) -> None:
        """Persist through a :class:`repro.report.ResultsDirectory`.

        Writes the JSON record plus a flat CSV of every scalar column
        (nested per-phase dicts stay in the JSON record only).
        """
        results_dir.save_record(self.to_record())
        rows = self.rows()
        if not rows:
            return
        headers = [
            k
            for k, v in rows[0].items()
            if not isinstance(v, (dict, list, tuple))
        ]
        results_dir.save_table(
            self.spec.name,
            "points",
            headers,
            [[row.get(h) for h in headers] for row in rows],
        )


def _version_key(spec: SweepSpec) -> str:
    """The code-version component of every cache key.

    Combines the package version (global invalidation on release
    bumps), the evaluator's registered version (targeted invalidation
    when one model changes), and the spec's own override.
    """
    import repro

    parts = [f"repro={repro.__version__}",
             f"{spec.evaluator}={evaluator_version(spec.evaluator)}"]
    if spec.version:
        parts.append(f"spec={spec.version}")
    return ";".join(parts)


def _evaluate_point(
    fn: Callable[..., Mapping[str, Any]],
    params: Mapping[str, Any],
    seed: int,
    config=None,
    attempt: int = 1,
    timeout_s: float | None = None,
    crash_mode: str = "raise",
    delay_s: float = 0.0,
) -> tuple[dict[str, Any], float]:
    """Worker body: run one evaluator call, timed and fault-guarded.

    Module-level so it pickles for the process pool.  The evaluator is
    shipped as the callable itself (pickled by module+qualname), not
    looked up from the registry inside the worker: under the "spawn"
    start method a fresh worker only registers the built-ins, so a
    by-name lookup would break user-registered evaluators; unpickling
    the callable imports its defining module instead, which re-runs
    the ``@register`` decorator as a side effect.

    ``config`` — a :class:`repro.api.RuntimeConfig` — is shipped the
    same way (a plain picklable dataclass) and installed for the
    duration of the call, so pool workers share the caller's cache
    tiers, sampling mode, and fault plan without inheriting mutated
    environment variables.

    ``attempt`` (1-based) identifies the retry round to the fault
    injector; ``timeout_s`` arms the per-point deadline around the
    evaluator call; ``crash_mode`` is ``"exit"`` inside pool workers
    (an injected worker crash dies hard, as a real one would) and
    ``"raise"`` inline; ``delay_s`` executes the scheduler-computed
    retry backoff worker-side, so the scheduler never blocks.
    """
    if delay_s > 0:
        time.sleep(delay_s)
    start = time.perf_counter()
    if config is None:
        scope = nullcontext()
    else:
        from repro.api.config import config_scope

        scope = config_scope(config)
    with scope:
        key = canonical_json(params)
        # The span is created inside the scope so the scoped config's
        # trace setting (not the ambient one) governs it.
        with _trace.span(
            "sweep.point",
            evaluator=getattr(fn, "__name__", repr(fn)),
            seed=seed,
            attempt=attempt,
        ):
            _faults.inject_point_faults(
                key, attempt, allow_exit=(crash_mode == "exit")
            )
            with deadline(timeout_s, label=key):
                _faults.maybe_stall(key, attempt)
                values = to_jsonable(dict(fn(seed=seed, **dict(params))))
    return values, time.perf_counter() - start


def _pool_evaluate_point(
    fn: Callable[..., Mapping[str, Any]],
    params: Mapping[str, Any],
    seed: int,
    config=None,
    **kwargs: Any,
) -> tuple[dict[str, Any], float, dict[str, Any] | None]:
    """Pool worker body: :func:`_evaluate_point` plus telemetry export.

    Opens the worker's config scope here (rather than inside
    :func:`_evaluate_point`) so the worker's metrics delta can be
    snapshotted under the caller's config and shipped back alongside
    the values — the same protocol cache stats use — and so buffered
    spans are flushed to the per-pid JSONL file before the result
    crosses the process boundary.
    """
    if config is None:
        values, wall = _evaluate_point(fn, params, seed, None, **kwargs)
        return values, wall, None
    from repro.api.config import config_scope

    with config_scope(config):
        before = _metrics.snapshot()
        try:
            values, wall = _evaluate_point(fn, params, seed, None, **kwargs)
        finally:
            _trace.flush()
        delta = _metrics.delta_dict(before)
    return values, wall, delta


def _serial_core(
    runner: "SweepRunner",
    fn: Callable[..., Mapping[str, Any]],
    points: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Evaluate points inline (grid order) with per-point retry.

    Exhausted points are *recorded*, not raised — later points still
    run, so an interrupted-then-resumed sweep recomputes as little as
    possible; the caller raises collected failures at the end.  The
    one exception is the fail-fast fuse (:data:`FAIL_FAST_FUSE`):
    with zero successes, a run of consecutive exhausted points aborts
    the pass — every point failing means the sweep itself is broken.
    """
    consecutive = 0
    succeeded = 0
    for point in points:
        try:
            values, wall = runner._attempt_point(fn, point, crash_mode="raise")
        except Exception as error:
            runner._record_failure(point, error)
            consecutive += 1
            if succeeded == 0 and consecutive >= FAIL_FAST_FUSE:
                runner._bump("fuse_trips")
                break
        else:
            consecutive = 0
            succeeded += 1
            finish(point, values, wall)


def _execute_serial(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"serial"`` executor: evaluate inline, in grid order."""
    _serial_core(runner, fn, pending, finish)
    runner._raise_failures()


def _execute_process(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"process"`` executor: ``ProcessPoolExecutor`` fan-out."""
    runner._run_pool(fn, pending, finish)


def _evaluate_batch_group(
    batch_fn: Callable[[list], list],
    jobs: list[tuple[Mapping[str, Any], int]],
    config=None,
) -> tuple[list[dict], float]:
    """Worker body: one batch-evaluator call, timed.

    Module-level so it pickles for the process pool; the batch callable
    and the config ship by pickle exactly like :func:`_evaluate_point`'s
    scalar evaluator.
    """
    start = time.perf_counter()
    if config is None:
        scope = nullcontext()
    else:
        from repro.api.config import config_scope

        scope = config_scope(config)
    with scope:
        with _trace.span("sweep.batch_group", points=len(jobs)):
            rows = batch_fn(jobs)
    return (
        [to_jsonable(dict(values)) for values in rows],
        time.perf_counter() - start,
    )


def _pool_evaluate_batch_group(
    batch_fn: Callable[[list], list],
    jobs: list[tuple[Mapping[str, Any], int]],
    config=None,
) -> tuple[list[dict], float, dict[str, Any] | None]:
    """Pool worker body: one batch pass plus the worker's telemetry
    delta and trace flush (see :func:`_pool_evaluate_point`)."""
    if config is None:
        rows, elapsed = _evaluate_batch_group(batch_fn, jobs, None)
        return rows, elapsed, None
    from repro.api.config import config_scope

    with config_scope(config):
        before = _metrics.snapshot()
        try:
            rows, elapsed = _evaluate_batch_group(batch_fn, jobs, None)
        finally:
            _trace.flush()
        delta = _metrics.delta_dict(before)
    return rows, elapsed, delta


def _finish_batch_group(
    spec: SweepSpec,
    group: list[SweepPoint],
    rows: list[dict],
    elapsed: float,
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Commit one batch group's results, wall time split evenly.

    A row-count mismatch is a *contract violation* in the registered
    batch evaluator — a programming error, not a runtime fault — so
    it raises instead of degrading to serial (silently re-running a
    miscounting evaluator would hide the bug).
    """
    if len(rows) != len(group):
        raise ValueError(
            f"batch evaluator for {spec.evaluator!r} returned "
            f"{len(rows)} results for {len(group)} points"
        )
    wall = elapsed / len(group)
    for point, values in zip(group, rows):
        finish(point, values, wall)


def _fallback_group_serial(
    runner: "SweepRunner",
    fn: Callable[..., Mapping[str, Any]],
    group: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
    error: BaseException,
) -> None:
    """Degrade one failing batch group to per-point serial evaluation."""
    runner._bump("batch_fallbacks")
    runner._note_error(error)
    _serial_core(runner, fn, group, finish)


def _execute_batched(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Built-in ``"batched"`` executor: chunked multi-candidate passes.

    Points are grouped by the evaluator's registered batch contract
    (the parameters pinning the shared workload, plus the point seed
    when the evaluator's workload depends on it).  Each group of two
    or more runs through the batch evaluator in one pass; singleton
    groups — and evaluators with no batch form at all — fall back to
    serial evaluation.  When several groups are pending and the runner
    has workers to spare, the group chunks are submitted to a process
    pool and run concurrently (each group is still one batch pass, and
    group results are identical wherever they run).  Wall time is
    attributed evenly across a group's points, and each point's values
    are cached individually, so batched and serial runs produce
    interchangeable records.

    A group whose batch pass *fails* degrades to per-point serial
    evaluation (with the runner's retry policy) instead of cancelling
    the sweep; only points that fail serially too count as failures.
    """
    batch = get_batch_evaluator(spec.evaluator)
    if batch is None:
        _execute_serial(runner, spec, fn, pending, finish)
        return
    groups: dict[tuple, list[SweepPoint]] = {}
    for point in pending:
        key = tuple(
            repr(point.params.get(name)) for name in batch.group_by
        )
        if batch.group_by_seed:
            key += (point.seed,)
        groups.setdefault(key, []).append(point)
    multis: list[list[SweepPoint]] = []
    for group in groups.values():
        if len(group) == 1:
            _serial_core(runner, fn, group, finish)
        else:
            multis.append(group)
    if len(multis) >= 2 and runner.workers > 1 and _picklable(batch.fn):
        _run_group_pool(runner, spec, fn, batch.fn, multis, finish)
    else:
        for group in multis:
            jobs = [(point.params, point.seed) for point in group]
            try:
                rows, elapsed = _evaluate_batch_group(
                    batch.fn, jobs, runner.config
                )
            except Exception as error:
                _fallback_group_serial(runner, fn, group, finish, error)
                continue
            _finish_batch_group(spec, group, rows, elapsed, finish)
    runner._raise_failures()


def _picklable(obj: Any) -> bool:
    """Whether ``obj`` survives a round trip to a pool worker.

    Locally-defined batch evaluators (tests, notebooks) don't; they
    keep the in-process path rather than failing mid-submission.
    """
    import pickle

    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_group_pool(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    batch_fn: Callable[[list], list],
    multis: list[list[SweepPoint]],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Fan batch groups over a process pool (chunked submissions).

    Completed groups commit as they land.  A group whose worker
    *raised* degrades straight to per-point serial evaluation.  If the
    pool itself dies (``BrokenProcessPool``), the unfinished groups —
    whose batch function was never at fault — are re-run as in-process
    batch passes, and only if such a pass fails too does that group
    degrade to serial.  Either way the sweep completes everything
    completable before any failure is raised.
    """
    serial_fallback: list[tuple[list[SweepPoint], BaseException]] = []
    retry_inprocess: list[list[SweepPoint]] = []
    futures: dict = {}
    broken = False
    workers = min(runner.workers, len(multis))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        queue = deque(multis)
        while queue:
            group = queue.popleft()
            try:
                future = pool.submit(
                    _pool_evaluate_batch_group,
                    batch_fn,
                    [(point.params, point.seed) for point in group],
                    runner.config,
                )
            except BaseException:
                retry_inprocess.append(group)
                retry_inprocess.extend(queue)
                queue.clear()
                broken = True
                break
            futures[future] = group
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(
                outstanding, return_when=FIRST_COMPLETED
            )
            for future in done:
                group = futures.pop(future)
                error = future.exception()
                if error is None:
                    rows, elapsed, obs = future.result()
                    runner._absorb_obs(obs)
                    _finish_batch_group(spec, group, rows, elapsed, finish)
                elif isinstance(error, BrokenProcessPool):
                    broken = True
                    retry_inprocess.append(group)
                else:
                    serial_fallback.append((group, error))
    if broken:
        runner._bump("worker_crashes")
    for group in retry_inprocess:
        jobs = [(point.params, point.seed) for point in group]
        try:
            rows, elapsed = _evaluate_batch_group(
                batch_fn, jobs, runner.config
            )
        except Exception as error:
            serial_fallback.append((group, error))
            continue
        _finish_batch_group(spec, group, rows, elapsed, finish)
    for group, error in serial_fallback:
        _fallback_group_serial(runner, fn, group, finish, error)


def _execute_distributed(
    runner: "SweepRunner",
    spec: SweepSpec,
    fn: Callable[..., Mapping[str, Any]],
    pending: list[SweepPoint],
    finish: Callable[[SweepPoint, dict, float], None],
) -> None:
    """Placeholder ``"distributed"`` backend: the registration seam is
    real, the transport is not."""
    raise NotImplementedError(
        "the 'distributed' executor is a placeholder; register a real "
        "backend first, e.g.:\n"
        "\n"
        "    from repro.sweep.runner import register_executor\n"
        "\n"
        "    def execute(runner, spec, fn, pending, finish):\n"
        "        # ship each point to your cluster, then commit it:\n"
        "        #     finish(point, values, wall_seconds)\n"
        "        ...\n"
        "\n"
        "    register_executor('distributed', execute)\n"
        "\n"
        "Once registered, executor='distributed' is accepted by "
        "RuntimeConfig and this stub is replaced."
    )


#: Executor registry: name -> strategy callable taking
#: ``(runner, spec, evaluator_fn, pending_points, finish)``.
_EXECUTORS: dict[str, Callable[..., None]] = {
    "serial": _execute_serial,
    "process": _execute_process,
    "batched": _execute_batched,
    "distributed": _execute_distributed,
}


def register_executor(
    name: str, execute: Callable[..., None]
) -> Callable[..., None]:
    """Register (or replace) a sweep executor strategy.

    ``execute(runner, spec, fn, pending, finish)`` must call
    ``finish(point, values, wall_seconds)`` exactly once per pending
    point (in any order — the runner re-sorts into grid order) with
    JSON-able ``values``.  The name also becomes a valid
    :class:`repro.api.RuntimeConfig` executor value.
    """
    from repro.api.config import register_known_executor

    _EXECUTORS[name] = execute
    register_known_executor(name)
    return execute


def available_executors() -> list[str]:
    """Registered executor names (built-ins plus custom backends)."""
    return sorted(_EXECUTORS)


class SweepRunner:
    """Reusable sweep executor (cache + executor + reliability policy).

    ``executor`` names a registered strategy — ``"serial"``,
    ``"process"``, ``"batched"``, the ``"distributed"`` stub, or any
    backend added via :func:`register_executor`; see the module
    docstring.  Whatever the strategy, results are returned in grid
    order.

    ``config`` — a :class:`repro.api.RuntimeConfig` — is applied around
    every evaluator call, serial, pooled, or batched: pool workers
    receive it by pickle, which is how one ``--cache-dir`` serves a
    whole parallel sweep without any environment mutation.

    ``retries`` and ``point_timeout_s`` override the config's
    fault-tolerance fields (``None`` inherits them); ``manifest_dir``
    overrides where run manifests live (default: ``manifests/`` under
    the cache root; no cache and no dir means no manifest).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        executor: str = "serial",
        workers: int | None = None,
        config=None,
        retries: int | None = None,
        point_timeout_s: float | None = None,
        manifest_dir: str | os.PathLike | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; registered executors: "
                f"{available_executors()}"
            )
        self.cache = cache
        self.executor = executor
        self.workers = workers or os.cpu_count() or 1
        self.config = config
        self.retries = retries
        self.point_timeout_s = point_timeout_s
        self.manifest_dir = manifest_dir
        # Per-run state, reset by run(); initialized here so executor
        # helpers stay callable on a fresh runner.
        self._policy = RetryPolicy()
        self._reliability: dict[str, int] = {}
        self._failures: dict[int, tuple[SweepPoint, BaseException]] = {}
        self._manifest_active = None
        self._metrics_on = False

    # ------------------------------------------------------------------
    # reliability bookkeeping (shared by all executors)
    # ------------------------------------------------------------------
    def _retry_policy(self, spec: SweepSpec) -> RetryPolicy:
        """Explicit runner args beat the config beats the defaults."""
        retries = self.retries
        timeout = self.point_timeout_s
        if retries is None or timeout is None:
            source = self.config
            if source is None:
                from repro.api.config import get_config

                source = get_config()
            if retries is None:
                retries = source.retries
            if timeout is None:
                timeout = source.point_timeout_s
        return RetryPolicy(
            retries=retries, timeout_s=timeout, seed=spec.base_seed
        )

    def _bump(self, counter: str, n: int = 1) -> None:
        self._reliability[counter] = self._reliability.get(counter, 0) + n
        if self._metrics_on:
            _metrics.registry().inc(f"sweep.{counter}", n)

    def _absorb_obs(self, delta: Mapping[str, Any] | None) -> None:
        """Fold a pool worker's metrics delta into this process's
        registry (no-op when metrics are off or the delta is empty)."""
        if delta and self._metrics_on:
            _metrics.registry().merge(delta)

    def _note_error(self, error: BaseException) -> None:
        """Count one observed (possibly retryable) evaluation error."""
        kind = (
            "timeouts"
            if isinstance(error, PointTimeoutError)
            else "point_errors"
        )
        self._bump(kind)
        _trace.add_event(
            "sweep.point_error", kind=kind, error=str(error)[:120]
        )
        if self._manifest_active is not None:
            try:
                self._manifest_active.append_event(
                    "fault", fault=kind, error=str(error)[:200]
                )
            except OSError:
                pass

    def _record_failure(
        self, point: SweepPoint, error: BaseException
    ) -> None:
        """A point exhausted its retry budget; keep the first error."""
        self._bump("failures")
        self._failures.setdefault(point.index, (point, error))
        if self._manifest_active is not None:
            try:
                self._manifest_active.append_event(
                    "point-failed",
                    index=point.index,
                    error=str(error)[:200],
                )
            except OSError:
                pass

    def _raise_failures(self) -> None:
        """Re-raise the first recorded failure, after everything
        completable committed (the cache and manifest stay maximal)."""
        for _, (_, error) in self._failures.items():
            raise error

    def _attempt_point(
        self,
        fn: Callable[..., Mapping[str, Any]],
        point: SweepPoint,
        crash_mode: str,
    ) -> tuple[dict[str, Any], float]:
        """One point through the retry loop (inline evaluation)."""
        policy = self._policy
        key = canonical_json(point.params)
        failures = 0
        delay = 0.0
        while True:
            try:
                return _evaluate_point(
                    fn,
                    point.params,
                    point.seed,
                    self.config,
                    attempt=failures + 1,
                    timeout_s=policy.timeout_s,
                    crash_mode=crash_mode,
                    delay_s=delay,
                )
            except Exception as error:
                failures += 1
                self._note_error(error)
                if failures > policy.retries:
                    raise
                self._bump("retries")
                _trace.add_event("sweep.retry", attempt=failures + 1)
                delay = policy.backoff_s(key, failures)

    def _manifest_for(self, spec: SweepSpec, version: str, digests) :
        """The run's journal, or ``None`` when nowhere to put one."""
        root = self.manifest_dir
        if root is None and self.cache is not None:
            root = self.cache.root / "manifests"
        if root is None:
            return None
        from repro.reliability.manifest import RunManifest, run_key

        key = run_key(spec.name, spec.evaluator, version, digests)
        return RunManifest(Path(root) / f"{key}.jsonl")

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(
        self,
        spec: SweepSpec,
        progress: Callable[[PointResult], None] | None = None,
        resume: bool = True,
    ) -> SweepResult:
        """Evaluate every point of ``spec``; see class docstring.

        ``resume`` (default) replays points this run's manifest already
        journaled as completed — a sweep killed mid-run (power loss,
        SIGKILL, a crash past the retry budget) picks up where it
        stopped, bit-identically, even with no result cache configured.
        ``resume=False`` discards the journal and recomputes.
        """
        with _trace.span(
            "sweep.run",
            sweep=spec.name,
            evaluator=spec.evaluator,
            executor=self.executor,
            points=spec.n_points,
        ):
            return self._run(spec, progress, resume)

    def _run(
        self,
        spec: SweepSpec,
        progress: Callable[[PointResult], None] | None,
        resume: bool,
    ) -> SweepResult:
        start = time.perf_counter()
        version = _version_key(spec)
        stats_before = (
            self.cache.stats.snapshot() if self.cache is not None else None
        )
        fn = get_evaluator(spec.evaluator)
        self._policy = self._retry_policy(spec)
        self._reliability = {}
        self._failures = {}
        self._manifest_active = None
        # Runner-side telemetry follows the evaluator-side config: an
        # explicit runner config wins, else the process-active one.
        if self.config is not None:
            self._metrics_on = bool(self.config.metrics)
        else:
            self._metrics_on = _metrics.metrics_enabled()
        metrics_before = (
            _metrics.registry().snapshot() if self._metrics_on else None
        )

        points = list(spec.points())
        materials = {
            p.index: p.key_material(spec.evaluator, version) for p in points
        }
        digests = {p.index: cache_key(materials[p.index]) for p in points}
        manifest = self._manifest_for(spec, version, digests.values())
        journaled: dict[str, dict] = {}
        if manifest is not None:
            if not resume:
                manifest.reset()
            elif manifest.exists():
                journaled = manifest.load().points

        results: dict[int, PointResult] = {}
        pending: list[SweepPoint] = []
        for point in points:
            material = materials[point.index]
            record = (
                self.cache.get(material) if self.cache is not None else None
            )
            if record is not None:
                results[point.index] = PointResult(
                    index=point.index,
                    params=point.params,
                    seed=point.seed,
                    values=record["values"],
                    cached=True,
                    wall_time_s=0.0,
                )
                continue
            values = journaled.get(digests[point.index])
            if values is not None:
                # The journal outlived the cache entry (quarantine, a
                # cleared directory, or no cache at all): restore the
                # point and heal the cache.
                results[point.index] = PointResult(
                    index=point.index,
                    params=point.params,
                    seed=point.seed,
                    values=values,
                    cached=True,
                    wall_time_s=0.0,
                )
                self._bump("manifest_restored")
                if self.cache is not None:
                    self.cache.put(material, values)
                continue
            pending.append(point)

        def finish(point: SweepPoint, values: dict, wall: float) -> None:
            if self.cache is not None:
                self.cache.put(materials[point.index], values)
            if manifest is not None:
                manifest.append_point(
                    digests[point.index], point.index, values
                )
            result = PointResult(
                index=point.index,
                params=point.params,
                seed=point.seed,
                values=values,
                cached=False,
                wall_time_s=wall,
            )
            results[point.index] = result
            if self._metrics_on:
                _metrics.registry().inc("sweep.points_evaluated")
                _metrics.registry().observe("sweep.point_wall_s", wall)
            if progress is not None:
                progress(result)

        if pending:
            self._manifest_active = manifest
            if manifest is not None:
                manifest.append_event(
                    "start",
                    spec=spec.name,
                    evaluator=spec.evaluator,
                    n_pending=len(pending),
                    n_points=spec.n_points,
                )
            # A single pending point never benefits from fan-out or
            # batching — every executor degrades to serial for it.
            execute = (
                _execute_serial
                if len(pending) <= 1
                else _EXECUTORS[self.executor]
            )
            try:
                execute(self, spec, fn, pending, finish)
            except BaseException as error:
                if manifest is not None:
                    try:
                        manifest.append_event(
                            "aborted", error=str(error)[:200]
                        )
                    except OSError:
                        pass
                raise
            finally:
                self._manifest_active = None
            if manifest is not None:
                manifest.append_event("end", n_completed=len(results))

        ordered = [results[i] for i in sorted(results)]
        return SweepResult(
            spec=spec,
            points=ordered,
            wall_time_s=time.perf_counter() - start,
            # This run's cache traffic, not the instance's lifetime
            # counters — a reused runner (or a long-lived service)
            # reports each run's hits honestly.
            cache_stats=(
                self.cache.stats.diff(stats_before).as_dict()
                if self.cache is not None
                else {}
            ),
            reliability=dict(self._reliability),
            # Same per-run honesty for the telemetry counters: the
            # registry is process-cumulative, the result reports the
            # delta this run produced (including absorbed worker
            # deltas).  Empty when metrics are off.
            metrics=(
                _metrics.registry().diff(metrics_before).as_dict()
                if metrics_before is not None
                else {}
            ),
        )

    # ------------------------------------------------------------------
    # the fault-tolerant process pool
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        fn: Callable[..., Mapping[str, Any]],
        pending: list[SweepPoint],
        finish: Callable[[SweepPoint, dict, float], None],
    ) -> None:
        """Fan pending points over a process pool, surviving failures.

        Completed points are committed as they land.  A failed point
        is resubmitted up to the retry budget (its backoff executes
        worker-side, so the scheduler never blocks).  If the pool
        itself dies (``BrokenProcessPool`` — a worker was OOM-killed,
        segfaulted, or an injected crash fired), successes computed
        before the crash are still harvested, the pool is respawned,
        and only the unfinished points are requeued; pool deaths are
        bounded separately from per-point retries.  Only after
        everything completable completed is the first unrecovered
        error raised — the cache and manifest stay maximal for the
        resume.
        """
        policy = self._policy
        attempts: dict[int, int] = {p.index: 0 for p in pending}
        failures_seen: dict[int, int] = {p.index: 0 for p in pending}
        delays: dict[int, float] = {}
        queue: deque[SweepPoint] = deque(pending)
        respawns = 0
        max_respawns = max(2, policy.retries + 1)

        def handle_error(point: SweepPoint, error: BaseException) -> bool:
            """Count one failure; True means the point retries."""
            failures_seen[point.index] += 1
            self._note_error(error)
            if failures_seen[point.index] > policy.retries:
                self._record_failure(point, error)
                return False
            self._bump("retries")
            delays[point.index] = policy.backoff_s(
                canonical_json(point.params), failures_seen[point.index]
            )
            return True

        while queue:
            broken = False
            workers = min(self.workers, len(queue))
            futures: dict = {}
            outstanding: set = set()
            with ProcessPoolExecutor(max_workers=workers) as pool:

                def submit(point: SweepPoint) -> bool:
                    attempts[point.index] += 1
                    try:
                        future = pool.submit(
                            _pool_evaluate_point,
                            fn,
                            point.params,
                            point.seed,
                            self.config,
                            attempt=attempts[point.index],
                            timeout_s=policy.timeout_s,
                            crash_mode="exit",
                            delay_s=delays.pop(point.index, 0.0),
                        )
                    except BaseException:
                        attempts[point.index] -= 1
                        return False
                    futures[future] = point
                    outstanding.add(future)
                    return True

                while queue:
                    point = queue.popleft()
                    if not submit(point):
                        queue.appendleft(point)
                        broken = True
                        break
                while outstanding and not broken:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        point = futures.pop(future)
                        error = future.exception()
                        if error is None:
                            values, wall, obs = future.result()
                            self._absorb_obs(obs)
                            finish(point, values, wall)
                        elif isinstance(error, BrokenProcessPool):
                            broken = True
                            queue.append(point)
                        elif handle_error(point, error):
                            if not submit(point):
                                queue.append(point)
                                broken = True
            # The with-block shut the pool down, so every future left
            # in ``futures`` has settled: harvest stragglers that beat
            # the crash, requeue the rest.
            for future in list(futures):
                point = futures.pop(future)
                if future.cancelled():
                    queue.append(point)
                    continue
                error = future.exception()
                if error is None:
                    values, wall, obs = future.result()
                    self._absorb_obs(obs)
                    finish(point, values, wall)
                elif isinstance(error, BrokenProcessPool):
                    queue.append(point)
                elif handle_error(point, error):
                    queue.append(point)
            if broken:
                respawns += 1
                self._bump("worker_crashes")
                if respawns > max_respawns:
                    for point in queue:
                        self._record_failure(
                            point,
                            RuntimeError(
                                f"worker pool died {respawns} times; "
                                f"giving up on point {point.index}"
                            ),
                        )
                    queue.clear()
        self._raise_failures()


def run_sweep(
    spec: SweepSpec,
    cache: ResultCache | None = None,
    executor: str = "serial",
    workers: int | None = None,
    progress: Callable[[PointResult], None] | None = None,
    config=None,
    retries: int | None = None,
    point_timeout_s: float | None = None,
    manifest_dir: str | os.PathLike | None = None,
    resume: bool = True,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        cache=cache,
        executor=executor,
        workers=workers,
        config=config,
        retries=retries,
        point_timeout_s=point_timeout_s,
        manifest_dir=manifest_dir,
    ).run(spec, progress=progress, resume=resume)
