"""The evaluator registry: named functions sweeps can fan out over.

Sweep points cross process boundaries (the parallel runner ships them
to ``ProcessPoolExecutor`` workers) and land in an on-disk cache, so a
spec references its evaluator *by name* rather than by callable: names
pickle trivially, stay stable across interpreter sessions, and make
cache records self-describing.

An evaluator is any callable ``fn(*, seed, **params) -> Mapping`` that
returns JSON-serializable values.  Register one with::

    @register("my-metric", version="1")
    def my_metric(*, seed, knob, **_):
        return {"score": ...}

The registered ``version`` is folded into every cache key, so bumping
it invalidates previously cached results for that evaluator only.

Built-in evaluators cover the paper's experiment families:

``simulate``
    One analytical accelerator simulation (network x mapping x
    arch x sparsity) — the workhorse behind Figures 17-20.
``design-point``
    One free-form accelerator design point (mapping x array side x
    buffer capacities x density): latency, energy, *and* silicon
    area, the objective vector the design-space explorer
    (:mod:`repro.explore`) prunes to a Pareto frontier.
``train-mini``
    One end-to-end mini training run (Figures 15/16).
``fabric-cost``
    Interconnect pricing at one array size (Section IV-C).
``echo``
    Diagnostic: echoes its parameters (optionally after a sleep);
    used by the engine's own tests and benchmarks.

Heavyweight imports happen inside the evaluator bodies so that
``repro.sweep`` stays importable from anywhere in the package without
cycles (the harness imports the sweep engine, not vice versa).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

__all__ = [
    "available_evaluators",
    "evaluator_version",
    "get_evaluator",
    "register",
]

Evaluator = Callable[..., Mapping[str, Any]]

_REGISTRY: dict[str, tuple[Evaluator, str]] = {}


def register(
    name: str, version: str = "1"
) -> Callable[[Evaluator], Evaluator]:
    """Decorator registering ``fn`` as the evaluator called ``name``."""

    def deco(fn: Evaluator) -> Evaluator:
        _REGISTRY[name] = (fn, version)
        return fn

    return deco


def get_evaluator(name: str) -> Evaluator:
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise KeyError(
            f"unknown evaluator {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def evaluator_version(name: str) -> str:
    get_evaluator(name)  # raise the same KeyError for unknown names
    return _REGISTRY[name][1]


def available_evaluators() -> list[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
@register("echo", version="1")
def echo(*, seed: int, sleep_s: float = 0.0, **params: Any) -> dict[str, Any]:
    """Echo the parameters back (after an optional sleep).

    The sleep makes wall-time visible, which the engine benchmarks use
    to demonstrate cache warm-up and parallel fan-out independently of
    simulator runtimes.
    """
    if sleep_s:
        time.sleep(sleep_s)
    return {"seed": seed, **params}


@register("simulate", version="2")
def simulate_point(
    *,
    seed: int,
    network: str,
    mapping: str = "KN",
    sparse: bool = True,
    arch: str | None = None,
    scale: int = 1,
    n: int | None = None,
    sparsity_factor: float | None = None,
    balance: bool = True,
) -> dict[str, Any]:
    """One analytical accelerator simulation (Figures 17-20 and kin).

    ``arch`` picks the base configuration by name ("baseline" or
    "procrustes"); the default follows the paper's methodology —
    sparse runs get the Procrustes additions, dense runs the plain
    baseline.  ``scale`` applies :meth:`ArchConfig.scaled` for the
    Figure 20 scalability points.  The dense baseline uses the dense
    profile regardless of ``sparsity_factor``.  (version 2: the
    evaluation core resampled the working-set model — content-keyed
    per-layer streams, moment-matched draws, replica subsampling,
    sampled-MAC energy — so pre-core cached numbers are stale.)
    """
    from repro.dataflow.simulator import simulate
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16

    bases = {"baseline": BASELINE_16x16, "procrustes": PROCRUSTES_16x16}
    if arch is None:
        arch = "procrustes" if sparse else "baseline"
    try:
        config = bases[arch]
    except KeyError:
        raise KeyError(
            f"unknown arch {arch!r}; choose from {sorted(bases)}"
        ) from None
    if scale != 1:
        config = config.scaled(scale)
    entry = model_entry(network)
    profile = (
        sparse_profile_for(network, seed=seed, sparsity_factor=sparsity_factor)
        if sparse
        else dense_profile_for(network)
    )
    sim = simulate(
        profile,
        mapping,
        arch=config,
        n=n if n is not None else entry.minibatch,
        sparse=sparse,
        balance=balance,
        seed=seed,
    )
    return {
        "total_cycles": sim.total_cycles,
        "total_j": sim.total_energy_j,
        "cycles_by_phase": sim.cycles_by_phase(),
        "energy_by_phase": sim.energy_by_phase(),
        "energy_components_by_phase": {
            phase: breakdown.as_dict()
            for phase, breakdown in sim.energy.items()
        },
        "array_side": config.pe_rows,
    }


@register("design-point", version="2")
def design_point(
    *,
    seed: int,
    network: str,
    mapping: str = "KN",
    array_side: int = 16,
    glb_kib: int = 128,
    rf_bytes: int = 1024,
    sparse: bool = True,
    sparsity_factor: float | None = None,
    profile_seed: int = 1,
    n: int | None = None,
    balance: bool = True,
) -> dict[str, Any]:
    """One free-form design point for the explorer (latency/energy/area).

    Unlike ``simulate``, which picks between the paper's two named
    configurations, this evaluator builds an :class:`ArchConfig` from
    raw knobs — array side, global-buffer capacity, per-PE register
    file — and prices the resulting silicon: Table III component areas
    with the register file and global buffer scaled linearly to their
    configured capacities, plus the interconnect the mapping actually
    *needs* from :mod:`repro.hw.fabric_cost` (the simple 3-network
    fabric, or the balanced-CK fabric when sparse load balancing
    requires the complex interconnect) — the same pricing rule the
    explorer's ``fabric_fraction_limit`` constraint screens with.

    Both the sparsity profile *and* the simulation's sampling are
    seeded from ``profile_seed``, not the sweep point's ``seed``:
    candidates are compared under **common random numbers** (the same
    sampled workload), which removes sampling noise from pairwise
    design comparisons and lets the evaluation core's layer-level memo
    share working sets across candidates that differ only in
    dimensions irrelevant to tiling (e.g. GLB capacity).  The sweep
    seed is still recorded per point; it just does not perturb the
    objective vector.  (version 2: simulation seed switched to
    ``profile_seed``.)

    The returned mapping carries the explorer's three objectives
    (``total_cycles``, ``total_j``, ``area_mm2``) alongside
    feasibility diagnostics (mask residency, fabric area fraction) so
    constraint violations are auditable from cached records.
    """
    from dataclasses import replace

    from repro.dataflow.simulator import simulate
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.area import TABLE_III_COMPONENTS, AreaModel
    from repro.hw.capacity import mask_residency_ok
    from repro.hw.config import arch_from_params
    from repro.hw.fabric_cost import FabricCostModel

    config = arch_from_params(
        {
            "array_side": array_side,
            "glb_kib": glb_kib,
            "rf_bytes": rf_bytes,
            "sparse": sparse,
        }
    )
    entry = model_entry(network)
    profile = (
        sparse_profile_for(
            network, seed=profile_seed, sparsity_factor=sparsity_factor
        )
        if sparse
        else dense_profile_for(network)
    )
    del seed  # recorded by the runner; sampling uses profile_seed
    minibatch = n if n is not None else entry.minibatch
    sim = simulate(
        profile,
        mapping,
        arch=config,
        n=minibatch,
        sparse=sparse,
        balance=balance,
        seed=profile_seed,
    )
    # Table III synthesized a 1 KB RF and a 128 KB GLB; first-order,
    # SRAM area and leakage scale linearly with capacity.
    capacity_scale = {
        "Register File": rf_bytes / 1024.0,
        "Global Buffer": glb_kib / 128.0,
    }
    components = tuple(
        replace(
            c,
            area_um2=c.area_um2 * capacity_scale.get(c.name, 1.0),
            power_mw=c.power_mw * capacity_scale.get(c.name, 1.0),
        )
        for c in TABLE_III_COMPONENTS
    )
    area = AreaModel(n_pes=config.n_pes, components=components)
    fabric_model = FabricCostModel(config)
    fabric = fabric_model.fabric_for_mapping(mapping, sparse=sparse)
    chip_um2 = area.total_area_um2(include_procrustes=sparse)
    return {
        "total_cycles": sim.total_cycles,
        "total_j": sim.total_energy_j,
        "area_mm2": (chip_um2 + fabric.area_um2) / 1e6,
        "power_mw": area.total_power_mw(include_procrustes=sparse),
        "fabric": fabric.name,
        "fabric_fraction": fabric_model.fabric_area_fraction(fabric),
        "mask_fits": mask_residency_ok(profile, config, n=minibatch),
        "n_pes": config.n_pes,
    }


@register("train-mini", version="1")
def train_mini_point(
    *,
    seed: int,
    model: str,
    mode: str,
    epochs: int = 6,
    sparsity_factor: float = 5.0,
    lr: float = 0.08,
) -> dict[str, Any]:
    """One end-to-end mini training run (Figures 15/16).

    Returns the whole validation curve plus the achieved sparsity so
    callers can rebuild :class:`TrainRunResult`-shaped records from
    cached JSON without re-training.
    """
    from repro.harness.training_experiments import train_mini

    run = train_mini(
        model,
        mode,
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        lr=lr,
        seed=seed,
    )
    history = run.history
    return {
        "epochs": list(history.epochs),
        "train_loss": list(history.train_loss),
        "train_accuracy": list(history.train_accuracy),
        "val_accuracy": list(history.val_accuracy),
        "sparsity_curve": list(history.sparsity_factor),
        "iterations": history.iterations,
        "achieved_sparsity": run.achieved_sparsity,
        "activation_densities": dict(run.activation_densities),
    }


@register("fabric-cost", version="1")
def fabric_cost_point(*, seed: int, side: int) -> dict[str, Any]:
    """Interconnect options priced at one array size (Section IV-C)."""
    del seed  # the cost model is deterministic
    from repro.hw.config import ArchConfig
    from repro.hw.fabric_cost import FabricCostModel

    arch = ArchConfig(name=f"{side}x{side}", pe_rows=side, pe_cols=side)
    model = FabricCostModel(arch)
    return {
        "options": {
            f.name: {
                "area_mm2": f.area_mm2(),
                "fraction": model.fabric_area_fraction(f),
                "h_pj": f.energy_pj_per_word["horizontal"],
            }
            for f in model.options()
        }
    }
