"""The evaluator registry: named functions sweeps can fan out over.

Sweep points cross process boundaries (the parallel runner ships them
to ``ProcessPoolExecutor`` workers) and land in an on-disk cache, so a
spec references its evaluator *by name* rather than by callable: names
pickle trivially, stay stable across interpreter sessions, and make
cache records self-describing.

An evaluator is any callable ``fn(*, seed, **params) -> Mapping`` that
returns JSON-serializable values.  Register one with::

    @register("my-metric", version="1")
    def my_metric(*, seed, knob, **_):
        return {"score": ...}

The registered ``version`` is folded into every cache key, so bumping
it invalidates previously cached results for that evaluator only.

Built-in evaluators cover the paper's experiment families:

``simulate``
    One analytical accelerator simulation (network x mapping x
    arch x sparsity) — the workhorse behind Figures 17-20.
``design-point``
    One free-form accelerator design point (mapping x array side x
    buffer capacities x density): latency, energy, *and* silicon
    area, the objective vector the design-space explorer
    (:mod:`repro.explore`) prunes to a Pareto frontier.
``train-mini``
    One end-to-end mini training run (Figures 15/16).
``campaign``
    One whole training campaign: train (or load from the
    :class:`~repro.campaign.trajectory.TrajectoryStore`), record the
    density trajectory, replay it through the accelerator model, and
    return per-epoch curves plus whole-run latency/energy (Table 2 /
    Figures 15-16 territory, measured instead of assumed).
``trajectory-point``
    One free-form design point priced against a *measured* campaign
    trajectory instead of a static analytic profile: whole-run cycles
    and energy (``run_cycles``/``run_j``) plus silicon area — the
    explorer's training-in-the-loop objective vector.
``fabric-cost``
    Interconnect pricing at one array size (Section IV-C).
``echo``
    Diagnostic: echoes its parameters (optionally after a sleep);
    used by the engine's own tests and benchmarks.

Heavyweight imports happen inside the evaluator bodies so that
``repro.sweep`` stays importable from anywhere in the package without
cycles (the harness imports the sweep engine, not vice versa).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "BatchEvaluatorSpec",
    "available_evaluators",
    "evaluator_version",
    "get_batch_evaluator",
    "get_evaluator",
    "price_design",
    "register",
    "register_batch",
]

Evaluator = Callable[..., Mapping[str, Any]]

#: A batch evaluator takes one *group* of (params, seed) jobs — all
#: agreeing on the registered ``group_by`` parameters — and returns one
#: value mapping per job, in job order, each identical to what the
#: scalar evaluator of the same name returns for that job.
BatchEvaluator = Callable[
    [list[tuple[Mapping[str, Any], int]]], list[Mapping[str, Any]]
]

_REGISTRY: dict[str, tuple[Evaluator, str]] = {}


def register(
    name: str, version: str = "1"
) -> Callable[[Evaluator], Evaluator]:
    """Decorator registering ``fn`` as the evaluator called ``name``."""

    def deco(fn: Evaluator) -> Evaluator:
        _REGISTRY[name] = (fn, version)
        return fn

    return deco


def get_evaluator(name: str) -> Evaluator:
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise KeyError(
            f"unknown evaluator {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def evaluator_version(name: str) -> str:
    get_evaluator(name)  # raise the same KeyError for unknown names
    return _REGISTRY[name][1]


def available_evaluators() -> list[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Batch evaluators (the "batched" sweep executor's counterpart)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchEvaluatorSpec:
    """A batch evaluator plus the grouping contract it requires.

    ``group_by`` names the parameters every job of one batch must
    agree on (the ones that pin the shared workload — network, density
    profile, profile seed); ``group_by_seed`` additionally pins the
    sweep point's own seed, for evaluators whose workload depends on
    it (``simulate`` builds its profile from the point seed, while
    ``design-point`` deliberately ignores it in favor of
    ``profile_seed``).
    """

    fn: BatchEvaluator
    group_by: tuple[str, ...]
    group_by_seed: bool = False


_BATCH_REGISTRY: dict[str, BatchEvaluatorSpec] = {}


def register_batch(
    name: str,
    group_by: tuple[str, ...],
    group_by_seed: bool = False,
) -> Callable[[BatchEvaluator], BatchEvaluator]:
    """Decorator registering the batch form of evaluator ``name``.

    The scalar evaluator of the same name stays the ground truth: the
    ``batched`` executor hands a batch function only groups of two or
    more points, and its results must be **identical** to running the
    scalar evaluator per point (the executor-parity tests enforce
    this).  Cache keys and versions are always the scalar evaluator's,
    so batch-computed and serially-computed records interoperate.
    """

    def deco(fn: BatchEvaluator) -> BatchEvaluator:
        _BATCH_REGISTRY[name] = BatchEvaluatorSpec(
            fn=fn, group_by=tuple(group_by), group_by_seed=group_by_seed
        )
        return fn

    return deco


def get_batch_evaluator(name: str) -> BatchEvaluatorSpec | None:
    """The batch form of evaluator ``name``, or ``None`` if it has
    none (the batched executor then degrades to serial evaluation)."""
    return _BATCH_REGISTRY.get(name)


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
@register("echo", version="1")
def echo(*, seed: int, sleep_s: float = 0.0, **params: Any) -> dict[str, Any]:
    """Echo the parameters back (after an optional sleep).

    The sleep makes wall-time visible, which the engine benchmarks use
    to demonstrate cache warm-up and parallel fan-out independently of
    simulator runtimes.
    """
    if sleep_s:
        time.sleep(sleep_s)
    return {"seed": seed, **params}


@register("simulate", version="2")
def simulate_point(
    *,
    seed: int,
    network: str,
    mapping: str = "KN",
    sparse: bool = True,
    arch: str | None = None,
    scale: int = 1,
    n: int | None = None,
    sparsity_factor: float | None = None,
    balance: bool = True,
) -> dict[str, Any]:
    """One analytical accelerator simulation (Figures 17-20 and kin).

    ``arch`` picks the base configuration by name ("baseline" or
    "procrustes"); the default follows the paper's methodology —
    sparse runs get the Procrustes additions, dense runs the plain
    baseline.  ``scale`` applies :meth:`ArchConfig.scaled` for the
    Figure 20 scalability points.  The dense baseline uses the dense
    profile regardless of ``sparsity_factor``.  (version 2: the
    evaluation core resampled the working-set model — content-keyed
    per-layer streams, moment-matched draws, replica subsampling,
    sampled-MAC energy — so pre-core cached numbers are stale.)
    """
    from repro.dataflow.simulator import simulate
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16

    bases = {"baseline": BASELINE_16x16, "procrustes": PROCRUSTES_16x16}
    if arch is None:
        arch = "procrustes" if sparse else "baseline"
    try:
        config = bases[arch]
    except KeyError:
        raise KeyError(
            f"unknown arch {arch!r}; choose from {sorted(bases)}"
        ) from None
    if scale != 1:
        config = config.scaled(scale)
    entry = model_entry(network)
    profile = (
        sparse_profile_for(network, seed=seed, sparsity_factor=sparsity_factor)
        if sparse
        else dense_profile_for(network)
    )
    sim = simulate(
        profile,
        mapping,
        arch=config,
        n=n if n is not None else entry.minibatch,
        sparse=sparse,
        balance=balance,
        seed=seed,
    )
    return {
        "total_cycles": sim.total_cycles,
        "total_j": sim.total_energy_j,
        "cycles_by_phase": sim.cycles_by_phase(),
        "energy_by_phase": sim.energy_by_phase(),
        "energy_components_by_phase": {
            phase: breakdown.as_dict()
            for phase, breakdown in sim.energy.items()
        },
        "array_side": config.pe_rows,
    }


@register_batch(
    "simulate",
    group_by=("network", "sparse", "sparsity_factor"),
    group_by_seed=True,
)
def simulate_batch(
    jobs: list[tuple[Mapping[str, Any], int]],
) -> list[dict[str, Any]]:
    """Batch form of ``simulate``: one multi-candidate evalcore pass.

    All jobs share (network, sparse, sparsity_factor, seed) — exactly
    what determines the simulated profile — so the profile is built
    once and every (mapping, arch, scale, n, balance) variant becomes
    one :class:`~repro.dataflow.batcheval.MappingCandidate`.  Results
    are bit-identical to per-job ``simulate_point`` calls.
    """
    from repro.dataflow.batcheval import MappingCandidate
    from repro.dataflow.simulator import simulate_candidates
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16

    first, seed = jobs[0]
    network = first["network"]
    sparse = first.get("sparse", True)
    sparsity_factor = first.get("sparsity_factor")
    entry = model_entry(network)
    profile = (
        sparse_profile_for(network, seed=seed, sparsity_factor=sparsity_factor)
        if sparse
        else dense_profile_for(network)
    )
    bases = {"baseline": BASELINE_16x16, "procrustes": PROCRUSTES_16x16}
    candidates = []
    for params, job_seed in jobs:
        arch = params.get("arch")
        if arch is None:
            arch = "procrustes" if sparse else "baseline"
        try:
            config = bases[arch]
        except KeyError:
            raise KeyError(
                f"unknown arch {arch!r}; choose from {sorted(bases)}"
            ) from None
        scale = params.get("scale", 1)
        if scale != 1:
            config = config.scaled(scale)
        n = params.get("n")
        candidates.append(
            MappingCandidate(
                mapping=params.get("mapping", "KN"),
                arch=config,
                n=n if n is not None else entry.minibatch,
                sparse=sparse,
                balance=params.get("balance", True),
                seed=job_seed,
            )
        )
    sims = simulate_candidates(profile, candidates)
    return [
        {
            "total_cycles": sim.total_cycles,
            "total_j": sim.total_energy_j,
            "cycles_by_phase": sim.cycles_by_phase(),
            "energy_by_phase": sim.energy_by_phase(),
            "energy_components_by_phase": {
                phase: breakdown.as_dict()
                for phase, breakdown in sim.energy.items()
            },
            "array_side": sim.arch.pe_rows,
        }
        for sim in sims
    ]


def price_design(
    config,
    mapping: str,
    sparse: bool = True,
    glb_kib: int = 128,
    rf_bytes: int = 1024,
) -> dict[str, Any]:
    """Silicon pricing shared by the design-point family of evaluators.

    Table III synthesized a 1 KB RF and a 128 KB GLB; first-order, SRAM
    area and leakage scale linearly with capacity.  The interconnect is
    whatever the mapping actually *needs* (simple 3-network fabric, or
    the balanced-CK complex fabric when sparse load balancing requires
    it) from :mod:`repro.hw.fabric_cost` — the same pricing rule the
    explorer's ``fabric_fraction_limit`` constraint screens with.
    """
    from dataclasses import replace

    from repro.hw.area import TABLE_III_COMPONENTS, AreaModel
    from repro.hw.fabric_cost import FabricCostModel

    capacity_scale = {
        "Register File": rf_bytes / 1024.0,
        "Global Buffer": glb_kib / 128.0,
    }
    components = tuple(
        replace(
            c,
            area_um2=c.area_um2 * capacity_scale.get(c.name, 1.0),
            power_mw=c.power_mw * capacity_scale.get(c.name, 1.0),
        )
        for c in TABLE_III_COMPONENTS
    )
    area = AreaModel(n_pes=config.n_pes, components=components)
    fabric_model = FabricCostModel(config)
    fabric = fabric_model.fabric_for_mapping(mapping, sparse=sparse)
    chip_um2 = area.total_area_um2(include_procrustes=sparse)
    return {
        "area_mm2": (chip_um2 + fabric.area_um2) / 1e6,
        "power_mw": area.total_power_mw(include_procrustes=sparse),
        "fabric": fabric.name,
        "fabric_fraction": fabric_model.fabric_area_fraction(fabric),
    }


@register("design-point", version="2")
def design_point(
    *,
    seed: int,
    network: str,
    mapping: str = "KN",
    array_side: int = 16,
    glb_kib: int = 128,
    rf_bytes: int = 1024,
    sparse: bool = True,
    sparsity_factor: float | None = None,
    profile_seed: int = 1,
    n: int | None = None,
    balance: bool = True,
) -> dict[str, Any]:
    """One free-form design point for the explorer (latency/energy/area).

    Unlike ``simulate``, which picks between the paper's two named
    configurations, this evaluator builds an :class:`ArchConfig` from
    raw knobs — array side, global-buffer capacity, per-PE register
    file — and prices the resulting silicon: Table III component areas
    with the register file and global buffer scaled linearly to their
    configured capacities, plus the interconnect the mapping actually
    *needs* from :mod:`repro.hw.fabric_cost` (the simple 3-network
    fabric, or the balanced-CK fabric when sparse load balancing
    requires the complex interconnect) — the same pricing rule the
    explorer's ``fabric_fraction_limit`` constraint screens with.

    Both the sparsity profile *and* the simulation's sampling are
    seeded from ``profile_seed``, not the sweep point's ``seed``:
    candidates are compared under **common random numbers** (the same
    sampled workload), which removes sampling noise from pairwise
    design comparisons and lets the evaluation core's layer-level memo
    share working sets across candidates that differ only in
    dimensions irrelevant to tiling (e.g. GLB capacity).  The sweep
    seed is still recorded per point; it just does not perturb the
    objective vector.  (version 2: simulation seed switched to
    ``profile_seed``.)

    The returned mapping carries the explorer's three objectives
    (``total_cycles``, ``total_j``, ``area_mm2``) alongside
    feasibility diagnostics (mask residency, fabric area fraction) so
    constraint violations are auditable from cached records.
    """
    from repro.dataflow.simulator import simulate
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.capacity import mask_residency_ok
    from repro.hw.config import arch_from_params

    config = arch_from_params(
        {
            "array_side": array_side,
            "glb_kib": glb_kib,
            "rf_bytes": rf_bytes,
            "sparse": sparse,
        }
    )
    entry = model_entry(network)
    profile = (
        sparse_profile_for(
            network, seed=profile_seed, sparsity_factor=sparsity_factor
        )
        if sparse
        else dense_profile_for(network)
    )
    del seed  # recorded by the runner; sampling uses profile_seed
    minibatch = n if n is not None else entry.minibatch
    sim = simulate(
        profile,
        mapping,
        arch=config,
        n=minibatch,
        sparse=sparse,
        balance=balance,
        seed=profile_seed,
    )
    silicon = price_design(
        config, mapping, sparse=sparse, glb_kib=glb_kib, rf_bytes=rf_bytes
    )
    return {
        "total_cycles": sim.total_cycles,
        "total_j": sim.total_energy_j,
        **silicon,
        "mask_fits": mask_residency_ok(profile, config, n=minibatch),
        "n_pes": config.n_pes,
    }


@register_batch(
    "design-point",
    group_by=("network", "sparse", "sparsity_factor", "profile_seed"),
)
def design_point_batch(
    jobs: list[tuple[Mapping[str, Any], int]],
) -> list[dict[str, Any]]:
    """Batch form of ``design-point``: the explorer's hot path.

    All jobs share the profile-determining parameters (common random
    numbers make the sweep seed irrelevant to the objective vector, so
    it does not join the group key).  One
    :func:`~repro.dataflow.simulator.simulate_candidates` pass covers
    every (mapping, array_side, glb_kib, rf_bytes, balance) variant —
    layer builds dedup across candidates that differ only in
    tiling-irrelevant knobs — and silicon pricing / mask-residency
    checks are memoized at their true (arch, mapping) granularity.
    Results are bit-identical to per-job ``design_point`` calls.
    """
    from repro.dataflow.batcheval import MappingCandidate
    from repro.dataflow.simulator import simulate_candidates
    from repro.harness.common import (
        dense_profile_for,
        model_entry,
        sparse_profile_for,
    )
    from repro.hw.capacity import mask_residency_ok
    from repro.hw.config import arch_from_params

    first, _ = jobs[0]
    network = first["network"]
    sparse = first.get("sparse", True)
    sparsity_factor = first.get("sparsity_factor")
    profile_seed = first.get("profile_seed", 1)
    entry = model_entry(network)
    profile = (
        sparse_profile_for(
            network, seed=profile_seed, sparsity_factor=sparsity_factor
        )
        if sparse
        else dense_profile_for(network)
    )
    candidates = []
    configs = []
    for params, _seed in jobs:
        config = arch_from_params(
            {
                "array_side": params.get("array_side", 16),
                "glb_kib": params.get("glb_kib", 128),
                "rf_bytes": params.get("rf_bytes", 1024),
                "sparse": sparse,
            }
        )
        n = params.get("n")
        configs.append(config)
        candidates.append(
            MappingCandidate(
                mapping=params.get("mapping", "KN"),
                arch=config,
                n=n if n is not None else entry.minibatch,
                sparse=sparse,
                balance=params.get("balance", True),
                seed=profile_seed,
            )
        )
    sims = simulate_candidates(profile, candidates)
    silicon_cache: dict[tuple, dict[str, Any]] = {}
    mask_cache: dict[tuple, bool] = {}
    results = []
    for (params, _seed), config, cand, sim in zip(
        jobs, configs, candidates, sims
    ):
        glb_kib = params.get("glb_kib", 128)
        rf_bytes = params.get("rf_bytes", 1024)
        skey = (config, cand.mapping, sparse, glb_kib, rf_bytes)
        silicon = silicon_cache.get(skey)
        if silicon is None:
            silicon = price_design(
                config,
                cand.mapping,
                sparse=sparse,
                glb_kib=glb_kib,
                rf_bytes=rf_bytes,
            )
            silicon_cache[skey] = silicon
        mkey = (config, cand.n)
        mask_fits = mask_cache.get(mkey)
        if mask_fits is None:
            mask_fits = mask_residency_ok(profile, config, n=cand.n)
            mask_cache[mkey] = mask_fits
        results.append(
            {
                "total_cycles": sim.total_cycles,
                "total_j": sim.total_energy_j,
                **silicon,
                "mask_fits": mask_fits,
                "n_pes": config.n_pes,
            }
        )
    return results


@register("train-mini", version="1")
def train_mini_point(
    *,
    seed: int,
    model: str,
    mode: str,
    epochs: int = 6,
    sparsity_factor: float = 5.0,
    lr: float = 0.08,
) -> dict[str, Any]:
    """One end-to-end mini training run (Figures 15/16).

    Returns the whole validation curve plus the achieved sparsity so
    callers can rebuild :class:`TrainRunResult`-shaped records from
    cached JSON without re-training.
    """
    from repro.harness.training_experiments import train_mini

    run = train_mini(
        model,
        mode,
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        lr=lr,
        seed=seed,
    )
    history = run.history
    return {
        "epochs": list(history.epochs),
        "train_loss": list(history.train_loss),
        "train_accuracy": list(history.train_accuracy),
        "val_accuracy": list(history.val_accuracy),
        "sparsity_curve": list(history.sparsity_factor),
        "iterations": history.iterations,
        "achieved_sparsity": run.achieved_sparsity,
        "activation_densities": dict(run.activation_densities),
    }


#: Process-local L1 over the on-disk TrajectoryStore: explorer batches
#: and sweep grids that embed the same training recipe train it once
#: per process even when no campaign cache directory is configured.
_TRAJECTORY_MEMO: dict[str, Any] = {}
_TRAJECTORY_MEMO_MAX = 32


def _campaign_trajectory(spec) -> tuple[Any, bool]:
    """Train-or-load the campaign for ``spec``; returns (trajectory, cached).

    The on-disk store comes from the active
    :class:`repro.api.config.RuntimeConfig` (its ``campaign_cache_dir``
    / ``cache_root``, with the ``REPRO_CAMPAIGN_CACHE_DIR`` variable
    layered in) — the sweep runner installs the caller's config around
    every evaluator call, including in process-pool workers.
    """
    from repro.campaign import TrajectoryStore, run_campaign

    key = spec.key()
    store = TrajectoryStore.from_config()
    memoized = _TRAJECTORY_MEMO.get(key)
    if memoized is not None:
        if store is not None and spec not in store:
            # The on-disk store was configured (or repointed) after
            # this process trained the campaign: write the memoized
            # trajectory through so other processes can share it.
            store.put(spec, memoized)
        return memoized, True
    result = run_campaign(spec, store=store)
    if len(_TRAJECTORY_MEMO) >= _TRAJECTORY_MEMO_MAX:
        _TRAJECTORY_MEMO.pop(next(iter(_TRAJECTORY_MEMO)))
    _TRAJECTORY_MEMO[key] = result.trajectory
    return result.trajectory, result.cached


@register("campaign", version="1")
def campaign_point(
    *,
    seed: int,
    model: str = "vgg-s",
    mode: str = "procrustes",
    epochs: int = 6,
    sparsity_factor: float = 5.0,
    lr: float = 0.08,
    init_decay: float = 0.9,
    decay_zero_after: int = 60,
    batch_size: int = 16,
    n_classes: int = 6,
    samples_per_class: int = 60,
    image_size: int = 16,
    data_seed: int = 7,
    mapping: str = "KN",
    arch: str | None = None,
    n: int | None = None,
    balance: bool = True,
) -> dict[str, Any]:
    """One whole training campaign: train, record, replay, roll up.

    The training recipe is a full :class:`~repro.campaign.spec.CampaignSpec`
    (the sweep point's ``seed`` seeds model init and minibatch order, so
    fanning over seeds is just ``seed_mode="derived"`` or several
    ``base_seed`` values); ``mapping``/``arch``/``n`` pick the replayed
    architecture point.  As with ``simulate``, the default arch follows
    the paper's methodology — sparse campaigns replay on the Procrustes
    additions, the dense ``sgd`` baseline on the plain array.
    """
    from repro.campaign import CampaignSpec, replay_trajectory
    from repro.hw.config import BASELINE_16x16, PROCRUSTES_16x16

    spec = CampaignSpec(
        model=model,
        mode=mode,
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        lr=lr,
        init_decay=init_decay,
        decay_zero_after=decay_zero_after,
        batch_size=batch_size,
        seed=seed,
        n_classes=n_classes,
        samples_per_class=samples_per_class,
        image_size=image_size,
        data_seed=data_seed,
    )
    trajectory, cached = _campaign_trajectory(spec)
    sparse = mode != "sgd"
    bases = {"baseline": BASELINE_16x16, "procrustes": PROCRUSTES_16x16}
    if arch is None:
        arch = "procrustes" if sparse else "baseline"
    try:
        config = bases[arch]
    except KeyError:
        raise KeyError(
            f"unknown arch {arch!r}; choose from {sorted(bases)}"
        ) from None
    replay = replay_trajectory(
        trajectory,
        mapping=mapping,
        arch=config,
        n=n if n is not None else batch_size,
        sparse=sparse,
        balance=balance,
        seed=seed,
    )
    return {
        "campaign_key": spec.key(),
        "trajectory_cached": cached,
        "run_cycles": replay.run_cycles,
        "run_j": replay.run_energy_j,
        "total_iterations": replay.total_iterations,
        **replay.curves(),
        "final_val_accuracy": trajectory.records[-1].val_accuracy,
        "final_achieved_sparsity": trajectory.records[-1].achieved_sparsity,
        "density_curve": trajectory.density_curve(),
    }


@register("trajectory-point", version="1")
def trajectory_point(
    *,
    seed: int,
    model: str = "vgg-s",
    mapping: str = "KN",
    array_side: int = 16,
    glb_kib: int = 128,
    rf_bytes: int = 1024,
    mode: str = "procrustes",
    epochs: int = 4,
    sparsity_factor: float = 5.0,
    batch_size: int = 16,
    n_classes: int = 6,
    samples_per_class: int = 60,
    image_size: int = 16,
    campaign_seed: int = 1,
    network: str | None = None,
    sparse: bool | None = None,
) -> dict[str, Any]:
    """One design point priced against a *measured* trajectory.

    The explorer's training-in-the-loop objective vector: whole-run
    ``run_cycles``/``run_j`` from replaying a recorded campaign on the
    candidate hardware, plus the same silicon pricing as
    ``design-point``.  Like that evaluator's ``profile_seed``, the
    campaign trains under ``campaign_seed`` (common random numbers):
    every candidate replays the *same* trajectory — shared through the
    TrajectoryStore / process memo, so a 100-candidate search trains
    once — and differs only in the hardware it is replayed on.

    ``network`` and ``sparse`` are accepted (and ignored) so the
    explorer's constraint predicates — which screen on the analytic
    paper-scale profile of the same name — can share one candidate
    vocabulary with this evaluator; the replayed sparsity follows
    ``mode``.
    """
    from repro.campaign import CampaignSpec, replay_trajectory
    from repro.hw.capacity import mask_residency_ok
    from repro.hw.config import arch_from_params

    del seed  # recorded by the runner; training uses campaign_seed
    del network, sparse  # constraint-vocabulary riders (see docstring)
    spec = CampaignSpec(
        model=model,
        mode=mode,
        epochs=epochs,
        sparsity_factor=sparsity_factor,
        batch_size=batch_size,
        seed=campaign_seed,
        n_classes=n_classes,
        samples_per_class=samples_per_class,
        image_size=image_size,
    )
    trajectory, cached = _campaign_trajectory(spec)
    sparse = mode != "sgd"
    config = arch_from_params(
        {
            "array_side": array_side,
            "glb_kib": glb_kib,
            "rf_bytes": rf_bytes,
            "sparse": sparse,
        }
    )
    replay = replay_trajectory(
        trajectory,
        mapping=mapping,
        arch=config,
        n=batch_size,
        sparse=sparse,
        balance=True,
        seed=campaign_seed,
    )
    silicon = price_design(
        config, mapping, sparse=sparse, glb_kib=glb_kib, rf_bytes=rf_bytes
    )
    return {
        "campaign_key": spec.key(),
        "trajectory_cached": cached,
        "run_cycles": replay.run_cycles,
        "run_j": replay.run_energy_j,
        **silicon,
        "mask_fits": mask_residency_ok(
            trajectory.final_profile(), config, n=batch_size
        ),
        "n_pes": config.n_pes,
    }


@register("fabric-cost", version="1")
def fabric_cost_point(*, seed: int, side: int) -> dict[str, Any]:
    """Interconnect options priced at one array size (Section IV-C)."""
    del seed  # the cost model is deterministic
    from repro.hw.config import ArchConfig
    from repro.hw.fabric_cost import FabricCostModel

    arch = ArchConfig(name=f"{side}x{side}", pe_rows=side, pe_cols=side)
    model = FabricCostModel(arch)
    return {
        "options": {
            f.name: {
                "area_mm2": f.area_mm2(),
                "fraction": model.fabric_area_fraction(f),
                "h_pj": f.energy_pj_per_word["horizontal"],
            }
            for f in model.options()
        }
    }
