"""Workload descriptions: layer shapes, phases, and sparsity profiles."""

from repro.workloads.density import (
    AnalyticDensitySource,
    DenseDensitySource,
    DensitySource,
)
from repro.workloads.layer_spec import LayerSpec, conv, fc
from repro.workloads.phases import PHASES, PhaseOp, phase_op
from repro.workloads.sparsity import (
    LayerSparsity,
    NetworkSparsity,
    dense_profile,
    profile_from_masks,
    synthetic_profile,
)

__all__ = [
    "AnalyticDensitySource",
    "DenseDensitySource",
    "DensitySource",
    "LayerSpec",
    "conv",
    "fc",
    "PHASES",
    "PhaseOp",
    "phase_op",
    "LayerSparsity",
    "NetworkSparsity",
    "dense_profile",
    "profile_from_masks",
    "synthetic_profile",
]
