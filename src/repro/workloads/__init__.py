"""Workload descriptions: layer shapes, phases, and sparsity profiles."""

from repro.workloads.layer_spec import LayerSpec, conv, fc
from repro.workloads.phases import PHASES, PhaseOp, phase_op
from repro.workloads.sparsity import (
    LayerSparsity,
    NetworkSparsity,
    dense_profile,
    profile_from_masks,
    synthetic_profile,
)

__all__ = [
    "LayerSpec",
    "conv",
    "fc",
    "PHASES",
    "PhaseOp",
    "phase_op",
    "LayerSparsity",
    "NetworkSparsity",
    "dense_profile",
    "profile_from_masks",
    "synthetic_profile",
]
