"""Density sources: one interface over analytic and measured sparsity.

Every hardware-model entry point consumes a
:class:`~repro.workloads.sparsity.NetworkSparsity` profile.  Where that
profile *comes from* is a separate question with two answers of very
different fidelity:

* **analytic** — :func:`~repro.workloads.sparsity.synthetic_profile`'s
  calibrated generative model, matched to Table II's published
  sparsity/MAC numbers.  Static: one profile for the whole run.
* **measured** — densities recorded epoch by epoch from an actual
  Dropback training run (:mod:`repro.campaign`).  A *trajectory*: the
  profile changes as training prunes.

:class:`DensitySource` is the seam between the two.  A source answers
``profile(epoch)``; static sources ignore the epoch, trajectory
sources return that epoch's measured profile.  The analytic sources
live here, at the workloads layer, so the hardware model keeps working
without the training stack; the measured implementation
(``repro.campaign.density.TrajectoryDensitySource``) plugs into the
same interface from above.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.workloads.layer_spec import LayerSpec
from repro.workloads.sparsity import (
    DEFAULT_ACT_DENSITY_RANGE,
    NetworkSparsity,
    dense_profile,
    synthetic_profile,
)

__all__ = [
    "AnalyticDensitySource",
    "DenseDensitySource",
    "DensitySource",
]


@runtime_checkable
class DensitySource(Protocol):
    """Anything that can produce per-layer density profiles.

    ``n_epochs`` is ``None`` for static (epoch-independent) sources;
    trajectory sources report how many epochs they cover and accept
    ``profile(epoch)`` for ``0 <= epoch < n_epochs``.
    """

    @property
    def name(self) -> str: ...

    @property
    def n_epochs(self) -> int | None: ...

    def profile(self, epoch: int | None = None) -> NetworkSparsity: ...


class AnalyticDensitySource:
    """The hand-calibrated generative profile (the pre-campaign path).

    Wraps :func:`~repro.workloads.sparsity.synthetic_profile` with the
    same knobs :func:`repro.harness.common.sparse_profile_for` always
    fed it; the profile is built once and reused for every epoch query
    (analytic densities do not evolve over training).
    """

    def __init__(
        self,
        name: str,
        specs: list[LayerSpec],
        sparsity_factor: float,
        seed: int = 1,
        target_mac_ratio: float | None = None,
        act_density_range: tuple[float, float] = DEFAULT_ACT_DENSITY_RANGE,
    ) -> None:
        self._name = name
        self._profile = synthetic_profile(
            name,
            specs,
            sparsity_factor,
            seed=seed,
            target_mac_ratio=target_mac_ratio,
            act_density_range=act_density_range,
        )

    @property
    def name(self) -> str:
        return self._name

    @property
    def n_epochs(self) -> int | None:
        return None

    def profile(self, epoch: int | None = None) -> NetworkSparsity:
        del epoch  # analytic densities are static over training
        return self._profile


class DenseDensitySource:
    """The unpruned baseline: every density is 1, at every epoch."""

    def __init__(self, name: str, specs: list[LayerSpec]) -> None:
        self._name = name
        self._profile = dense_profile(name, specs)

    @property
    def name(self) -> str:
        return self._name

    @property
    def n_epochs(self) -> int | None:
        return None

    def profile(self, epoch: int | None = None) -> NetworkSparsity:
        del epoch
        return self._profile
