"""Layer shape specifications — the 7-D operation space of Algorithm 1.

A :class:`LayerSpec` captures the dimensions a training accelerator
cares about: input/output channels (C, K), filter extent (R, S),
output extent (P, Q) and the input extent (H, W) it derives from,
stride, grouping, and the minibatch dimension N supplied at run time.
Fully-connected layers are the degenerate case R=S=P=Q=H=W=1, which is
exactly how the architecture model treats them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerSpec", "conv", "fc"]


@dataclass(frozen=True)
class LayerSpec:
    """Shape of one layer's operation space.

    Spatial sizes refer to the *input* tensor (H, W); the output extent
    (P, Q) is derived.  ``groups`` models depthwise/grouped convolution
    (MobileNet v2); weights per layer are ``K * C/groups * R * S``.
    """

    name: str
    c: int  # input channels
    k: int  # output channels
    r: int = 3  # filter rows
    s: int = 3  # filter cols
    h: int = 1  # input rows
    w: int = 1  # input cols
    stride: int = 1
    padding: int = 0
    groups: int = 1
    kind: str = "conv"

    def __post_init__(self) -> None:
        if self.c % self.groups or self.k % self.groups:
            raise ValueError(
                f"{self.name}: channels ({self.c}, {self.k}) must divide "
                f"groups {self.groups}"
            )
        if min(self.c, self.k, self.r, self.s, self.h, self.w) < 1:
            raise ValueError(f"{self.name}: all dimensions must be >= 1")
        if self.p < 1 or self.q < 1:
            raise ValueError(f"{self.name}: output extent collapses")

    @property
    def p(self) -> int:
        """Output rows."""
        return (self.h + 2 * self.padding - self.r) // self.stride + 1

    @property
    def q(self) -> int:
        """Output cols."""
        return (self.w + 2 * self.padding - self.s) // self.stride + 1

    @property
    def weight_count(self) -> int:
        """Dense weights in this layer."""
        return self.k * (self.c // self.groups) * self.r * self.s

    @property
    def weights_per_out_channel(self) -> int:
        return (self.c // self.groups) * self.r * self.s

    @property
    def weights_per_in_channel(self) -> int:
        return (self.k // self.groups) * self.r * self.s

    def macs_per_sample(self) -> int:
        """Dense MACs of the forward pass for one sample."""
        return self.k * self.p * self.q * (self.c // self.groups) * self.r * self.s

    def macs(self, n: int) -> int:
        """Dense MACs of the forward pass for a minibatch of ``n``."""
        return n * self.macs_per_sample()

    def iact_count(self, n: int) -> int:
        return n * self.c * self.h * self.w

    def oact_count(self, n: int) -> int:
        return n * self.k * self.p * self.q

    def dims(self, n: int) -> dict[str, int]:
        """The seven loop extents of Algorithm 1."""
        return {
            "N": n,
            "K": self.k,
            "C": self.c,
            "R": self.r,
            "S": self.s,
            "P": self.p,
            "Q": self.q,
        }


def conv(
    name: str,
    c: int,
    k: int,
    h: int,
    w: int | None = None,
    r: int = 3,
    stride: int = 1,
    padding: int | None = None,
    groups: int = 1,
) -> LayerSpec:
    """Convenience conv constructor with 'same'-style default padding."""
    if w is None:
        w = h
    if padding is None:
        padding = r // 2
    return LayerSpec(
        name=name,
        c=c,
        k=k,
        r=r,
        s=r,
        h=h,
        w=w,
        stride=stride,
        padding=padding,
        groups=groups,
        kind="conv",
    )


def fc(name: str, c_in: int, c_out: int) -> LayerSpec:
    """Fully-connected layer as a 1x1x1 'convolution'."""
    return LayerSpec(
        name=name,
        c=c_in,
        k=c_out,
        r=1,
        s=1,
        h=1,
        w=1,
        stride=1,
        padding=0,
        groups=1,
        kind="fc",
    )
