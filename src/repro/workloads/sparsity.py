"""Sparsity profiles: per-layer weight and activation densities.

The architecture experiments need, for every layer of every network,
(a) the fraction of weights that survive Dropback training, (b) how
unevenly those survivors spread across channels (which drives load
imbalance, Figures 5/13), and (c) the post-ReLU input-activation
density the weight-update phase exploits.

The paper extracts these from trained PyTorch checkpoints; offline we
provide two sources with the same interface:

* :func:`synthetic_profile` — a calibrated generative model: layer
  densities follow the well-documented pattern that bigger layers
  prune harder (density ~ weight_count^-alpha, normalized to the
  network's target sparsity factor), and within a layer, per-channel
  densities are Beta-distributed around the layer mean (learned
  sparsity is strongly channel-structured, which is what produces the
  >50 % imbalance overheads of Figure 5).
* :func:`profile_from_masks` — measured: per-channel densities
  computed from actual Dropback masks (e.g. from a mini-model trained
  with :class:`repro.core.DropbackOptimizer`).

Tile non-zero counts are then *sampled* from the channel densities
(binomial within a channel slice) instead of materializing
multi-hundred-megabyte boolean masks for ImageNet-scale tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.layer_spec import LayerSpec

__all__ = [
    "LayerSparsity",
    "NetworkSparsity",
    "synthetic_profile",
    "profile_from_masks",
    "dense_profile",
]

#: Channel-density dispersion: Beta concentration (a+b).  Smaller is
#: more uneven.  Calibrated so the unbalanced C,K imbalance histogram
#: reproduces Figure 5's heavy tail (frequent >50 % overheads).
DEFAULT_CHANNEL_CONCENTRATION = 150.0

#: Post-ReLU activation density range typical of conv nets; the first
#: layer's input (raw image) is dense.
DEFAULT_ACT_DENSITY_RANGE = (0.35, 0.65)


@dataclass(frozen=True)
class LayerSparsity:
    """Sparsity description of one layer.

    ``out_channel_density``/``in_channel_density`` hold one density per
    output/input channel (means equal ``weight_density``); activation
    density is a scalar per layer.
    """

    layer: LayerSpec
    weight_density: float
    out_channel_density: np.ndarray
    in_channel_density: np.ndarray
    iact_density: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight_density <= 1.0:
            raise ValueError(
                f"{self.layer.name}: weight density {self.weight_density} "
                "out of (0, 1]"
            )
        if not 0.0 < self.iact_density <= 1.0:
            raise ValueError(
                f"{self.layer.name}: iact density {self.iact_density} "
                "out of (0, 1]"
            )

    def surviving_weights(self) -> float:
        return self.layer.weight_count * self.weight_density


@dataclass(frozen=True)
class NetworkSparsity:
    """Per-layer sparsity for a whole network."""

    name: str
    layers: tuple[LayerSparsity, ...]

    def total_weights(self) -> int:
        return sum(ls.layer.weight_count for ls in self.layers)

    def surviving_weights(self) -> float:
        return sum(ls.surviving_weights() for ls in self.layers)

    def sparsity_factor(self) -> float:
        return self.total_weights() / self.surviving_weights()

    def by_layer(self) -> dict[str, LayerSparsity]:
        return {ls.layer.name: ls for ls in self.layers}


def _channel_densities(
    rng: np.random.Generator,
    n_channels: int,
    mean_density: float,
    concentration: float,
) -> np.ndarray:
    """Beta-distributed channel densities with the requested mean."""
    mean = min(max(mean_density, 1e-4), 1.0)
    if mean >= 1.0 or concentration <= 0:
        return np.full(n_channels, mean)
    a = mean * concentration
    b = (1.0 - mean) * concentration
    draws = rng.beta(a, b, size=n_channels)
    # Renormalize so the layer mean is exact, then clamp.
    draws *= mean / max(draws.mean(), 1e-9)
    return np.clip(draws, 1e-4, 1.0)


def _allocate_layer_densities(
    layers: list[LayerSpec],
    sparsity_factor: float,
    alpha: float,
    min_density: float,
    first_layer_density: float,
) -> list[float]:
    """Spread a global weight budget across layers.

    Density scales as ``weight_count ** -alpha`` (big layers prune
    harder), with the first conv layer pinned denser (it sees raw
    pixels and is tiny), then the whole allocation is scaled so the
    network-level sparsity factor matches the target.
    """
    counts = np.array([layer.weight_count for layer in layers], dtype=float)
    raw = counts ** (-alpha)
    raw /= raw.max()
    densities = np.clip(raw, min_density, 1.0)
    if layers:
        densities[0] = first_layer_density
    target_survivors = counts.sum() / sparsity_factor
    for _ in range(60):
        survivors = float((densities * counts).sum())
        scale = target_survivors / survivors
        densities = np.clip(densities * scale, min_density, 1.0)
        if layers:
            densities[0] = max(densities[0], first_layer_density * 0.5)
        if abs(survivors - target_survivors) / target_survivors < 1e-6:
            break
    return [float(d) for d in densities]


def _mac_weighted_density(
    layers: list[LayerSpec], densities: list[float]
) -> float:
    """Network MAC density: surviving forward MACs over dense MACs."""
    macs = np.array([layer.macs_per_sample() for layer in layers], dtype=float)
    return float((macs * np.asarray(densities)).sum() / macs.sum())


def _fit_alpha(
    layers: list[LayerSpec],
    sparsity_factor: float,
    target_mac_ratio: float,
    min_density: float,
    first_layer_density: float,
) -> float:
    """Find the allocation exponent matching a MAC-reduction target.

    Table II reports both the weight sparsity factor and the surviving
    MACs; the two differ because pruning is not MAC-uniform (ResNet18
    prunes weights 11.7x but MACs only 5x).  The exponent's effect on
    MAC density is network-dependent (it depends on whether the
    weight-heavy layers are also MAC-heavy), so we scan rather than
    bisect.
    """
    target = 1.0 / target_mac_ratio
    candidates = np.linspace(-0.8, 1.5, 47)
    best_alpha, best_err = 0.35, float("inf")
    for alpha in candidates:
        densities = _allocate_layer_densities(
            layers, sparsity_factor, float(alpha), min_density,
            first_layer_density,
        )
        err = abs(_mac_weighted_density(layers, densities) - target)
        if err < best_err:
            best_alpha, best_err = float(alpha), err
    return best_alpha


def synthetic_profile(
    name: str,
    layers: list[LayerSpec],
    sparsity_factor: float,
    seed: int = 0,
    alpha: float | None = None,
    target_mac_ratio: float | None = None,
    min_density: float = 0.02,
    first_layer_density: float = 0.6,
    channel_concentration: float = DEFAULT_CHANNEL_CONCENTRATION,
    act_density_range: tuple[float, float] = DEFAULT_ACT_DENSITY_RANGE,
) -> NetworkSparsity:
    """Generate a calibrated sparsity profile for a network.

    When ``target_mac_ratio`` is given (dense MACs / sparse MACs from
    Table II), the per-layer allocation exponent is fitted so the
    profile reproduces both published sparsity numbers; otherwise
    ``alpha`` (default 0.35) shapes the allocation directly.
    """
    if sparsity_factor < 1.0:
        raise ValueError(
            f"sparsity_factor must be >= 1 (got {sparsity_factor})"
        )
    rng = np.random.default_rng(seed)
    if alpha is None:
        alpha = (
            _fit_alpha(
                layers, sparsity_factor, target_mac_ratio, min_density,
                first_layer_density,
            )
            if target_mac_ratio and sparsity_factor > 1.0
            else 0.35
        )
    densities = (
        _allocate_layer_densities(
            layers, sparsity_factor, alpha, min_density, first_layer_density
        )
        if sparsity_factor > 1.0
        else [1.0] * len(layers)
    )
    lo, hi = act_density_range
    out = []
    for index, (layer, density) in enumerate(zip(layers, densities)):
        iact_density = 1.0 if index == 0 else float(rng.uniform(lo, hi))
        out.append(
            LayerSparsity(
                layer=layer,
                weight_density=density,
                out_channel_density=_channel_densities(
                    rng, layer.k, density, channel_concentration
                ),
                in_channel_density=_channel_densities(
                    rng, layer.c, density, channel_concentration
                ),
                iact_density=iact_density,
            )
        )
    return NetworkSparsity(name=name, layers=tuple(out))


def dense_profile(name: str, layers: list[LayerSpec]) -> NetworkSparsity:
    """The unpruned baseline: every density is 1."""
    return NetworkSparsity(
        name=name,
        layers=tuple(
            LayerSparsity(
                layer=layer,
                weight_density=1.0,
                out_channel_density=np.ones(layer.k),
                in_channel_density=np.ones(layer.c),
                iact_density=1.0,
            )
            for layer in layers
        ),
    )


def profile_from_masks(
    name: str,
    layers: list[LayerSpec],
    masks: dict[str, np.ndarray],
    iact_densities: dict[str, float] | None = None,
) -> NetworkSparsity:
    """Measured profile from real Dropback masks.

    ``masks`` maps layer name to a boolean array shaped like the
    layer's weights ``(K, C/groups, R, S)`` (or ``(out, in)`` for fc).
    Layers without a mask are treated as dense.
    """
    iact_densities = iact_densities or {}
    out = []
    for index, layer in enumerate(layers):
        mask = masks.get(layer.name)
        if mask is None:
            density = 1.0
            out_ch = np.ones(layer.k)
            in_ch = np.ones(layer.c)
        else:
            flat_k = mask.reshape(mask.shape[0], -1)
            density = float(mask.mean())
            out_ch = flat_k.mean(axis=1)
            if mask.ndim == 4:
                in_ch_raw = mask.mean(axis=(0, 2, 3))
            else:
                in_ch_raw = mask.mean(axis=0)
            # Grouped layers have C/groups mask columns; tile to C.
            reps = -(-layer.c // in_ch_raw.shape[0])
            in_ch = np.tile(in_ch_raw, reps)[: layer.c]
        density = max(density, 1e-4)
        out.append(
            LayerSparsity(
                layer=layer,
                weight_density=density,
                out_channel_density=np.clip(out_ch, 1e-4, 1.0),
                in_channel_density=np.clip(in_ch, 1e-4, 1.0),
                iact_density=(
                    1.0
                    if index == 0
                    else float(iact_densities.get(layer.name, 0.5))
                ),
            )
        )
    return NetworkSparsity(name=name, layers=tuple(out))
