"""Per-training-phase operation spaces (Figure 2).

Each SGD iteration evaluates three convolutions per layer:

* **fw** — ``x * W -> y``: out-channel dim K, in-channel dim C; the
  sparse operand is the weight tensor.
* **bw** — ``dL/dy * rot180(W) -> dL/dx``: the roles of K and C swap
  (the "output channels" of this convolution are the layer's input
  channels); the sparse operand is still the weight tensor, accessed
  in the transposed/rotated order the CSB format supports.
* **wu** — ``x * dL/dy -> dL/dW``: reduction over N, P, Q; the sparse
  operand is the input activation tensor (post-ReLU), because batch
  normalization destroys dL/dy sparsity (Section II-B).

All three phases execute the same number of dense MACs; what differs
is which tensor is sparse, which dimension the sparsity varies along,
and how each mapping's spatial dimensions line up with those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.layer_spec import LayerSpec

__all__ = ["PHASES", "PhaseOp", "phase_op"]

PHASES = ("fw", "bw", "wu")


@dataclass(frozen=True)
class PhaseOp:
    """One phase's convolution, in phase-relative terms.

    ``out_channels``/``in_channels`` are the dimensions playing the K/C
    roles *for this phase's convolution*; ``spatial`` is its output
    extent; ``sparse_operand`` names which tensor's zeros can be
    skipped, and ``sparsity_varies_along`` the phase-relative dimension
    whose slices have unequal non-zero counts (driving load imbalance).
    """

    phase: str
    layer: LayerSpec
    n: int
    out_channels: int
    in_channels: int
    spatial: tuple[int, int]
    reduction_taps: int  # R*S of the phase's convolution
    sparse_operand: str  # 'weights' or 'iacts'
    sparsity_varies_along: tuple[str, ...]

    @property
    def dense_macs(self) -> int:
        """Dense MAC count (identical across phases by construction)."""
        return self.layer.macs(self.n)

    def sparse_macs(self, density: float) -> float:
        """MACs that survive skipping the sparse operand's zeros."""
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must lie in [0, 1] (got {density})")
        return self.dense_macs * density


def phase_op(layer: LayerSpec, phase: str, n: int) -> PhaseOp:
    """Build the phase-relative operation space for one layer."""
    if phase == "fw":
        return PhaseOp(
            phase="fw",
            layer=layer,
            n=n,
            out_channels=layer.k,
            in_channels=layer.c,
            spatial=(layer.p, layer.q),
            reduction_taps=layer.r * layer.s,
            sparse_operand="weights",
            sparsity_varies_along=("K", "C"),
        )
    if phase == "bw":
        return PhaseOp(
            phase="bw",
            layer=layer,
            n=n,
            out_channels=layer.c,
            in_channels=layer.k,
            spatial=(layer.h, layer.w),
            reduction_taps=layer.r * layer.s,
            sparse_operand="weights",
            sparsity_varies_along=("C", "K"),
        )
    if phase == "wu":
        return PhaseOp(
            phase="wu",
            layer=layer,
            n=n,
            out_channels=layer.k,
            in_channels=layer.c,
            spatial=(layer.p, layer.q),
            reduction_taps=layer.r * layer.s,
            sparse_operand="iacts",
            sparsity_varies_along=("N", "C"),
        )
    raise ValueError(f"unknown phase {phase!r} (expected one of {PHASES})")
