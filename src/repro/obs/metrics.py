"""Process-local metrics: counters, gauges, and histograms.

Before this module, every layer grew its own ad-hoc stat carrier —
``CacheStats`` on the sweep cache, ``MemoStats`` on the evalcore memo,
``ServeStats`` on the service, ``SweepResult.reliability`` on the
runner — each with a bespoke snapshot/diff/merge story (or none).
:class:`MetricsRegistry` generalizes the pattern those carriers
converged on: a named bag of counters, gauges, and histograms with

* :meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.diff` —
  measure exactly what one region of code contributed, the way the
  sweep runner already brackets a run with ``cache.stats.snapshot()``;
* :meth:`~MetricsRegistry.merge` / :meth:`~MetricsRegistry.from_dict`
  — pool workers ship their per-call deltas back over the wire and the
  parent folds them in, exactly like cache-stats deltas today.

One registry per process
------------------------

The module holds a single process-global registry (:func:`registry`).
Counters are *cumulative process state*, like the stats object living
on a cache instance: a ``config_scope`` entering and leaving must not
drop what was already counted.  Only the **enabled** flag is derived
from the active :class:`~repro.api.config.RuntimeConfig` (field
``metrics`` / env ``REPRO_METRICS=1``) through the same
``_on_config_change`` / ``_scope_save`` / ``_scope_restore`` hooks the
evalcore memo uses.  When disabled — the default — :func:`inc`,
:func:`observe`, and :func:`set_gauge` are guarded no-ops: one cached
boolean check, nothing allocated (pinned by the telemetry-overhead
benchmark).

Cross-process protocol: a pool worker snapshots the (worker-local)
registry on entry, runs the work, and returns
``delta_dict(snapshot)``; the parent calls ``registry().merge(delta)``.
In-process calls need no delta — they already landed in the shared
registry.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.api.config import get_config

__all__ = [
    "MetricsRegistry",
    "delta_dict",
    "inc",
    "metrics_enabled",
    "observe",
    "registry",
    "set_gauge",
    "snapshot",
]


class MetricsRegistry:
    """A thread-safe bag of named counters, gauges, and histograms.

    Counters are monotonically increasing ints; gauges are
    last-write-wins floats; histograms keep ``count``/``total``/
    ``min``/``max`` summaries (enough for means and extremes without
    unbounded storage).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``'s summary."""
        value = float(value)
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
            else:
                hist["count"] += 1
                hist["total"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)

    # -- snapshot / diff / merge ---------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-able payload; empty sections are omitted, so a registry
        that recorded nothing serializes as ``{}``."""
        with self._lock:
            payload: dict[str, Any] = {}
            if self.counters:
                payload["counters"] = dict(self.counters)
            if self.gauges:
                payload["gauges"] = dict(self.gauges)
            if self.histograms:
                payload["histograms"] = {
                    name: dict(hist)
                    for name, hist in self.histograms.items()
                }
            return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        reg = cls()
        for name, value in payload.get("counters", {}).items():
            reg.counters[name] = int(value)
        for name, value in payload.get("gauges", {}).items():
            reg.gauges[name] = float(value)
        for name, hist in payload.get("histograms", {}).items():
            reg.histograms[name] = {
                "count": int(hist["count"]),
                "total": float(hist["total"]),
                "min": float(hist["min"]),
                "max": float(hist["max"]),
            }
        return reg

    def snapshot(self) -> "MetricsRegistry":
        """An independent copy, for later :meth:`diff`."""
        return MetricsRegistry.from_dict(self.as_dict())

    def diff(self, earlier: "MetricsRegistry") -> "MetricsRegistry":
        """What was recorded since ``earlier`` (a prior snapshot).

        Counters and histogram count/total subtract; gauges and
        histogram min/max are last-known-state, so the diff keeps the
        current values.
        """
        out = MetricsRegistry()
        with self._lock:
            for name, value in self.counters.items():
                delta = value - earlier.counters.get(name, 0)
                if delta:
                    out.counters[name] = delta
            out.gauges = dict(self.gauges)
            for name, hist in self.histograms.items():
                prior = earlier.histograms.get(name)
                count = hist["count"] - (prior["count"] if prior else 0)
                if count:
                    out.histograms[name] = {
                        "count": count,
                        "total": hist["total"]
                        - (prior["total"] if prior else 0.0),
                        "min": hist["min"],
                        "max": hist["max"],
                    }
        return out

    def merge(
        self, other: "MetricsRegistry | Mapping[str, Any]"
    ) -> "MetricsRegistry":
        """Fold ``other`` (a registry or an :meth:`as_dict` payload —
        typically a worker's delta) into this registry, in place."""
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_dict(other)
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(other.gauges)
            for name, hist in other.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = dict(hist)
                else:
                    mine["count"] += hist["count"]
                    mine["total"] += hist["total"]
                    mine["min"] = min(mine["min"], hist["min"])
                    mine["max"] = max(mine["max"], hist["max"])
        return self

    def clear(self) -> None:
        """Drop everything (tests isolating the process registry)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)})"
        )


# ----------------------------------------------------------------------
# the process registry + config-derived enablement
# ----------------------------------------------------------------------
_registry = MetricsRegistry()

_UNSET = object()

#: Cached "is metrics collection on" flag, derived lazily from the
#: active config.  Dropped (back to ``_UNSET``) whenever the active
#: config changes, exactly like evalcore's derived default memo.
_enabled: Any = _UNSET


def metrics_enabled() -> bool:
    """Whether the active config enables metrics (cached)."""
    global _enabled
    if _enabled is _UNSET:
        _enabled = bool(get_config().metrics)
    return _enabled


def registry() -> MetricsRegistry:
    """The process-global registry (always exists, even disabled)."""
    return _registry


def inc(name: str, n: int = 1) -> None:
    """Bump counter ``name`` iff metrics are enabled; else a no-op."""
    if _enabled is True or (_enabled is _UNSET and metrics_enabled()):
        _registry.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` iff enabled."""
    if _enabled is True or (_enabled is _UNSET and metrics_enabled()):
        _registry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` iff enabled."""
    if _enabled is True or (_enabled is _UNSET and metrics_enabled()):
        _registry.set_gauge(name, value)


def snapshot() -> MetricsRegistry | None:
    """A snapshot of the process registry, or ``None`` when disabled.

    Pool workers call this on entry; pairing it with :func:`delta_dict`
    yields exactly what the worker contributed.
    """
    return _registry.snapshot() if metrics_enabled() else None


def delta_dict(before: MetricsRegistry | None) -> dict[str, Any] | None:
    """The registry delta since ``before`` as a wire payload.

    ``None`` when metrics are disabled (``before`` is then ``None``
    too, from :func:`snapshot`), or ``{}``-free: an empty delta
    returns ``None`` so callers can skip shipping it.
    """
    if before is None or not metrics_enabled():
        return None
    delta = _registry.diff(before).as_dict()
    return delta or None


# ----------------------------------------------------------------------
# config hooks (see repro.api.config._DERIVED_STATE_MODULES)
# ----------------------------------------------------------------------
def _on_config_change() -> None:
    """Forget the cached enabled flag; it re-derives lazily."""
    global _enabled
    _enabled = _UNSET


def _scope_save() -> Any:
    """Scope entry: stash the cached flag (the registry itself is
    cumulative process state and deliberately survives scopes)."""
    global _enabled
    state = _enabled
    _enabled = _UNSET
    return state


def _scope_restore(state: Any) -> None:
    """Scope exit: exact restore of the cached flag."""
    global _enabled
    _enabled = state
