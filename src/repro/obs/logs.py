"""Library-wide logging adoption: ``repro.*`` loggers, one configurer.

The library follows the standard "library" logging contract:

* every module logs through a logger under the ``"repro"`` root
  (:func:`get_logger` enforces the prefix);
* ``repro/__init__`` installs a ``NullHandler`` on that root, so an
  application that never configures logging sees nothing — not even
  the "no handlers could be found" warning;
* :func:`configure_logging` is the one opt-in: it attaches a single
  stream handler at the level from an explicit argument or the active
  :class:`~repro.api.config.RuntimeConfig` (field ``log_level`` / env
  ``REPRO_LOG_LEVEL``), and is idempotent — reconfiguring replaces the
  handler it previously installed rather than stacking duplicates.

Operator-relevant occurrences (a quarantined cache entry, a crashed
pool worker) are emitted as *structured events* via :func:`log_event`:
one stable event name followed by sorted ``key=value`` fields, so logs
stay grep-able without a JSON formatter dependency.
"""

from __future__ import annotations

import logging
from typing import Any, TextIO

__all__ = [
    "ROOT_LOGGER",
    "configure_logging",
    "get_logger",
    "log_event",
]

#: The library's root logger name; every repro logger hangs under it.
ROOT_LOGGER = "repro"

#: Marker attribute identifying the handler configure_logging owns.
_HANDLER_FLAG = "_repro_obs_handler"

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` root.

    ``get_logger("repro.sweep.cache")`` and ``get_logger("sweep.cache")``
    return the same logger; unprefixed names are nested automatically.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def _resolve_level(level: int | str) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {level!r}; expected e.g. 'DEBUG', "
            f"'INFO', 'WARNING', 'ERROR' (any case) or an int"
        )
    return resolved


def configure_logging(
    level: int | str | None = None,
    stream: TextIO | None = None,
    config: Any = None,
) -> logging.Logger | None:
    """Attach one stream handler to the ``repro`` root logger.

    ``level`` resolution: the explicit argument wins, else
    ``config.log_level`` (``config`` defaults to the process-active
    config), else ``None`` — in which case nothing is configured and
    ``None`` is returned (the library stays silent).  Returns the
    configured root logger otherwise.

    ``stream`` defaults to stderr.  Calling again replaces the handler
    installed by the previous call, so the harness can invoke this
    unconditionally per command.
    """
    if level is None:
        if config is None:
            from repro.api.config import get_config

            config = get_config()
        level = config.log_level
    if level is None:
        return None
    resolved = _resolve_level(level)
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(resolved)
    return root


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.WARNING,
    **fields: Any,
) -> None:
    """Emit a structured event: ``event key=value ...`` (sorted keys).

    The early ``isEnabledFor`` check keeps disabled logging cheap —
    no string formatting happens unless a handler will see it.
    """
    if not logger.isEnabledFor(level):
        return
    parts = [event]
    parts.extend(f"{key}={fields[key]}" for key in sorted(fields))
    logger.log(level, " ".join(parts))
