"""Zero-dependency hierarchical tracing: spans, buffers, exporters.

A *span* is one timed region — an evalcore network walk, a sweep
point attempt, a serve job's life from enqueue to reply — with a
name, attributes, optional point-in-time events, and the exception
that ended it (if one did).  Spans nest: a ``with span(...)`` block
opened inside another becomes its child via a thread-local stack, so
an exported trace shows *where inside* a slow request the time went.

Timing is monotonic (``time.perf_counter``) so durations and
parent/child containment are exact within a process.  For export,
each process pins a perf-counter epoch to a wall-clock epoch once at
import, and span timestamps are reported as
``epoch_unix + (t0 - epoch_perf)`` — roughly aligning spans from pool
workers with their parent on one timeline without ever mixing clock
sources inside a process.

Like :mod:`repro.obs.metrics`, the span sink — one process-global
:class:`TraceBuffer` — survives ``config_scope`` boundaries; only the
*enabled / trace-dir* state derives from the active
:class:`~repro.api.config.RuntimeConfig` (field ``trace`` / env
``REPRO_TRACE=1``).  Disabled tracing is a guarded no-op: ``span()``
returns a shared :class:`_NullSpan` singleton and records nothing
(pinned by the telemetry-overhead benchmark).

Export formats:

* **JSONL** — one span record per line, appended per-process to
  ``<trace_dir>/spans-<pid>.jsonl`` by :func:`flush` (pool workers
  flush before returning, so no cross-process buffer is needed);
* **Chrome trace-event JSON** — :func:`chrome_trace` /
  :func:`write_chrome_trace` emit the ``chrome://tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_ ``traceEvents`` format, and
  :func:`validate_chrome_trace` checks a payload is well-formed (used
  by both the tests and the CI ``obs-smoke`` job).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.api.config import get_config

__all__ = [
    "Span",
    "TraceBuffer",
    "add_event",
    "capture",
    "chrome_trace",
    "current_span",
    "flush",
    "get_buffer",
    "load_spans",
    "manual_span",
    "span",
    "start_span",
    "traced",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Wall-clock / perf-counter epoch pair, pinned once per process so
#: exported timestamps from different processes land on one timeline.
_EPOCH_UNIX = time.time()
_EPOCH_PERF = time.perf_counter()

_SPAN_IDS = itertools.count(1)


def _wall_ts(t_perf: float) -> float:
    """Map a perf-counter reading onto the process wall-clock epoch."""
    return _EPOCH_UNIX + (t_perf - _EPOCH_PERF)


class TraceBuffer:
    """A thread-safe, append-only in-memory span sink.

    Finished spans land here as plain JSON-able dicts; the buffer
    tracks how many have been flushed to disk so :func:`flush` appends
    only what is new.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []
        self._flushed = 0

    def add(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._spans.append(record)

    def spans(self) -> list[dict[str, Any]]:
        """A copy of every span recorded so far."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._flushed = 0

    def append_jsonl(self, path: str | Path) -> int:
        """Append spans not yet flushed to ``path``; returns how many."""
        with self._lock:
            pending = self._spans[self._flushed :]
            self._flushed = len(self._spans)
        if not pending:
            return 0
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            for record in pending:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(pending)


class _NullSpan:
    """The shared do-nothing span handed out when tracing is off.

    Supports the full :class:`Span` surface so call sites never
    branch on enablement.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def finish(self, error: str | None = None) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One live timed region; append to a buffer when finished.

    Create via :func:`span` (context manager, parented through the
    thread-local stack), :func:`start_span` (manual lifecycle, for
    event-loop code where begin and end live in different callbacks),
    or :func:`manual_span` (manual lifecycle into an explicit buffer).
    """

    __slots__ = (
        "name",
        "attrs",
        "events",
        "span_id",
        "parent_id",
        "_buffer",
        "_t0",
        "_pushed",
        "_done",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any],
        buffer: TraceBuffer,
        parent_id: str | None = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []
        self.span_id = f"{os.getpid()}-{next(_SPAN_IDS)}"
        self.parent_id = parent_id
        self._buffer = buffer
        self._t0: float | None = None
        self._pushed = False
        self._done = False

    # -- annotation ----------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event (a retry, a requeue) to this
        span."""
        event: dict[str, Any] = {
            "name": name,
            "ts": _wall_ts(time.perf_counter()),
        }
        if attrs:
            event["attrs"] = attrs
        self.events.append(event)

    # -- lifecycle -----------------------------------------------------
    def _start(self, push: bool) -> "Span":
        if push:
            stack = _stack()
            if self.parent_id is None and stack:
                self.parent_id = stack[-1].span_id
            stack.append(self)
            self._pushed = True
        self._t0 = time.perf_counter()
        return self

    def __enter__(self) -> "Span":
        return self._start(push=True)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        error = None if exc_type is None else f"{exc_type.__name__}: {exc}"
        self.finish(error=error)
        return False

    def finish(self, error: str | None = None) -> None:
        """Stop the clock and append the span record to its buffer."""
        if self._done or self._t0 is None:
            return
        self._done = True
        t1 = time.perf_counter()
        if self._pushed:
            stack = _stack()
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # pragma: no cover - defensive
                stack.remove(self)
        record: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "ts": _wall_ts(self._t0),
            "dur": t1 - self._t0,
            "status": "error" if error else "ok",
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.events:
            record["events"] = self.events
        if error:
            record["error"] = error
        self._buffer.add(record)


# ----------------------------------------------------------------------
# process state: global buffer + config-derived enablement
# ----------------------------------------------------------------------
_buffer = TraceBuffer()

_UNSET = object()


class _Enabled:
    """Derived per-config enablement: tracing on, spans flushed to
    ``trace_dir`` (``None`` = in-memory only)."""

    __slots__ = ("trace_dir",)

    def __init__(self, trace_dir: str | None) -> None:
        self.trace_dir = trace_dir


#: ``_UNSET`` (re-derive lazily), ``None`` (disabled), or an
#: :class:`_Enabled`.  Mirrors evalcore's derived-memo lifecycle.
_config_state: Any = _UNSET

_tls = threading.local()


def _after_fork() -> None:
    # A forked pool worker inherits a copy of the parent's unflushed
    # spans; those belong to (and are flushed by) the parent process,
    # so the child drops them rather than double-writing.  The child
    # keeps the inherited span *stack*: new worker spans then parent
    # onto the caller's still-open span, linking the processes in the
    # assembled trace.
    _buffer.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork)


def _stack() -> list[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _active_state() -> Any:
    global _config_state
    if _config_state is _UNSET:
        config = get_config()
        _config_state = (
            _Enabled(config.effective_trace_dir()) if config.trace else None
        )
    return _config_state


def tracing_enabled() -> bool:
    """Whether the active config enables tracing (cached)."""
    return _active_state() is not None


def get_buffer() -> TraceBuffer:
    """The span sink currently in effect (the process buffer, or a
    :func:`capture` override)."""
    return _buffer


def current_span() -> Span | None:
    """The innermost open ``with span(...)`` on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


# ----------------------------------------------------------------------
# creating spans
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any) -> "Span | _NullSpan":
    """A context-manager span, parented under the thread's current one.

    ::

        with span("evalcore.sets", layer=spec.name):
            ...

    Records monotonic duration, the given attributes, and — if the
    block raises — the exception (``status="error"``) before
    re-raising.  When tracing is disabled this returns a shared no-op
    singleton.
    """
    if _active_state() is None:
        return _NULL_SPAN
    return Span(name, attrs, _buffer)


def start_span(
    name: str, parent: "Span | None" = None, **attrs: Any
) -> "Span | _NullSpan":
    """A started span with a manual lifecycle (call ``.finish()``).

    Unlike :func:`span` it does *not* join the thread-local stack —
    event-loop code (the serve job table) opens and closes these from
    different callbacks, where a stack would misnest.
    """
    if _active_state() is None:
        return _NULL_SPAN
    sp = Span(
        name,
        attrs,
        _buffer,
        parent_id=parent.span_id if isinstance(parent, Span) else None,
    )
    return sp._start(push=False)


def manual_span(
    name: str,
    buffer: TraceBuffer,
    parent: "Span | None" = None,
    **attrs: Any,
) -> Span:
    """Like :func:`start_span` but into an explicit ``buffer``,
    regardless of the active config (the serve server owns its own
    buffer because its event loop runs outside any config scope)."""
    sp = Span(
        name,
        attrs,
        buffer,
        parent_id=parent.span_id if isinstance(parent, Span) else None,
    )
    return sp._start(push=False)


def add_event(name: str, **attrs: Any) -> None:
    """Attach an event to the current span, if one is open."""
    if _active_state() is None:
        return
    sp = current_span()
    if sp is not None:
        sp.add_event(name, **attrs)


def traced(
    name: str | None = None, **attrs: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator form of :func:`span`::

        @traced("campaign.replay")
        def replay_trajectory(...): ...

    ``name`` defaults to the function's qualified name.
    """
    import functools

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextmanager
def capture(trace_dir: str | None = None) -> Iterator[TraceBuffer]:
    """Force tracing on into a private buffer for the block.

    The profiler uses this to collect spans for one measured region
    without touching (or requiring) the configured trace state::

        with capture() as buf:
            evaluate_network(...)
        cold = [s for s in buf.spans() if s["name"] == "evalcore.sets"]
    """
    global _buffer, _config_state
    saved = (_buffer, _config_state)
    buf = TraceBuffer()
    _buffer = buf
    _config_state = _Enabled(trace_dir)
    try:
        yield buf
    finally:
        _buffer, _config_state = saved


# ----------------------------------------------------------------------
# export / import
# ----------------------------------------------------------------------
def flush() -> Path | None:
    """Append unflushed spans to ``<trace_dir>/spans-<pid>.jsonl``.

    No-op (returning ``None``) when tracing is disabled or no trace
    dir is configured.  Pool workers call this before returning so
    their spans survive the process; the harness calls it once more at
    the end of a run, then merges every per-pid file with
    :func:`load_spans`.
    """
    state = _active_state()
    if state is None or not state.trace_dir:
        return None
    path = Path(state.trace_dir) / f"spans-{os.getpid()}.jsonl"
    if _buffer.append_jsonl(path) == 0 and not path.exists():
        return None
    return path


def load_spans(source: str | Path) -> list[dict[str, Any]]:
    """Read span records back from a JSONL file, or from every
    ``spans-*.jsonl`` under a directory, ordered by timestamp."""
    source = Path(source)
    files = (
        sorted(source.glob("spans-*.jsonl"))
        if source.is_dir()
        else [source]
    )
    spans: list[dict[str, Any]] = []
    for path in files:
        if not path.exists():
            continue
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    spans.sort(key=lambda s: s.get("ts", 0.0))
    return spans


def chrome_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Span records -> Chrome trace-event JSON (``chrome://tracing``).

    Each span becomes a complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur``; span events become instant
    (``"ph": "i"``) events on the same thread track.
    """
    events: list[dict[str, Any]] = []
    for record in spans:
        args = dict(record.get("attrs", {}))
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        if record.get("status") == "error":
            args["error"] = record.get("error", "")
        events.append(
            {
                "ph": "X",
                "name": record["name"],
                "cat": "repro",
                "ts": record["ts"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": record["pid"],
                "tid": record["tid"],
                "args": args,
            }
        )
        for event in record.get("events", ()):
            events.append(
                {
                    "ph": "i",
                    "name": event["name"],
                    "cat": "repro",
                    "s": "t",
                    "ts": event["ts"] * 1e6,
                    "pid": record["pid"],
                    "tid": record["tid"],
                    "args": dict(event.get("attrs", {})),
                }
            )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, spans: list[dict[str, Any]]
) -> Path:
    """Write :func:`chrome_trace` output to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(spans), sort_keys=True), encoding="utf-8"
    )
    return path


#: Slack (µs) for parent/child containment checks: timestamps are
#: wall-epoch floats whose rounding can wobble by a fraction of a µs.
_NEST_SLACK_US = 10.0


def validate_chrome_trace(
    payload: Any, require_nesting: bool = False
) -> list[str]:
    """Well-formedness problems in a Chrome trace payload (``[]`` = OK).

    Checks the ``traceEvents`` envelope, per-event required fields,
    and — for spans carrying ``parent_id`` — that the child interval
    lies inside its parent's.  With ``require_nesting=True`` an
    otherwise-valid trace with no nested span at all is reported too
    (the CI smoke job uses this to prove real hierarchy was emitted).
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a 'traceEvents' key"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' must be a non-empty list"]
    by_id: dict[str, dict[str, Any]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i} missing {key!r}")
        if event.get("ph") == "X":
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(f"event {i} ('X') missing numeric 'dur'")
            elif event["dur"] < 0:
                problems.append(f"event {i} has negative dur")
            span_id = event.get("args", {}).get("span_id")
            if span_id:
                by_id[span_id] = event
    nested = 0
    for span_id, event in by_id.items():
        parent_id = event.get("args", {}).get("parent_id")
        if not parent_id:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span_id} references missing parent {parent_id}"
            )
            continue
        nested += 1
        if event["ts"] + _NEST_SLACK_US < parent["ts"] or (
            event["ts"] + event["dur"]
            > parent["ts"] + parent["dur"] + _NEST_SLACK_US
        ):
            problems.append(
                f"span {span_id} ({event['name']}) is not contained in "
                f"its parent {parent_id} ({parent['name']})"
            )
    if require_nesting and not nested:
        problems.append("no nested spans (expected real hierarchy)")
    return problems


# ----------------------------------------------------------------------
# config hooks (see repro.api.config._DERIVED_STATE_MODULES)
# ----------------------------------------------------------------------
def _on_config_change() -> None:
    """Forget the derived enabled/trace-dir state (the buffer — shared
    cumulative process state — is kept)."""
    global _config_state
    _config_state = _UNSET


def _scope_save() -> Any:
    global _config_state
    state = _config_state
    _config_state = _UNSET
    return state


def _scope_restore(state: Any) -> None:
    global _config_state
    _config_state = state
