"""Observability for the evaluation stack: traces, metrics, logging.

Three zero-dependency modules, all governed by
:class:`~repro.api.config.RuntimeConfig` knobs and all guaranteed
no-ops when disabled (the default):

* :mod:`repro.obs.trace` — hierarchical spans with monotonic timing,
  attributes, and exceptions; JSONL + Chrome ``chrome://tracing``
  exporters (config ``trace``/``trace_dir``, env ``REPRO_TRACE`` /
  ``REPRO_TRACE_DIR``).
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and histograms with ``snapshot/diff/merge`` so pool workers
  ship deltas back like cache stats (config ``metrics``, env
  ``REPRO_METRICS``).
* :mod:`repro.obs.logs` — ``repro.*`` loggers behind a
  ``NullHandler``, one ``configure_logging()`` opt-in, and structured
  ``log_event`` records (config ``log_level``, env
  ``REPRO_LOG_LEVEL``).

See ``docs/observability.md`` for the operator guide.
"""

from repro.obs.logs import ROOT_LOGGER, configure_logging, get_logger, log_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Span,
    TraceBuffer,
    capture,
    chrome_trace,
    load_spans,
    span,
    start_span,
    traced,
    tracing_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "ROOT_LOGGER",
    "MetricsRegistry",
    "Span",
    "TraceBuffer",
    "capture",
    "chrome_trace",
    "configure_logging",
    "get_logger",
    "load_spans",
    "log_event",
    "span",
    "start_span",
    "traced",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
