"""Advisory file locking for multi-process writers.

The cache tiers themselves are lock-free — every record and segment
write is a temp-file ``os.replace`` of an immutable, content-named
file, which POSIX rename atomicity makes safe under any number of
concurrent writers.  What *does* need a lock is the one mutable,
append-in-place file in the stack: a sweep run's manifest journal,
where two appenders interleaving within one line would tear it.

:func:`file_lock` wraps ``fcntl.flock`` on an adjacent ``.lock`` file
with a bounded, polling acquire (a crashed holder's lock dies with
its process — flock locks cannot leak past process exit).  On
platforms without ``fcntl`` the lock degrades to a no-op: single-
process use stays correct, and the journal's per-line checksums catch
(and skip) any torn line a concurrent writer could produce.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = ["LockTimeout", "file_lock", "locking_supported"]


class LockTimeout(TimeoutError):
    """The advisory lock could not be acquired within the timeout."""


def locking_supported() -> bool:
    """Whether :func:`file_lock` actually excludes other processes."""
    return fcntl is not None


@contextmanager
def file_lock(
    path: str | os.PathLike,
    timeout_s: float = 30.0,
    poll_s: float = 0.01,
) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path`` for the block.

    ``path`` names the lock file itself (created empty if missing,
    never deleted — deleting would race fresh acquirers).  Acquisition
    polls with ``LOCK_NB`` so a deadline can be enforced; exceeding
    ``timeout_s`` raises :class:`LockTimeout`.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - off-POSIX degradation
        yield
        return
    fd = os.open(str(target), os.O_CREAT | os.O_RDWR, 0o644)
    try:
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {target} within {timeout_s}s"
                    ) from None
                time.sleep(poll_s)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
