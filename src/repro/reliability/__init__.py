"""repro.reliability — fault tolerance for long-running evaluation jobs.

Four pieces, each usable on its own:

* :mod:`repro.reliability.faults` — a deterministic fault-injection
  seam: a :class:`~repro.reliability.faults.FaultPlan` (parsed from
  the ``REPRO_FAULTS`` config field) seeds injection of worker
  crashes, point errors, point stalls, cache corruption, and slow I/O
  at well-defined sites, so every failure mode the sweep runner and
  the cache stack claim to survive is exercised in tests.
* :mod:`repro.reliability.retry` — :class:`~repro.reliability.retry.
  RetryPolicy` (bounded retries, deterministic jittered backoff) and
  the per-point :func:`~repro.reliability.retry.deadline` enforcement
  the sweep runner wraps around every evaluator call.
* :mod:`repro.reliability.manifest` — :class:`~repro.reliability.
  manifest.RunManifest`, the append-only checksummed journal behind
  ``run_sweep(..., resume=True)``: a killed sweep resumes from its
  last completed point, even with no result cache configured.
* :mod:`repro.reliability.locks` — advisory file locking for
  multi-process writers sharing one journal.

The invariant the whole package serves: a sweep that loses workers,
hits corrupt cache entries, or is killed outright must — once resumed
— produce results bit-identical to an uninterrupted run.  See
``docs/reliability.md``.

Submodules are imported lazily (PEP 562) so that low-level modules
like :mod:`repro.sweep.cache` can import a single submodule without
dragging the rest of the package (and its imports) into their own
import cycle.
"""

from __future__ import annotations

import importlib

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedPointError",
    "InjectedWorkerCrash",
    "LockTimeout",
    "PointTimeoutError",
    "RetryPolicy",
    "RunManifest",
    "deadline",
    "faults",
    "file_lock",
    "locks",
    "manifest",
    "retry",
]

_LAZY = {
    "FaultInjector": ("repro.reliability.faults", "FaultInjector"),
    "FaultPlan": ("repro.reliability.faults", "FaultPlan"),
    "FaultRule": ("repro.reliability.faults", "FaultRule"),
    "InjectedFault": ("repro.reliability.faults", "InjectedFault"),
    "InjectedPointError": ("repro.reliability.faults", "InjectedPointError"),
    "InjectedWorkerCrash": ("repro.reliability.faults", "InjectedWorkerCrash"),
    "LockTimeout": ("repro.reliability.locks", "LockTimeout"),
    "PointTimeoutError": ("repro.reliability.retry", "PointTimeoutError"),
    "RetryPolicy": ("repro.reliability.retry", "RetryPolicy"),
    "RunManifest": ("repro.reliability.manifest", "RunManifest"),
    "deadline": ("repro.reliability.retry", "deadline"),
    "file_lock": ("repro.reliability.locks", "file_lock"),
    "faults": ("repro.reliability.faults", None),
    "locks": ("repro.reliability.locks", None),
    "manifest": ("repro.reliability.manifest", None),
    "retry": ("repro.reliability.retry", None),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.reliability' has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name)
    return module if attr is None else getattr(module, attr)
