"""Deterministic fault injection: one seam for every failure mode.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule` entries, each naming one fault *kind* and the
conditions under which it fires.  The plan travels as a plain string
(the :class:`repro.api.config.RuntimeConfig` ``faults`` field, layered
in from ``REPRO_FAULTS``), so it crosses process-pool boundaries with
the rest of the config and a whole chaos scenario fits on a command
line::

    worker-crash:p=1,match="x":3,max_attempt=1;cache-corrupt:max_fires=1

Fault kinds and the sites that honor them:

``worker-crash``
    The point-evaluation body dies *hard* — ``os._exit`` inside a pool
    worker (producing the ``BrokenProcessPool`` the runner must
    recover from), an :class:`InjectedWorkerCrash` exception when the
    evaluation runs inline.
``point-error``
    The point-evaluation body raises :class:`InjectedPointError` — an
    ordinary retryable evaluator failure.
``point-timeout``
    The point-evaluation body stalls for ``delay`` seconds *inside*
    the per-point deadline, so a configured timeout fires.
``cache-corrupt``
    A just-written cache file (sweep result record or evalcore
    segment) is garbled in place — the torn-write/bit-rot case the
    checksum + quarantine machinery exists for.
``slow-io``
    Cache reads/writes sleep for ``delay`` seconds first.

Rule fields: ``p`` (firing probability, decided by a seeded hash of
the site key — deterministic across runs and processes), ``match`` (a
substring the site key must contain; point sites use the canonical
parameter JSON, cache sites the entry digest), ``max_attempt`` (only
fire while the caller's attempt number is at or below this — how a
test says "crash once, then let the retry succeed"), ``max_fires`` (a
process-local cap on total firings), and ``delay`` (seconds, for the
stall/sleep kinds).

Decisions with ``p < 1`` hash ``(seed, kind, key, attempt)`` — no
global RNG state, so injection is reproducible regardless of
evaluation order, parallelism, or interleaving.  ``max_fires``
counters are process-local by construction (each pool worker counts
its own firings); plans that need cross-process determinism should
pin rules with ``match``/``max_attempt`` instead.

This module never consults the environment itself: the active plan
comes from :func:`repro.api.config.get_config`, which is the
library's single environment read point.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedPointError",
    "InjectedWorkerCrash",
    "active_injector",
    "inject_point_faults",
    "maybe_corrupt_file",
    "maybe_slow_io",
    "maybe_stall",
    "reset_fault_state",
]

#: The fault kinds the injection sites understand.
FAULT_KINDS = (
    "worker-crash",
    "point-error",
    "point-timeout",
    "cache-corrupt",
    "slow-io",
)

#: Exit code an injected worker crash dies with (visible in pool logs).
CRASH_EXIT_CODE = 3


class InjectedFault(RuntimeError):
    """Base class for failures raised by the fault-injection seam."""


class InjectedWorkerCrash(InjectedFault):
    """A ``worker-crash`` fault fired where a hard exit is unsafe."""


class InjectedPointError(InjectedFault):
    """A ``point-error`` fault: an ordinary retryable evaluator failure."""


def _unit(text: str) -> float:
    """Deterministic uniform draw in [0, 1) from a text key."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One fault kind plus its firing conditions (see module docstring)."""

    kind: str
    p: float = 1.0
    match: str = ""
    max_attempt: int | None = None
    max_fires: int | None = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1] (got {self.p})")
        if self.delay_s < 0:
            raise ValueError(f"fault delay must be >= 0 (got {self.delay_s})")

    def to_spec(self) -> str:
        """The rule as one ``REPRO_FAULTS`` segment."""
        parts = []
        if self.p != 1.0:
            parts.append(f"p={self.p}")
        if self.match:
            parts.append(f"match={self.match}")
        if self.max_attempt is not None:
            parts.append(f"max_attempt={self.max_attempt}")
        if self.max_fires is not None:
            parts.append(f"max_fires={self.max_fires}")
        if self.delay_s != 0.05:
            parts.append(f"delay={self.delay_s}")
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault rules."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan | None":
        """Parse a ``REPRO_FAULTS`` spec string; ``None``/empty -> ``None``.

        Grammar: semicolon-separated segments.  ``seed=N`` sets the
        plan seed; every other segment is ``kind`` or
        ``kind:key=value,key=value...`` with keys ``p``, ``match``,
        ``max_attempt``, ``max_fires``, ``delay``.  Values must not
        contain ``,`` or ``;``.
        """
        if not spec:
            return None
        seed = 0
        rules: list[FaultRule] = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                seed = _parse_int(segment[5:], "seed")
                continue
            kind, _, args = segment.partition(":")
            kind = kind.strip()
            kwargs: dict = {}
            if args:
                for pair in args.split(","):
                    key, eq, value = pair.partition("=")
                    key = key.strip()
                    if not eq:
                        raise ValueError(
                            f"fault rule argument {pair!r} is not key=value "
                            f"(in segment {segment!r})"
                        )
                    if key == "p":
                        kwargs["p"] = _parse_float(value, "p")
                    elif key == "match":
                        kwargs["match"] = value
                    elif key == "max_attempt":
                        kwargs["max_attempt"] = _parse_int(value, "max_attempt")
                    elif key == "max_fires":
                        kwargs["max_fires"] = _parse_int(value, "max_fires")
                    elif key == "delay":
                        kwargs["delay_s"] = _parse_float(value, "delay")
                    else:
                        raise ValueError(
                            f"unknown fault rule key {key!r} (in segment "
                            f"{segment!r}); known keys: p, match, "
                            f"max_attempt, max_fires, delay"
                        )
            rules.append(FaultRule(kind=kind, **kwargs))
        return cls(seed=seed, rules=tuple(rules))

    def to_spec(self) -> str:
        """The plan as a ``REPRO_FAULTS`` spec string (parse round-trips)."""
        segments = [rule.to_spec() for rule in self.rules]
        if self.seed:
            segments.insert(0, f"seed={self.seed}")
        return ";".join(segments)


def _parse_int(value: str, name: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"fault rule {name} must be an integer (got {value!r})"
        ) from None


def _parse_float(value: str, name: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"fault rule {name} must be a number (got {value!r})"
        ) from None


class FaultInjector:
    """Runtime state for one plan: per-rule firing counters.

    Counters are process-local; the decision logic itself (``p``,
    ``match``, ``max_attempt``) is stateless and deterministic.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fires: Counter[int] = Counter()

    def decide(self, kind: str, key: str, attempt: int = 1) -> FaultRule | None:
        """The first rule firing for this site, or ``None``."""
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != kind:
                continue
            if rule.match and rule.match not in key:
                continue
            if rule.max_attempt is not None and attempt > rule.max_attempt:
                continue
            if rule.max_fires is not None and self.fires[index] >= rule.max_fires:
                continue
            if rule.p < 1.0:
                draw = _unit(f"{self.plan.seed}|{kind}|{key}|{attempt}")
                if draw >= rule.p:
                    continue
            self.fires[index] += 1
            return rule
        return None


# ----------------------------------------------------------------------
# the active injector (derived from the active RuntimeConfig)
# ----------------------------------------------------------------------
#: Parsed injectors keyed by spec string, so firing counters persist
#: across calls for as long as the same plan stays active.
_injectors: dict[str, FaultInjector] = {}


def active_injector() -> FaultInjector | None:
    """The injector for the active config's ``faults`` spec, or ``None``.

    Cheap when no faults are configured (one config read, no parsing);
    the common production case pays essentially nothing for the seam.
    """
    from repro.api.config import get_config

    spec = get_config().faults
    if not spec:
        return None
    injector = _injectors.get(spec)
    if injector is None:
        plan = FaultPlan.parse(spec)
        if plan is None:
            return None
        injector = _injectors[spec] = FaultInjector(plan)
    return injector


def reset_fault_state() -> None:
    """Drop all firing counters (tests call this between scenarios)."""
    _injectors.clear()


# ----------------------------------------------------------------------
# injection sites
# ----------------------------------------------------------------------
def inject_point_faults(key: str, attempt: int, allow_exit: bool) -> None:
    """The point-evaluation site: worker crashes and point errors.

    ``allow_exit`` is True only inside pool workers, where dying hard
    is the realistic failure (the parent sees ``BrokenProcessPool``);
    inline evaluation raises :class:`InjectedWorkerCrash` instead so
    the test process survives.
    """
    injector = active_injector()
    if injector is None:
        return
    if injector.decide("worker-crash", key, attempt) is not None:
        if allow_exit:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(
            f"injected worker crash for {key} (attempt {attempt})"
        )
    if injector.decide("point-error", key, attempt) is not None:
        raise InjectedPointError(
            f"injected point error for {key} (attempt {attempt})"
        )


def maybe_stall(key: str, attempt: int) -> None:
    """The in-deadline site: a ``point-timeout`` fault stalls here."""
    injector = active_injector()
    if injector is None:
        return
    rule = injector.decide("point-timeout", key, attempt)
    if rule is not None:
        time.sleep(rule.delay_s)


def maybe_slow_io(key: str) -> None:
    """The cache I/O site: a ``slow-io`` fault sleeps before the op."""
    injector = active_injector()
    if injector is None:
        return
    rule = injector.decide("slow-io", key)
    if rule is not None:
        time.sleep(rule.delay_s)


def maybe_corrupt_file(path: str | os.PathLike, key: str) -> bool:
    """The cache write site: a ``cache-corrupt`` fault garbles ``path``.

    The file is truncated to half its length with a garbage prefix —
    enough to break JSON decoding, npz/zip CRCs, and any content
    checksum, exactly like a torn write or bit rot at rest.  Returns
    whether the fault fired.
    """
    injector = active_injector()
    if injector is None:
        return False
    if injector.decide("cache-corrupt", key) is None:
        return False
    target = Path(path)
    try:
        data = target.read_bytes()
        target.write_bytes(b"\x00<injected-corruption>" + data[: len(data) // 2])
    except OSError:
        return False
    return True


def iter_fired(injector: FaultInjector) -> Iterator[tuple[FaultRule, int]]:
    """(rule, fire count) pairs for rules that fired at least once."""
    for index, count in sorted(injector.fires.items()):
        if count:
            yield injector.plan.rules[index], count
