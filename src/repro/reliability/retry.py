"""Retry policy, deterministic jittered backoff, per-point deadlines.

:class:`RetryPolicy` carries everything the sweep runner needs to
decide *whether* and *when* to re-attempt a failed point: a bounded
retry budget, an optional per-point deadline, and exponential backoff
with deterministic jitter.  The jitter is a hash of (seed, point key,
attempt), not a global RNG draw, so two runs of the same sweep back
off identically — reproducibility extends to the failure path.

:func:`deadline` enforces a wall-clock limit around one evaluator
call.  On POSIX main threads it arms a real interval timer
(``SIGALRM``), so a stuck evaluator is *interrupted* — the strong
form a long-running sweep needs.  Anywhere the timer is unavailable
(non-POSIX, non-main-thread) the context degrades to a no-op rather
than killing completed work after the fact; callers can check
:func:`deadline_enforced` when they need to know.
"""

from __future__ import annotations

import hashlib
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PointTimeoutError",
    "RetryPolicy",
    "deadline",
    "deadline_enforced",
]


class PointTimeoutError(TimeoutError):
    """One sweep point exceeded its per-point deadline."""


def _unit(text: str) -> float:
    """Deterministic uniform draw in [0, 1) from a text key."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic jittered exponential backoff.

    ``retries`` is the number of *re*-attempts after the first failure
    (0 = fail on the first error, the historical behavior).
    ``timeout_s`` is the per-attempt deadline, enforced by
    :func:`deadline`.  Backoff for attempt *n* (1-based failure count)
    is ``min(backoff_max_s, backoff_base_s * 2**(n-1))`` scaled by a
    deterministic jitter factor in [0.5, 1.0) derived from
    ``(seed, key, n)`` — concurrent retries of different points
    de-synchronize without any shared RNG state.
    """

    retries: int = 0
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0 (got {self.retries})")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive (got {self.timeout_s})"
            )

    def backoff_s(self, key: str, failure: int) -> float:
        """Delay before re-attempting ``key`` after its Nth failure."""
        if failure < 1:
            return 0.0
        base = min(
            self.backoff_max_s, self.backoff_base_s * (2 ** (failure - 1))
        )
        jitter = 0.5 + 0.5 * _unit(f"{self.seed}|{key}|{failure}")
        return base * jitter

    @classmethod
    def from_config(cls, config, seed: int = 0) -> "RetryPolicy":
        """Policy from a :class:`repro.api.config.RuntimeConfig`."""
        return cls(
            retries=config.retries,
            timeout_s=config.point_timeout_s,
            seed=seed,
        )


def deadline_enforced() -> bool:
    """Whether :func:`deadline` can actually interrupt a stuck call here."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def deadline(seconds: float | None, label: str = "") -> Iterator[None]:
    """Interrupt the block with :class:`PointTimeoutError` after
    ``seconds`` of wall time (see module docstring for the platform
    contract).  ``None`` or non-positive disables enforcement."""
    if not seconds or seconds <= 0 or not deadline_enforced():
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeoutError(
            f"evaluation{f' of {label}' if label else ''} exceeded its "
            f"{seconds}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
