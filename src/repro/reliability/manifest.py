"""The sweep run manifest: an append-only, checksummed JSONL journal.

One manifest records one logical sweep run — identified by a *run
key* hashed from the evaluator, the code-version key, and every
point's cache digest, so a changed axis value or a code bump
addresses a fresh journal automatically.  The runner appends one line
per completed point (digest, grid index, the point's JSON values) plus
start/end/fault event lines as the run progresses.

Crash safety comes from the format, not from fsync discipline: every
line carries a checksum over its own canonical JSON, appends go
through an advisory :func:`~repro.reliability.locks.file_lock` (one
writer at a time), and :meth:`RunManifest.load` simply *skips* any
line that is torn, truncated, or fails its checksum.  Losing the tail
of a journal therefore costs at most the re-evaluation of the points
whose lines were lost — never a wrong result, because the values
recorded are exactly the JSON-round-tripped values a result cache
would have stored, and a resumed run restores them bit-identically.

The manifest deliberately duplicates completed values rather than
referencing the result cache: ``run_sweep(..., resume=True)`` then
works even for sweeps configured with *no* cache, and when both
exist the runner uses the manifest to heal cache entries lost to
quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.reliability.locks import file_lock
from repro.sweep.spec import canonical_json

__all__ = ["ManifestState", "RunManifest", "run_key"]


def run_key(
    name: str, evaluator: str, version: str, digests: Iterable[str]
) -> str:
    """The journal identity for one (spec, code-version) sweep run."""
    material = canonical_json(
        {
            "sweep": name,
            "evaluator": evaluator,
            "version": version,
            "digests": sorted(digests),
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()[:32]


def _line_sha(record: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(record).encode()).hexdigest()[:16]


@dataclass
class ManifestState:
    """Everything a journal replay recovered."""

    #: digest -> the completed point's JSON values.
    points: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: non-point event records, in journal order.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: lines dropped as torn/corrupt (expected after a hard kill).
    skipped: int = 0


class RunManifest:
    """One run's journal file (see module docstring)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Discard the journal (``resume=False`` starts from scratch)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        line = canonical_json({**record, "sha": _line_sha(record)})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with file_lock(self.lock_path):
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    def append_point(
        self, digest: str, index: int, values: Mapping[str, Any]
    ) -> None:
        """Journal one completed point (values are JSON-able already)."""
        self._append(
            {
                "t": "point",
                "digest": digest,
                "index": index,
                "values": dict(values),
            }
        )

    def append_event(self, kind: str, **details: Any) -> None:
        """Journal a run-lifecycle or reliability event."""
        self._append({"t": kind, **details})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def load(self) -> ManifestState:
        """Replay the journal, skipping torn or checksum-failed lines."""
        state = ManifestState()
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return state
        for raw in text.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                state.skipped += 1
                continue
            if not isinstance(record, dict) or "sha" not in record:
                state.skipped += 1
                continue
            sha = record.pop("sha")
            try:
                expected = _line_sha(record)
            except TypeError:
                state.skipped += 1
                continue
            if sha != expected:
                state.skipped += 1
                continue
            if record.get("t") == "point":
                digest = record.get("digest")
                values = record.get("values")
                if isinstance(digest, str) and isinstance(values, dict):
                    state.points[digest] = values
                else:
                    state.skipped += 1
            else:
                state.events.append(record)
        return state
