"""Energy model: DRAM / GLB / RF / MAC accounting per phase.

A first-order hierarchical traffic model in the spirit of the paper's
extended Timeloop + Accelergy flow:

* **MAC** — one event per surviving multiply-accumulate.
* **RF** — each MAC reads two operands and updates a partial sum from
  the PE-local register file (~3 word events per MAC).
* **GLB** — refills of the per-PE tiles.  Weights are re-fetched once
  per minibatch tile (KN/CN), once total (CK, truly stationary), or
  once per spatial set (PQ); activations are re-fetched once per
  channel-tile pass; outputs spill once.  Sparse tensors move in CSB
  form (values + 1/32 word of mask per dense position).
* **DRAM** — each phase streams its operand tensors once: weights
  compressed, activations dense for the immediate next layer plus
  compressed for the weight-update reuse (the Gist-style scheme of
  Section IV-A), gradients filtered by the QE unit on the way out.

The Procrustes-specific events (WR regeneration, QE updates) are
charged to ``overhead`` and are negligible by construction, matching
Table III.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.mapping import spatial_dims
from repro.hw.config import ArchConfig
from repro.hw.energy import EnergyBreakdown, EnergyTable
from repro.workloads.phases import PhaseOp
from repro.workloads.sparsity import LayerSparsity, NetworkSparsity

__all__ = ["layer_phase_energy", "network_energy"]

#: Average RF word events per MAC (two operand reads + psum update
#: amortized over the stationary operand's residence).
RF_EVENTS_PER_MAC = 3.0

#: Mask overhead of the CSB format: one bit per dense position.
MASK_WORDS_PER_DENSE = 1.0 / 32.0

_PJ = 1e-12


def _weight_refetch(op: PhaseOp, mapping: str, arch: ArchConfig) -> float:
    """How many times each weight word crosses GLB->RF."""
    dims = spatial_dims(op, mapping)
    if mapping in ("KN", "CN"):
        return max(1.0, np.ceil(dims.size2 / arch.pe_cols))
    if mapping == "CK":
        return 1.0
    # PQ: weights stream to the array once per spatial working set.
    p, q = op.spatial
    return max(
        1.0,
        np.ceil(p / arch.pe_rows) * np.ceil(q / arch.pe_cols),
    )


def _iact_refetch(op: PhaseOp, mapping: str, arch: ArchConfig) -> float:
    """How many times each input-activation word crosses GLB->RF."""
    if mapping in ("KN", "CN", "CK"):
        dims = spatial_dims(op, mapping)
        channel_dim = dims.size1 if mapping != "CK" else dims.size2
        return max(1.0, np.ceil(channel_dim / arch.pe_rows))
    return 1.0  # PQ: activation-stationary


def layer_phase_energy(
    op: PhaseOp,
    mapping: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    table: EnergyTable,
    sparse: bool = True,
    macs: float | None = None,
) -> EnergyBreakdown:
    """Energy of one layer in one phase for one training iteration.

    ``macs`` is the surviving MAC count to charge compute and RF events
    for.  The evaluation core passes the count sampled from the shared
    working sets (so latency and energy agree exactly); when omitted,
    the expected count (dense MACs times operand density) is used.
    """
    layer = op.layer
    n = op.n
    weight_density = ls.weight_density if sparse else 1.0
    iact_density = ls.iact_density if sparse else 1.0
    mac_density = weight_density if op.sparse_operand == "weights" else iact_density

    if macs is None:
        macs = op.dense_macs * mac_density
    glb_pj = table.glb_word_pj_at(arch.glb_bytes)

    # --- compute + RF -------------------------------------------------
    mac_j = macs * table.mac_fp32_pj * _PJ
    rf_j = macs * RF_EVENTS_PER_MAC * table.rf_word_pj * _PJ

    # --- GLB traffic ---------------------------------------------------
    weight_words = layer.weight_count * (
        weight_density + MASK_WORDS_PER_DENSE if sparse else 1.0
    )
    iact_words = layer.iact_count(n) * (
        iact_density + MASK_WORDS_PER_DENSE
        if sparse and op.phase == "wu"
        else 1.0
    )
    oact_words = layer.oact_count(n)
    glb_events = (
        weight_words * _weight_refetch(op, mapping, arch)
        + iact_words * _iact_refetch(op, mapping, arch)
        + oact_words * 2.0  # psum write + downstream read
    )
    glb_j = glb_events * glb_pj * _PJ

    # --- DRAM traffic ----------------------------------------------------
    # Activations cross DRAM in the compressed zero-free format of
    # Section IV-A (dense only for immediate on-chip reuse); loss
    # gradients dL/dy and dL/dx stay dense because batch normalization
    # destroys their sparsity (Section II-B).
    act_ratio = iact_density + MASK_WORDS_PER_DENSE if sparse else 1.0
    dram_words = weight_words  # weights (or gradients) stream once
    if op.phase == "fw":
        # Read compressed x (previous layer's post-ReLU output), write
        # y compressed for both the next layer and the wu-phase reuse.
        dram_words += (layer.iact_count(n) + oact_words) * act_ratio
    elif op.phase == "bw":
        # Read dL/dy, write dL/dx (both dense).
        dram_words += oact_words + layer.iact_count(n)
    else:  # wu
        # Read compressed x and dense dL/dy; write back surviving
        # accumulated gradients (the QE unit filters the rest).
        dram_words += iact_words + oact_words + weight_words
    dram_j = dram_words * table.dram_word_pj * _PJ

    # --- Procrustes unit overheads --------------------------------------
    overhead_j = 0.0
    if arch.sparse_training_support:
        if op.phase in ("fw", "bw"):
            overhead_j += layer.weight_count * table.wr_regen_pj * _PJ
        else:
            overhead_j += layer.weight_count * table.qe_update_pj * _PJ

    return EnergyBreakdown(
        dram_j=dram_j,
        glb_j=glb_j,
        rf_j=rf_j,
        mac_j=mac_j,
        overhead_j=overhead_j,
    )


def network_energy(
    profile: NetworkSparsity,
    mapping: str,
    arch: ArchConfig,
    n: int,
    table: EnergyTable,
    sparse: bool = True,
    phases: tuple[str, ...] = ("fw", "bw", "wu"),
    seed: int = 0,
    balance: bool = True,
    config=None,
) -> dict[str, EnergyBreakdown]:
    """Per-phase energy of one training iteration of a network.

    A thin wrapper over the single-pass evaluation core: MAC and RF
    events are charged for the non-zeros *sampled into the working
    sets* under ``seed`` — the same sets the latency model times, so
    latency-side and energy-side MAC counts agree per layer (and the
    historical asymmetry where the energy walk re-derived densities
    without a seed is gone).  Balancing never changes a set's total
    MACs, so ``balance`` only needs to match the latency call when the
    memoized sets should be shared between the two.
    """
    from repro.dataflow.evalcore import evaluate_network  # local: avoid cycle

    evaluation = evaluate_network(
        profile,
        mapping,
        arch,
        n,
        table=table,
        sparse=sparse,
        balance=balance,
        seed=seed,
        phases=phases,
        config=config,
    )
    return evaluation.phase_energy()
