"""Spatial mappings of the operation space onto the PE array.

A mapping names the two loop dimensions distributed across the array
(Section II-C): ``CK`` is the classic weight-stationary mapping of
Figure 3, ``KN``/``CN`` are the spatial-minibatch mappings of
Figure 11, and ``PQ`` is the activation-stationary mapping.  The
mapping names are *phase-relative*: in the backward pass the layer's
input channels play the K role (the backward convolution produces
dL/dx with C channels), matching the tables in Figures 3 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.interconnect import traffic_pattern
from repro.workloads.phases import PhaseOp

__all__ = ["MAPPINGS", "Mapping", "spatial_dims", "allowed_balancing"]

MAPPINGS = ("PQ", "CK", "CN", "KN")


@dataclass(frozen=True)
class Mapping:
    """A named spatial mapping with its phase-relative dimension sizes."""

    name: str
    dim1: str  # loop dimension on array rows
    dim2: str  # loop dimension on array cols
    size1: int
    size2: int


def spatial_dims(op: PhaseOp, mapping: str) -> Mapping:
    """Resolve a mapping name to its dimensions for one phase op."""
    if mapping == "KN":
        return Mapping("KN", "out_ch", "N", op.out_channels, op.n)
    if mapping == "CN":
        return Mapping("CN", "in_ch", "N", op.in_channels, op.n)
    if mapping == "CK":
        return Mapping("CK", "in_ch", "out_ch", op.in_channels, op.out_channels)
    if mapping == "PQ":
        p, q = op.spatial
        return Mapping("PQ", "P", "Q", p, q)
    raise ValueError(f"unknown mapping {mapping!r} (expected one of {MAPPINGS})")


def allowed_balancing(mapping: str, phase: str) -> str:
    """Which balancing the simple 3-interconnect fabric supports.

    * ``KN``/``CN`` — half-tile balancing along the sparse dimension
      (the paper's scheme), on the simple fabric.
    * ``CK`` — balancing requires the complex interconnect (Figure 10);
      following Figure 19 we model it as perfect chip-wide balancing,
      flagged as needing that extra hardware.
    * ``PQ`` — naturally balanced in fw/bw (every PE sees the whole
      filter set); unbalanceable in wu.
    """
    if mapping in ("KN", "CN"):
        return "half"
    if mapping == "CK":
        return "perfect"
    pattern = traffic_pattern(mapping, phase)
    if pattern.needs_complex_interconnect_for_balancing:
        return "none"
    return "none"  # PQ fw/bw needs no balancing; work is uniform
