"""Cycle-level latency model.

Execution is synchronized per working set (Figure 4): the array moves
to the next set only when the slowest PE finishes, so a layer's cycles
are the sum over sets of the per-set maximum work.  Idle PEs (spatial
dimensions smaller than the array, cross-group channel pairs, partial
edge tiles) inflate latency naturally because the same work spreads
over fewer PEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.mapping import allowed_balancing
from repro.dataflow.tiling import SetStats, build_sets
from repro.hw.config import ArchConfig
from repro.workloads.phases import PHASES, phase_op
from repro.workloads.sparsity import NetworkSparsity

__all__ = ["LayerLatency", "PhaseLatency", "network_latency"]


@dataclass
class LayerLatency:
    """One layer's cycles and working-set statistics for one phase."""

    layer_name: str
    cycles: float
    macs: float
    sets: SetStats

    @property
    def macs_per_cycle(self) -> float:
        """Achieved throughput; divide by the PE count for utilization."""
        return self.macs / max(self.cycles, 1.0)


@dataclass
class PhaseLatency:
    """Cycles per phase for a whole network under one mapping."""

    mapping: str
    sparse: bool
    balanced: bool
    cycles: dict[str, float] = field(default_factory=dict)
    layers: dict[str, list[LayerLatency]] = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def overheads(self, phase: str | None = None) -> np.ndarray:
        """Per-working-set imbalance overheads (Figures 5/13)."""
        phases = [phase] if phase else list(self.layers)
        parts = [
            layer.sets.overheads()
            for ph in phases
            for layer in self.layers.get(ph, [])
        ]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)


def network_latency(
    profile: NetworkSparsity,
    mapping: str,
    arch: ArchConfig,
    n: int,
    sparse: bool = True,
    balance: bool = True,
    seed: int = 0,
    phases: tuple[str, ...] = PHASES,
) -> PhaseLatency:
    """Cycles for one training iteration of a network.

    ``balance=True`` applies the strongest balancing the mapping
    supports (half-tile for KN/CN, chip-wide for CK, none for PQ).
    """
    rng = np.random.default_rng(seed)
    result = PhaseLatency(mapping=mapping, sparse=sparse, balanced=balance)
    for phase in phases:
        total = 0.0
        layer_results = []
        for ls in profile.layers:
            op = phase_op(ls.layer, phase, n)
            mode = allowed_balancing(mapping, phase) if balance else "none"
            sets = build_sets(
                op, mapping, arch, ls, rng, sparse=sparse, balance=mode
            )
            cycles = sets.total_cycles(arch.macs_per_pe_per_cycle)
            total += cycles
            layer_results.append(
                LayerLatency(
                    layer_name=ls.layer.name,
                    cycles=cycles,
                    macs=sets.total_macs(),
                    sets=sets,
                )
            )
        result.cycles[phase] = total
        result.layers[phase] = layer_results
    return result
