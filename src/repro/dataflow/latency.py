"""Cycle-level latency model.

Execution is synchronized per working set (Figure 4): the array moves
to the next set only when the slowest PE finishes, so a layer's cycles
are the sum over sets of the per-set maximum work.  Idle PEs (spatial
dimensions smaller than the array, cross-group channel pairs, partial
edge tiles) inflate latency naturally because the same work spreads
over fewer PEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.evalcore import NetworkEval, evaluate_network
from repro.dataflow.tiling import SetStats
from repro.hw.config import ArchConfig
from repro.workloads.phases import PHASES
from repro.workloads.sparsity import NetworkSparsity

__all__ = [
    "LayerLatency",
    "PhaseLatency",
    "network_latency",
    "phase_latency_from_eval",
]


@dataclass
class LayerLatency:
    """One layer's cycles and working-set statistics for one phase."""

    layer_name: str
    cycles: float
    macs: float
    sets: SetStats

    @property
    def macs_per_cycle(self) -> float:
        """Achieved throughput; divide by the PE count for utilization."""
        return self.macs / max(self.cycles, 1.0)


@dataclass
class PhaseLatency:
    """Cycles per phase for a whole network under one mapping."""

    mapping: str
    sparse: bool
    balanced: bool
    cycles: dict[str, float] = field(default_factory=dict)
    layers: dict[str, list[LayerLatency]] = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def overheads(self, phase: str | None = None) -> np.ndarray:
        """Per-working-set imbalance overheads (Figures 5/13)."""
        phases = [phase] if phase else list(self.layers)
        parts = [
            layer.sets.overheads()
            for ph in phases
            for layer in self.layers.get(ph, [])
        ]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)


def phase_latency_from_eval(evaluation: NetworkEval) -> PhaseLatency:
    """Assemble the latency view of one single-pass evaluation."""
    result = PhaseLatency(
        mapping=evaluation.mapping,
        sparse=evaluation.sparse,
        balanced=evaluation.balanced,
    )
    for phase, rows in evaluation.layers.items():
        result.layers[phase] = [
            LayerLatency(
                layer_name=row.layer_name,
                cycles=row.cycles,
                macs=row.macs,
                sets=row.sets,
            )
            for row in rows
        ]
        result.cycles[phase] = sum(row.cycles for row in rows)
    return result


def network_latency(
    profile: NetworkSparsity,
    mapping: str,
    arch: ArchConfig,
    n: int,
    sparse: bool = True,
    balance: bool = True,
    seed: int = 0,
    phases: tuple[str, ...] = PHASES,
    config=None,
) -> PhaseLatency:
    """Cycles for one training iteration of a network.

    ``balance=True`` applies the strongest balancing the mapping
    supports (half-tile for KN/CN, chip-wide for CK, none for PQ).
    A thin wrapper over :func:`repro.dataflow.evalcore.evaluate_network`
    (same sets, memoized by content); each (layer, phase)'s sampling
    stream is derived from its content key, so a layer's sets depend
    only on its own description and the seed, not on evaluation order.
    ``config`` (a :class:`repro.api.config.RuntimeConfig`) scopes this
    one call's memo and sampling mode.
    """
    evaluation = evaluate_network(
        profile,
        mapping,
        arch,
        n,
        table=None,
        sparse=sparse,
        balance=balance,
        seed=seed,
        phases=phases,
        config=config,
    )
    return phase_latency_from_eval(evaluation)
