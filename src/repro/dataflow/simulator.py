"""Top-level accelerator simulation: one call per experiment condition.

One :func:`repro.dataflow.evalcore.evaluate_network` walk produces the
quantities the paper plots: per-phase cycles and per-phase energy
breakdowns for a (network, mapping, density, array size) condition.
The working sets are built once per (layer, phase) and feed both the
latency and the energy view, so the two always agree on the sampled
non-zeros; layer-level memoization makes repeated conditions (sweep
grids, explorer candidates sharing layers) nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.batcheval import MappingCandidate, evaluate_candidates
from repro.dataflow.evalcore import evaluate_network
from repro.dataflow.latency import PhaseLatency, phase_latency_from_eval
from repro.hw.config import ArchConfig
from repro.hw.energy import DEFAULT_ENERGY_TABLE, EnergyBreakdown, EnergyTable
from repro.workloads.phases import PHASES
from repro.workloads.sparsity import NetworkSparsity

__all__ = ["SimulationResult", "simulate", "simulate_candidates"]


@dataclass
class SimulationResult:
    """One training iteration's cost under one condition."""

    network: str
    mapping: str
    sparse: bool
    arch: ArchConfig
    latency: PhaseLatency
    energy: dict[str, EnergyBreakdown]

    @property
    def total_cycles(self) -> float:
        return self.latency.total_cycles

    @property
    def total_energy_j(self) -> float:
        return sum(e.total_j for e in self.energy.values())

    def cycles_by_phase(self) -> dict[str, float]:
        return dict(self.latency.cycles)

    def energy_by_phase(self) -> dict[str, float]:
        return {phase: e.total_j for phase, e in self.energy.items()}

    def energy_components(self) -> dict[str, float]:
        """Whole-iteration DRAM/GLB/RF/MAC split (Figure 17's stacks)."""
        total = EnergyBreakdown()
        for e in self.energy.values():
            total = total + e
        return total.as_dict()


def simulate(
    profile: NetworkSparsity,
    mapping: str = "KN",
    arch: ArchConfig | None = None,
    n: int = 64,
    sparse: bool = True,
    balance: bool = True,
    table: EnergyTable | None = None,
    seed: int = 0,
    phases: tuple[str, ...] = PHASES,
    config=None,
) -> SimulationResult:
    """Simulate one training iteration of ``profile``'s network.

    The dense baseline is obtained with ``sparse=False`` (densities all
    treated as 1); Procrustes is ``sparse=True, balance=True`` with a
    sparse profile.  ``config`` (a
    :class:`repro.api.config.RuntimeConfig`) runs this call under an
    explicit memo/sampling configuration; omitted, the process-active
    config governs.
    """
    from repro.hw.config import PROCRUSTES_16x16

    arch = arch or PROCRUSTES_16x16
    table = table or DEFAULT_ENERGY_TABLE
    evaluation = evaluate_network(
        profile,
        mapping,
        arch,
        n,
        table=table,
        sparse=sparse,
        balance=balance,
        seed=seed,
        phases=phases,
        config=config,
    )
    latency = phase_latency_from_eval(evaluation)
    energy = evaluation.phase_energy()
    return SimulationResult(
        network=profile.name,
        mapping=mapping,
        sparse=sparse,
        arch=arch,
        latency=latency,
        energy=energy,
    )


def simulate_candidates(
    profile: NetworkSparsity,
    candidates: list[MappingCandidate],
    table: EnergyTable | None = None,
    phases: tuple[str, ...] = PHASES,
    config=None,
) -> list[SimulationResult]:
    """Simulate many candidates of one network in a single pass.

    The batch counterpart of :func:`simulate`:
    :func:`~repro.dataflow.batcheval.evaluate_candidates` dedups the
    layer-level working-set builds across the candidate list, probes
    and stores the memo in bulk, and runs remaining builds through the
    batched kernels — then each candidate's evaluation rolls up into a
    :class:`SimulationResult` exactly as the looped path does.  Every
    returned result is bit-identical to the corresponding
    ``simulate(profile, c.mapping, arch=c.arch, ...)`` call.
    """
    table = table or DEFAULT_ENERGY_TABLE
    evaluations = evaluate_candidates(
        profile,
        candidates,
        table=table,
        phases=phases,
        config=config,
    )
    return [
        SimulationResult(
            network=profile.name,
            mapping=cand.mapping,
            sparse=cand.sparse,
            arch=cand.arch,
            latency=phase_latency_from_eval(evaluation),
            energy=evaluation.phase_energy(),
        )
        for cand, evaluation in zip(candidates, evaluations)
    ]
