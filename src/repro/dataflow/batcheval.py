"""Multi-candidate evaluation: many mappings of one network, one pass.

Design-space results (Figures 15-20) need dozens to hundreds of
mapping/arch candidates evaluated against the *same* network.  The
PR-3 :func:`~repro.dataflow.evalcore.evaluate_network` walks one
candidate per call, so a 120-candidate explore is 120 sequential
walks — each paying its own working-set builds, its own per-record
JSON disk writes, and its own Python loop overhead, even though the
candidates overlap heavily at the layer level.

:func:`evaluate_candidates` evaluates a whole candidate list in one
pass over the shared structure:

1. **Dedup by content key.**  Every (candidate, phase, layer) slot is
   addressed by the same :func:`~repro.dataflow.evalcore.layer_phase_key`
   digest the looped path uses, so candidates that agree on everything
   the sets depend on (GLB capacity, for one, does not matter) collapse
   to a single build — and batched and looped evaluation share memo
   entries in both directions.
2. **Bulk memo I/O.**  One :meth:`EvalMemo.get_many` probes all tiers
   for every unique digest at once, and one :meth:`EvalMemo.put_many`
   lands all misses in a single binary segment write
   (:class:`~repro.dataflow.evalcore.SegmentStore`) instead of one
   JSON file per record.
3. **Batched kernels.**  Remaining misses that share a (phase op,
   mapping, balance, arch-signature) condition — same layer, different
   seeds — run through :func:`~repro.dataflow.tiling.build_sets_batch`
   with a leading candidate axis, each job drawing from its own
   digest-seeded stream so every slice is bit-identical to the
   single-candidate build.

The result is a list of :class:`~repro.dataflow.evalcore.NetworkEval`
objects, one per candidate and field-for-field identical to what
``evaluate_network`` returns for that candidate — the parity suite
asserts this across mappings, phases, balance and sampling modes.

Under :func:`~repro.dataflow.evalcore.reference_implementation` the
batch path degrades to per-candidate reference builds (loop kernels,
exact sampling, no memo), preserving the ground-truth contract.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.api.config import RuntimeConfig
from repro.dataflow import evalcore, sampling
from repro.dataflow.energy_model import layer_phase_energy
from repro.dataflow.evalcore import (
    EvalMemo,
    EvalTimings,
    LayerPhaseEval,
    NetworkEval,
    layer_phase_key,
    memo_for_config,
)
from repro.dataflow.mapping import allowed_balancing
from repro.dataflow.tiling import (
    SetStats,
    build_sets_batch,
    build_sets_reference,
)
from repro.hw.config import ArchConfig
from repro.obs.trace import span as _span
from repro.workloads.phases import PHASES, phase_op
from repro.workloads.sparsity import LayerSparsity, NetworkSparsity

__all__ = [
    "MappingCandidate",
    "evaluate_candidates",
]

#: Shared "caller did not pass a memo" sentinel (distinct from None,
#: which means "explicitly no memo").
_UNSET = evalcore._UNSET


@dataclass(frozen=True)
class MappingCandidate:
    """One point of the candidate axis: how to run the fixed network.

    Everything :func:`~repro.dataflow.evalcore.evaluate_network` takes
    per call except the network profile, the energy table, and the
    phase list — those are shared across the whole batch.
    """

    mapping: str
    arch: ArchConfig
    n: int = 64
    sparse: bool = True
    balance: bool = True
    seed: int = 0


@dataclass
class _BuildJob:
    """Everything needed to build the sets behind one unique digest."""

    ls: LayerSparsity
    layer_index: int
    phase: str
    mapping: str
    arch: ArchConfig
    n: int
    sparse: bool
    balance_mode: str


@dataclass
class _Slot:
    """One (candidate, phase, layer) cell, resolved by digest."""

    digest: str
    ls: LayerSparsity


def _group_key(job: _BuildJob) -> tuple:
    """Jobs that may share one :func:`build_sets_batch` call.

    Must pin everything the batched kernels treat as common structure:
    the phase op (layer index stands in for the layer, and ``n``), the
    mapping, the balance mode, sparsity, and the tiling-relevant arch
    fields.  Jobs inside a group then differ only in their
    digest-seeded random streams.
    """
    return (
        job.phase,
        job.layer_index,
        job.mapping,
        job.balance_mode,
        job.sparse,
        job.n,
        evalcore._arch_signature(job.arch),
    )


def evaluate_candidates(
    profile: NetworkSparsity,
    candidates: list[MappingCandidate],
    table=None,
    phases: tuple[str, ...] = PHASES,
    memo: EvalMemo | None | object = _UNSET,
    timings: EvalTimings | None = None,
    config: RuntimeConfig | None = None,
) -> list[NetworkEval]:
    """Evaluate many candidates of one network in a single pass.

    Returns one :class:`NetworkEval` per candidate, in candidate
    order, each bit-identical to
    ``evaluate_network(profile, c.mapping, c.arch, c.n, table, ...)``
    for the corresponding candidate ``c``.  See the module docstring
    for how the pass shares work across candidates.
    """
    if config is not None and memo is _UNSET:
        memo = memo_for_config(config)
    if memo is _UNSET:
        memo = evalcore.get_memo()
    if evalcore.using_reference():
        memo = None
    sampling_ctx = (
        sampling.sampling_mode(config.exact_sampling)
        if config is not None and not evalcore.using_reference()
        else nullcontext()
    )
    batch_span = _span(
        "evalcore.evaluate_candidates",
        network=profile.name,
        candidates=len(candidates),
    )
    with batch_span, sampling_ctx:
        start = time.perf_counter()
        # Pass 1: address every (candidate, phase, layer) slot by its
        # content digest; first sight of a digest records its build job.
        slots: list[dict[str, list[_Slot]]] = []
        jobs: dict[str, _BuildJob] = {}
        for cand in candidates:
            cand_slots: dict[str, list[_Slot]] = {}
            for phase in phases:
                mode = (
                    allowed_balancing(cand.mapping, phase)
                    if cand.balance
                    else "none"
                )
                rows: list[_Slot] = []
                for j, ls in enumerate(profile.layers):
                    digest = layer_phase_key(
                        ls,
                        phase,
                        cand.mapping,
                        cand.arch,
                        cand.n,
                        cand.sparse,
                        mode,
                        cand.seed,
                    )
                    rows.append(_Slot(digest, ls))
                    if digest not in jobs:
                        jobs[digest] = _BuildJob(
                            ls=ls,
                            layer_index=j,
                            phase=phase,
                            mapping=cand.mapping,
                            arch=cand.arch,
                            n=cand.n,
                            sparse=cand.sparse,
                            balance_mode=mode,
                        )
                cand_slots[phase] = rows
            slots.append(cand_slots)

        # Pass 2: one bulk probe of every memo tier.
        sets_by_digest: dict[str, SetStats] = {}
        if memo is not None:
            sets_by_digest = memo.get_many(list(jobs))

        # Pass 3: batched builds for the misses, grouped by condition.
        groups: dict[tuple, list[str]] = {}
        for digest, job in jobs.items():
            if digest not in sets_by_digest:
                groups.setdefault(_group_key(job), []).append(digest)
        fresh: list[tuple[str, SetStats]] = []
        for digests in groups.values():
            job = jobs[digests[0]]
            op = phase_op(job.ls.layer, job.phase, job.n)
            if evalcore.using_reference():
                built = [
                    build_sets_reference(
                        op,
                        job.mapping,
                        job.arch,
                        jobs[d].ls,
                        np.random.default_rng(int(d[:16], 16)),
                        sparse=job.sparse,
                        balance=job.balance_mode,
                    )
                    for d in digests
                ]
            else:
                built = build_sets_batch(
                    op,
                    job.mapping,
                    job.arch,
                    [
                        (
                            jobs[d].ls,
                            np.random.default_rng(int(d[:16], 16)),
                        )
                        for d in digests
                    ],
                    sparse=job.sparse,
                    balance=job.balance_mode,
                )
            for digest, sets in zip(digests, built):
                sets_by_digest[digest] = sets
                fresh.append((digest, sets))
        if memo is not None and fresh:
            memo.put_many(fresh)
        if timings is not None:
            timings.add("sets", time.perf_counter() - start)

        # Pass 4: assemble per-candidate results.  Cycles/MACs are pure
        # functions of the sets; energy additionally depends on the
        # full arch (GLB capacity matters here) and mapping, so both
        # are memoized across candidates at their true granularity.
        start = time.perf_counter()
        macs_cache: dict[str, float] = {}
        energy_cache: dict[tuple, object] = {}
        results: list[NetworkEval] = []
        for cand, cand_slots in zip(candidates, slots):
            evaluation = NetworkEval(
                network=profile.name,
                mapping=cand.mapping,
                sparse=cand.sparse,
                balanced=cand.balance,
                arch=cand.arch,
                seed=cand.seed,
            )
            for phase, row_slots in cand_slots.items():
                rows: list[LayerPhaseEval] = []
                for slot in row_slots:
                    sets = sets_by_digest[slot.digest]
                    cycles = sets.total_cycles(
                        cand.arch.macs_per_pe_per_cycle
                    )
                    macs = macs_cache.get(slot.digest)
                    if macs is None:
                        macs = sets.total_macs()
                        macs_cache[slot.digest] = macs
                    energy = None
                    if table is not None:
                        ekey = (
                            slot.digest,
                            cand.mapping,
                            cand.arch,
                            cand.sparse,
                        )
                        energy = energy_cache.get(ekey)
                        if energy is None:
                            op = phase_op(slot.ls.layer, phase, cand.n)
                            energy = layer_phase_energy(
                                op,
                                cand.mapping,
                                cand.arch,
                                slot.ls,
                                table,
                                sparse=cand.sparse,
                                macs=macs,
                            )
                            energy_cache[ekey] = energy
                    rows.append(
                        LayerPhaseEval(
                            layer_name=slot.ls.layer.name,
                            phase=phase,
                            cycles=cycles,
                            macs=macs,
                            sets=sets,
                            energy=energy,
                        )
                    )
                evaluation.layers[phase] = rows
            results.append(evaluation)
        if timings is not None and table is not None:
            timings.add("energy", time.perf_counter() - start)
    return results
