"""Moment-matched fast sampling for the working-set models.

The analytical simulator never materializes boolean masks; it *samples*
tile non-zero counts (binomial within a chunk) and intra-tile density
variation (Beta draws).  Profiling a VGG-S iteration shows those two
generator calls — not the surrounding array math — dominating the hot
path: ``Generator.binomial`` and ``Generator.beta`` cost hundreds of
nanoseconds per element, an order of magnitude above a Gaussian draw.

For the regimes the simulator actually samples in (chunk trials in the
tens to hundreds, Beta concentrations in the tens) the central limit
theorem makes a moment-matched Gaussian indistinguishable in every
statistic the model consumes (per-set max/mean/sum work), so the
helpers here draw from ``standard_normal`` and fall back to the exact
distribution only where the approximation is known to be poor — tiny
expected counts, near-saturated probabilities, small Beta shapes — or
when the draw is too small for the switch to matter.

The sampling mode is layered: an explicit process override
(``set_exact_sampling(True)`` / the ``sampling_mode`` context) wins;
otherwise the active :class:`repro.api.config.RuntimeConfig` governs —
its ``exact_sampling`` field, which ``REPRO_EXACT_SAMPLING=1`` sets
through :meth:`RuntimeConfig.from_env`.  This module never reads the
environment itself.  Exact mode is how the perf-regression benchmark
reconstructs the pre-optimization baseline.  Both modes are
deterministic for a fixed ``Generator`` state; the two modes consume
the stream differently, so results are comparable *within* a mode.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "binomial_counts",
    "binomial_counts_predrawn",
    "binomial_predraw",
    "beta_values",
    "exact_sampling",
    "replica_weights",
    "set_exact_sampling",
    "sampling_mode",
]

#: Below this many elements the exact generator is cheap enough that
#: switching to the approximation buys nothing.
FAST_SIZE_THRESHOLD = 1024

#: Binomial elements with expected successes (or failures) below this
#: stay exact: the Gaussian tail would clip at 0/``trials`` and bias
#: the mean.
NORMAL_COUNT_THRESHOLD = 8.0

#: Beta elements with either shape parameter below this stay exact
#: (the distribution is visibly skewed there).
BETA_SHAPE_THRESHOLD = 4.0

#: Process-level override; ``None`` means "follow the active config".
_OVERRIDE: bool | None = None

#: The active config's ``exact_sampling``, derived lazily (this sits
#: on the per-draw hot path, so it must not re-read the environment
#: layer every call); dropped whenever the active config changes.
_CONFIG_EXACT: bool | None = None


def exact_sampling() -> bool:
    """Whether the exact (slow) generators are in force."""
    global _CONFIG_EXACT
    if _OVERRIDE is not None:
        return _OVERRIDE
    if _CONFIG_EXACT is None:
        from repro.api.config import get_config

        _CONFIG_EXACT = get_config().exact_sampling
    return _CONFIG_EXACT


def set_exact_sampling(flag: bool | None) -> bool | None:
    """Install (or with ``None`` clear) the exact-sampling override.

    Returns the previous override so scoped callers can restore the
    exact prior state — including the "follow the config" state.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = None if flag is None else bool(flag)
    return previous


@contextmanager
def sampling_mode(exact: bool) -> Iterator[None]:
    """Temporarily force exact (or approximate) sampling."""
    previous = set_exact_sampling(exact)
    try:
        yield
    finally:
        set_exact_sampling(previous)


def _on_config_change() -> None:
    """Config-layer hook: drop the cached config-derived flag so the
    next read re-derives from the new active config."""
    global _CONFIG_EXACT
    _CONFIG_EXACT = None


def _scope_save() -> bool | None:
    """Config-layer hook (``config_scope`` entry): clear any override
    so the scoped config's ``exact_sampling`` governs; return it."""
    _on_config_change()
    return set_exact_sampling(None)


def _scope_restore(state: bool | None) -> None:
    """Config-layer hook (``config_scope`` exit): exact restore."""
    _on_config_change()
    set_exact_sampling(state)


def binomial_counts(
    rng: np.random.Generator,
    trials: int | np.ndarray,
    probs: np.ndarray,
) -> np.ndarray:
    """``Binomial(trials, probs)`` draws as floats, shaped like ``probs``.

    Large draws use a clipped, rounded Gaussian with the binomial's
    mean and variance; elements whose expected success *or* failure
    count is small (where the Gaussian would clip) are redrawn exactly.
    When most elements sit in that small-count regime the whole draw
    stays exact — the Gaussian pass would be pure overhead.
    """
    probs = np.asarray(probs, dtype=float)
    if exact_sampling() or probs.size < FAST_SIZE_THRESHOLD:
        return rng.binomial(trials, probs).astype(float)
    trials_arr = np.broadcast_to(np.asarray(trials, dtype=float), probs.shape)
    mean = trials_arr * probs
    tails = (mean < NORMAL_COUNT_THRESHOLD) | (
        trials_arr - mean < NORMAL_COUNT_THRESHOLD
    )
    tail_fraction = float(tails.mean())
    if tail_fraction > 0.5:
        return rng.binomial(np.asarray(trials), probs).astype(float)
    sd = np.sqrt(np.maximum(mean * (1.0 - probs), 0.0))
    out = np.rint(mean + rng.standard_normal(probs.shape) * sd)
    if tail_fraction:
        out[tails] = rng.binomial(
            trials_arr[tails].astype(np.int64), probs[tails]
        )
    return np.clip(out, 0.0, trials_arr)


def binomial_predraw(
    trials: int | np.ndarray, probs: np.ndarray
) -> tuple:
    """Deterministic intermediates of :func:`binomial_counts`.

    Everything the approximate path derives from ``(trials, probs)``
    alone — the broadcast trial counts, the Gaussian moments, the
    small-count tail mask — with no generator involved.  Kernels that
    redraw the same ``(trials, probs)`` under many random streams
    (every explorer candidate differing only in seed or in fields the
    working sets ignore) compute this once and pass it to
    :func:`binomial_counts_predrawn`.
    """
    probs = np.asarray(probs, dtype=float)
    trials_arr = np.broadcast_to(
        np.asarray(trials, dtype=float), probs.shape
    )
    mean = trials_arr * probs
    tails = (mean < NORMAL_COUNT_THRESHOLD) | (
        trials_arr - mean < NORMAL_COUNT_THRESHOLD
    )
    tail_fraction = float(tails.mean())
    sd = np.sqrt(np.maximum(mean * (1.0 - probs), 0.0))
    return (trials, probs, trials_arr, mean, tails, tail_fraction, sd)


def binomial_counts_predrawn(
    rng: np.random.Generator, pre: tuple
) -> np.ndarray:
    """:func:`binomial_counts` from :func:`binomial_predraw` output.

    Bit-identical to ``binomial_counts(rng, trials, probs)`` for the
    pair the intermediates were built from: the same branch decisions
    run here and the generator is consumed identically in every mode.
    """
    trials, probs, trials_arr, mean, tails, tail_fraction, sd = pre
    if exact_sampling() or probs.size < FAST_SIZE_THRESHOLD:
        return rng.binomial(trials, probs).astype(float)
    if tail_fraction > 0.5:
        return rng.binomial(np.asarray(trials), probs).astype(float)
    out = np.rint(mean + rng.standard_normal(probs.shape) * sd)
    if tail_fraction:
        out[tails] = rng.binomial(
            trials_arr[tails].astype(np.int64), probs[tails]
        )
    return np.clip(out, 0.0, trials_arr)


def beta_values(
    rng: np.random.Generator,
    a: float | np.ndarray,
    b: float | np.ndarray,
    size: tuple[int, ...],
) -> np.ndarray:
    """``Beta(a, b)`` draws in [0, 1], shaped ``size``.

    Concentrated elements (both shapes comfortably above 1) use a
    clipped Gaussian with the Beta's mean and variance; skewed elements
    are redrawn exactly.  Scalar shape parameters — the half-tile
    balancer's case, by far the highest-volume caller — skip the
    broadcast bookkeeping entirely: one Gaussian draw, one scale, one
    shift.
    """
    n_elements = int(np.prod(size)) if size else 1
    if exact_sampling() or n_elements < FAST_SIZE_THRESHOLD:
        return rng.beta(a, b, size=size)
    if np.ndim(a) == 0 and np.ndim(b) == 0:
        if a < BETA_SHAPE_THRESHOLD or b < BETA_SHAPE_THRESHOLD:
            return rng.beta(a, b, size=size)
        mean = a / (a + b)
        sd = float(np.sqrt(mean * (1.0 - mean) / (a + b + 1.0)))
        return np.clip(rng.standard_normal(size) * sd + mean, 0.0, 1.0)
    a_arr = np.broadcast_to(np.asarray(a, dtype=float), size)
    b_arr = np.broadcast_to(np.asarray(b, dtype=float), size)
    total = a_arr + b_arr
    mean = a_arr / total
    var = mean * (1.0 - mean) / (total + 1.0)
    out = mean + rng.standard_normal(size) * np.sqrt(var)
    tails = (a_arr < BETA_SHAPE_THRESHOLD) | (b_arr < BETA_SHAPE_THRESHOLD)
    if tails.any():
        out[tails] = rng.beta(a_arr[tails], b_arr[tails])
    return np.clip(out, 0.0, 1.0)


def replica_weights(count: int, cap: int) -> np.ndarray:
    """Integer replication weights for subsampled exchangeable draws.

    When a working-set dimension enumerates ``count`` independent,
    identically-distributed draws (temporal chunks within a unit,
    full minibatch tiles), evaluating all of them buys variance
    reduction the totals rarely need.  This returns per-kept-draw
    weights for the first ``min(count, cap)`` draws, summing exactly
    to ``count``, so ``sum(stat * weight)`` stays an unbiased estimate
    of the full enumeration.  Exact mode disables the cut.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1 (got {count})")
    if exact_sampling() or count <= cap:
        return np.ones(count, dtype=np.int64)
    q, r = divmod(count, cap)
    weights = np.full(cap, q, dtype=np.int64)
    weights[:r] += 1
    return weights
