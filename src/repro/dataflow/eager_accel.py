"""Model of the Eager Pruning training accelerator (Section VII-A).

Eager Pruning [49] is the only prior sparse-*training* accelerator
proposal the paper compares against.  Its design differs from
Procrustes on every axis the paper argues about:

* it keeps the **weight-stationary** dataflow but balances load by
  giving *denser filters more PEs* — each output channel's work is
  split across a variable number of PEs;
* because one filter's partial sums are then produced on several PEs,
  a **combining module** ("can either accumulate or route partial
  sums") must merge them — extra traffic and hardware Procrustes
  avoids by balancing along the minibatch dimension;
* its *algorithm* relies on **sorting weights**, a cost the paper
  notes "does not appear to be considered in the hardware or the
  latency and energy measurements" — exposed here so the omission can
  be priced;
* it only reaches **1.5-3.5x** sparsity, vs. Procrustes' 3.9-11.7x.

The model allocates PEs per filter proportionally to the filter's
non-zero count (integer granularity, first-fit packed into array-sized
rounds), charges the per-round latency as the slowest PE, and counts
the psum words crossing the combining module.  It is deliberately
charitable — perfect knowledge of filter densities, zero allocation
overhead — so the comparison isolates the dataflow itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.hw.config import ArchConfig

__all__ = [
    "EagerRound",
    "EagerRunResult",
    "EagerPruningAccelerator",
    "sorting_cycles",
]


def sorting_cycles(weight_count: int, comparators: int = 256) -> float:
    """Cycles to sort all weights, the cost Eager Pruning leaves out.

    A comparison sort needs at least ``log2(n!)`` comparisons
    (Section III-B works the same bound); with ``comparators``
    hardware comparators the cycle count divides accordingly.
    """
    if weight_count < 2:
        return 0.0
    if comparators < 1:
        raise ValueError(f"comparators must be >= 1 (got {comparators})")
    # Stirling: log2(n!) ~ n log2 n - n / ln 2.
    n = float(weight_count)
    comparisons = n * math.log2(n) - n / math.log(2.0)
    return max(0.0, comparisons) / comparators


@dataclass
class EagerRound:
    """One array-filling round: filters, their PE shares, and cycles."""

    filters: list[int]
    pes_per_filter: list[int]
    cycles_per_sample: float
    router_words_per_sample: int

    @property
    def pes_used(self) -> int:
        return sum(self.pes_per_filter)


@dataclass
class EagerRunResult:
    """Whole-layer outcome of the Eager-Pruning dataflow."""

    cycles: float = 0.0
    macs: int = 0
    router_words: int = 0
    n_pes: int = 256
    rounds: list[EagerRound] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.n_pes)

    @property
    def router_words_per_mac(self) -> float:
        """Combining-module traffic intensity (Procrustes: zero)."""
        return self.router_words / self.macs if self.macs else 0.0


class EagerPruningAccelerator:
    """Weight-stationary array with density-proportional PE allocation."""

    def __init__(self, arch: ArchConfig) -> None:
        self.arch = arch

    def run_conv(
        self, mask: np.ndarray, p: int, q: int, n: int
    ) -> EagerRunResult:
        """Execute one conv layer forward pass from its weight mask.

        ``mask`` is the ``(K, C, R, S)`` non-zero map.  Filters are
        packed into array-filling rounds in output-channel order; in
        each round every filter first receives PEs in proportion to its
        non-zero count (floor allocation, minimum one), then leftover
        PEs go to whichever filter currently bounds the round's
        makespan — denser filters get more PEs, which is the Eager
        Pruning load-balancing scheme, modelled charitably.
        """
        if mask.ndim != 4:
            raise ValueError(f"mask must be (K, C, R, S), got {mask.ndim}-D")
        if min(p, q, n) < 1:
            raise ValueError("p, q, n must all be >= 1")
        k = mask.shape[0]
        nnz = mask.reshape(k, -1).sum(axis=1).astype(np.int64)
        n_pes = self.arch.n_pes
        total = int(nnz.sum())
        result = EagerRunResult(n_pes=n_pes)
        if total == 0:
            return result

        # Proportional PE demand per filter, from the layer-wide ideal
        # per-PE work; rounds are packed first-fit in channel order.
        target = max(1.0, total / n_pes)
        pending = [
            (ki, int(nz), min(n_pes, max(1, round(nz / target))))
            for ki, nz in enumerate(nnz)
            if nz > 0
        ]
        index = 0
        while index < len(pending):
            filters: list[int] = []
            works: list[int] = []
            shares: list[int] = []
            used = 0
            while index < len(pending):
                ki, nz, want = pending[index]
                if used + want > n_pes and filters:
                    break
                filters.append(ki)
                works.append(nz)
                shares.append(want)
                used += want
                index += 1
            # Hand leftover PEs to the current makespan filter.
            while sum(shares) < n_pes:
                worst = max(
                    range(len(works)),
                    key=lambda i: math.ceil(works[i] / shares[i]),
                )
                if math.ceil(works[worst] / shares[worst]) <= 1:
                    break  # nothing left to gain
                shares[worst] += 1
            cycles_per_sample = float(
                max(
                    math.ceil(nz / share) * p * q
                    for nz, share in zip(works, shares)
                )
            )
            # Each filter's psums are produced on `share` PEs; merging
            # them funnels (share - 1) partial streams of p*q words
            # through the combining module.
            router = sum((share - 1) * p * q for share in shares)
            result.rounds.append(
                EagerRound(
                    filters=filters,
                    pes_per_filter=shares,
                    cycles_per_sample=cycles_per_sample,
                    router_words_per_sample=router,
                )
            )
            result.cycles += cycles_per_sample * n
            result.router_words += router * n
        result.macs = total * p * q * n
        return result

    def algorithm_sorting_cycles(
        self, weight_count: int, comparators: int = 256
    ) -> float:
        """Unaccounted per-prune-round sorting cost of the algorithm."""
        return sorting_cycles(weight_count, comparators)
