"""Mapping search: the "optimal dataflow via Timeloop" of Table I.

The paper's dense baseline uses whatever spatial mapping Timeloop
finds fastest per network, and Procrustes picks K,N after the sweep of
Figure 19.  This module automates that selection: evaluate every
mapping under the latency model and return the fastest (optionally
restricted to mappings the simple 3-interconnect fabric can balance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.latency import network_latency
from repro.dataflow.mapping import MAPPINGS
from repro.hw.config import ArchConfig
from repro.hw.interconnect import needs_complex_balancing
from repro.workloads.sparsity import NetworkSparsity

__all__ = ["MappingChoice", "candidate_mappings", "choose_mapping"]


@dataclass(frozen=True)
class MappingChoice:
    """Result of a mapping search."""

    mapping: str
    cycles: float
    cycles_by_mapping: dict[str, float]

    def advantage_over(self, mapping: str) -> float:
        """Speedup of the chosen mapping versus another candidate."""
        return self.cycles_by_mapping[mapping] / self.cycles


def candidate_mappings(
    sparse: bool = True, simple_fabric_only: bool = False
) -> tuple[str, ...]:
    """Spatial-mapping candidates for a search.

    The explorer and :func:`choose_mapping` share this filter:
    ``simple_fabric_only=True`` drops mappings whose sparse load
    balancing needs the complex interconnect (C,K under sparsity,
    Figure 10) — the candidate set Procrustes actually designs within.
    """
    if not (simple_fabric_only and sparse):
        return MAPPINGS
    return tuple(
        mapping
        for mapping in MAPPINGS
        if not needs_complex_balancing(mapping)
    )


def choose_mapping(
    profile: NetworkSparsity,
    arch: ArchConfig,
    n: int = 64,
    sparse: bool = True,
    simple_fabric_only: bool = False,
    seed: int = 0,
) -> MappingChoice:
    """Pick the fastest spatial mapping for a network.

    ``simple_fabric_only=True`` excludes mappings whose load balancing
    needs the complex interconnect (C,K under sparsity) — the
    constraint Procrustes designs for.
    """
    cycles_by_mapping: dict[str, float] = {}
    for mapping in candidate_mappings(sparse, simple_fabric_only):
        latency = network_latency(
            profile, mapping, arch, n, sparse=sparse, seed=seed
        )
        cycles_by_mapping[mapping] = latency.total_cycles
    best = min(cycles_by_mapping, key=cycles_by_mapping.get)
    return MappingChoice(
        mapping=best,
        cycles=cycles_by_mapping[best],
        cycles_by_mapping=cycles_by_mapping,
    )
