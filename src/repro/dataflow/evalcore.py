"""Single-pass, memoized evaluation core for the analytical model.

Every figure reproduction, sweep point, and explorer candidate bottoms
out in the same question: for one (layer, phase, mapping, arch,
density, seed) condition, what are the working sets?  Before this
module the latency and energy roll-ups each walked phases x layers on
their own — and the energy side re-derived its MAC counts analytically
rather than from the sampled sets, so a simulation's latency and
energy could disagree about how many non-zeros survived.

:func:`evaluate_network` walks the network **once**: per (layer,
phase) it builds the working sets a single time and feeds both models
from them — cycles from the per-set maxima, MAC/RF energy events from
the very same sampled non-zero counts (the traffic terms stay
analytic).  :func:`~repro.dataflow.latency.network_latency`,
:func:`~repro.dataflow.energy_model.network_energy`, and
:func:`~repro.dataflow.simulator.simulate` are thin wrappers over it.

Set building is memoized at layer level through a **content key**: the
SHA-256 of everything that determines the result — layer dimensions,
phase, mapping, the arch fields that shape tiling (array geometry,
register-file words, MACs/cycle), minibatch, sparsity flag, balance
mode, seed, sampling mode, and the channel-density arrays themselves.
The per-layer random stream is derived *from that digest*, so a memo
hit is exact, not approximate: the same content always samples the
same sets, regardless of which network, call ordering, or process
evaluated it first.  A process-local LRU serves repeats in-process;
an optional on-disk tier (reusing the sweep engine's
:class:`~repro.sweep.cache.ResultCache`) lets explorer and sweep
candidates that share layers share work across runs and workers.

The process-default memo derives from the active
:class:`repro.api.config.RuntimeConfig` (``evalcore_memo`` /
``evalcore_memo_size`` / ``evalcore_cache_dir``; the historical
``REPRO_EVALCORE_*`` variables layer in through
:meth:`RuntimeConfig.from_env`).  It is built lazily at first use and
re-derived when a new config is installed via
:func:`repro.api.config.set_config` / ``config_scope`` — this module
itself never reads the environment.  Pass ``config=`` to
:func:`evaluate_network` to run one evaluation under an explicit
config without touching process state.

:func:`reference_implementation` flips the whole stack into its
pre-optimization configuration — loop reference kernels, exact
sampling, full set enumeration, no memo — which the parity tests and
the perf-regression benchmark use as ground truth.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
import warnings
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.api.config import RuntimeConfig, get_config
from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger, log_event
from repro.obs.trace import span as _span
from repro.reliability import faults as _faults
from repro.dataflow import sampling
from repro.dataflow.energy_model import layer_phase_energy
from repro.dataflow.mapping import allowed_balancing
from repro.dataflow.tiling import SetStats, build_sets, build_sets_reference
from repro.hw.config import ArchConfig
from repro.hw.energy import EnergyBreakdown, EnergyTable
from repro.workloads.phases import PHASES, phase_op
from repro.workloads.sparsity import LayerSparsity, NetworkSparsity

__all__ = [
    "EvalMemo",
    "EvalTimings",
    "LayerPhaseEval",
    "MemoStats",
    "NetworkEval",
    "SegmentStore",
    "configure_memo",
    "evaluate_network",
    "get_memo",
    "layer_phase_key",
    "layer_phase_sets",
    "memo_for_config",
    "memo_stats",
    "reference_implementation",
    "set_memo",
    "using_reference",
]

#: Version tag folded into every content key; bump when the working-set
#: model changes in a way that invalidates cached sets.
EVALCORE_VERSION = "evalcore-v1"

_logger = get_logger("repro.dataflow.evalcore")


# ----------------------------------------------------------------------
# reference mode
# ----------------------------------------------------------------------
_REFERENCE = False


def using_reference() -> bool:
    """Whether evaluations run the pre-optimization reference path."""
    return _REFERENCE


@contextmanager
def reference_implementation() -> Iterator[None]:
    """Evaluate the pre-evalcore way, for parity and perf baselines.

    Inside the context: loop reference kernels
    (:func:`~repro.dataflow.tiling.build_sets_reference`), exact
    sampling (full chunk/tile enumeration, exact binomial/Beta draws),
    and no memoization.
    """
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        with sampling.sampling_mode(exact=True):
            yield
    finally:
        _REFERENCE = previous


# ----------------------------------------------------------------------
# memoization
# ----------------------------------------------------------------------
@dataclass
class MemoStats:
    """Hit/miss counters for one :class:`EvalMemo`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


def _sets_to_values(sets: SetStats) -> dict[str, list[float]]:
    return {
        "max_work": sets.max_work.tolist(),
        "mean_work": sets.mean_work.tolist(),
        "sum_work": sets.sum_work.tolist(),
        "busy_pes": sets.busy_pes.tolist(),
        "weight": sets.weight.tolist(),
    }


def _sets_from_values(values: dict) -> SetStats:
    return SetStats(
        max_work=np.asarray(values["max_work"], dtype=float),
        mean_work=np.asarray(values["mean_work"], dtype=float),
        sum_work=np.asarray(values["sum_work"], dtype=float),
        busy_pes=np.asarray(values["busy_pes"]),
        weight=np.asarray(values["weight"], dtype=np.int64),
    )


#: SetStats field names in segment-file storage order.
_SET_FIELDS = ("max_work", "mean_work", "sum_work", "busy_pes", "weight")


class SegmentStore:
    """Bulk binary disk tier: many working-set records per file.

    The JSON tier (:class:`~repro.sweep.cache.ResultCache`) pays one
    file write plus a ``json.dumps`` per record — fine for sweep
    points, dominant in a cold multi-candidate pass that stores
    thousands of small arrays.  This store amortizes that: one
    ``put_many`` writes a single ``.npz`` *segment* holding every
    record's field arrays concatenated, plus the digests and per-record
    lengths needed to slice them back out.  Bit-exactness is free —
    the arrays round-trip as raw float64/int64, not decimal text.

    Segments are immutable and content-named, written via a temp-file
    rename, so concurrent writers never corrupt each other; readers
    keep a digest index built by scanning the directory lazily (and
    re-scanning once on a miss, which is how records written by other
    processes become visible).

    A segment that fails to load — torn write on a non-atomic
    filesystem, bit rot, a bad zip CRC mid-read — is *quarantined*:
    renamed to ``<name>.npz.corrupt``, dropped from the index (its
    records recompute upstream), counted via :attr:`quarantined` /
    the owner's ``on_corrupt`` callback, and surfaced as a
    ``RuntimeWarning`` instead of a silent skip.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        on_corrupt: Callable[[], None] | None = None,
    ) -> None:
        self.root = Path(root)
        #: digest -> (segment path, record row within the segment)
        self._index: dict[str, tuple[Path, int]] | None = None
        self._scanned: set[Path] = set()
        #: segments quarantined by this instance.
        self.quarantined = 0
        self._on_corrupt = on_corrupt

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad segment aside and purge it from the index."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            pass  # a concurrent reader already moved it
        self.quarantined += 1
        if self._on_corrupt is not None:
            self._on_corrupt()
        if self._index:
            self._index = {
                digest: loc
                for digest, loc in self._index.items()
                if loc[0] != path
            }
        _metrics.inc("cache.corrupt")
        log_event(
            _logger,
            "cache.quarantine",
            tier="evalcore-segment",
            path=path,
            reason=reason,
        )
        warnings.warn(
            f"quarantined corrupt segment ({reason}): {path} -> "
            f"{target.name}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _scan(self) -> dict[str, tuple[Path, int]]:
        if self._index is None:
            self._index = {}
        if self.root.is_dir():
            for path in sorted(self.root.glob("seg-*.npz")):
                if path in self._scanned:
                    continue
                self._scanned.add(path)
                try:
                    with np.load(path, allow_pickle=False) as record:
                        digests = record["digests"]
                except Exception:
                    # Anything np.load/zipfile can throw on a torn or
                    # garbled archive lands here; the file is evidence,
                    # not data.
                    self._quarantine(path, "unreadable segment header")
                    continue
                for row, digest in enumerate(digests):
                    self._index[str(digest)] = (path, row)
        return self._index

    def get_many(self, digests: list[str]) -> dict[str, SetStats]:
        """Stored records for the requested digests (hits only)."""
        index = self._scan()
        if any(d not in index for d in digests):
            # Pick up segments written since the last scan (other
            # processes).  Segments are immutable and never removed, so
            # the incremental scan — only files not seen before — is
            # enough; a digest still missing afterwards is a true miss.
            index = self._scan()
        by_segment: dict[Path, list[tuple[str, int]]] = {}
        for digest in digests:
            hit = index.get(digest)
            if hit is not None:
                by_segment.setdefault(hit[0], []).append((digest, hit[1]))
        results: dict[str, SetStats] = {}
        for path, wanted in by_segment.items():
            try:
                with np.load(path, allow_pickle=False) as record:
                    lengths = record["lengths"]
                    offsets = np.concatenate(
                        [[0], np.cumsum(lengths)]
                    ).astype(np.int64)
                    fields = {name: record[name] for name in _SET_FIELDS}
            except Exception:
                # The zip CRC catches corruption member-by-member as
                # arrays are read; any such failure condemns the file.
                self._quarantine(path, "unreadable segment payload")
                continue
            for digest, row in wanted:
                lo, hi = offsets[row], offsets[row + 1]
                results[digest] = SetStats(
                    **{
                        name: fields[name][lo:hi].copy()
                        for name in _SET_FIELDS
                    }
                )
        return results

    def put_many(self, pairs: list[tuple[str, SetStats]]) -> Path | None:
        """Write one segment holding every (digest, sets) record."""
        if not pairs:
            return None
        digests = np.array([digest for digest, _ in pairs])
        lengths = np.array(
            [sets.n_distinct for _, sets in pairs], dtype=np.int64
        )
        payload = {
            name: np.concatenate(
                [np.asarray(getattr(sets, name)) for _, sets in pairs]
            )
            for name in _SET_FIELDS
        }
        name = hashlib.sha256("".join(sorted(digests)).encode()).hexdigest()
        path = self.root / f"seg-{name[:24]}.npz"
        if path.exists():
            return path
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".seg.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, digests=digests, lengths=lengths, **payload)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        _faults.maybe_corrupt_file(path, f"segment:{path.name}")
        if self._index is not None:
            self._scanned.add(path)
            for row, (digest, _) in enumerate(pairs):
                self._index[digest] = (path, row)
        return path


class EvalMemo:
    """Layer-level working-set cache: process-local LRU + disk tiers.

    The record-per-file disk tier reuses the sweep engine's
    content-addressed :class:`~repro.sweep.cache.ResultCache` (atomic
    writes, fan-out directories, self-describing records); the batched
    evaluation path adds a bulk :class:`SegmentStore` tier under
    ``<disk_root>/segments`` so one multi-candidate pass stores its
    misses in one file write.  Both tiers are consulted on every read —
    looped and batched evaluation share one digest space in both
    directions.  Entries are immutable once stored — callers must not
    mutate the returned :class:`SetStats`.
    """

    def __init__(
        self, maxsize: int = 512, disk_root: str | os.PathLike | None = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 (got {maxsize})")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, SetStats] = OrderedDict()
        self._disk = None
        self._segments = None
        if disk_root is not None:
            from repro.sweep.cache import ResultCache

            self._disk = ResultCache(disk_root)
            self._segments = SegmentStore(
                Path(disk_root) / "segments",
                on_corrupt=self._count_corrupt,
            )
        self._disk_nonempty = False
        self.stats = MemoStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> SetStats | None:
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.stats.hits += 1
            _metrics.inc("evalcore.memo.hits")
            return entry
        if self._segments is not None:
            hits = self._segments.get_many([digest])
            if digest in hits:
                sets = hits[digest]
                self._insert(digest, sets)
                self.stats.disk_hits += 1
                _metrics.inc("evalcore.memo.disk_hits")
                return sets
        if self._disk is not None:
            record = self._disk.get({"evalcore": digest})
            if record is not None:
                sets = _sets_from_values(record["values"])
                self._insert(digest, sets)
                self.stats.disk_hits += 1
                _metrics.inc("evalcore.memo.disk_hits")
                return sets
        self.stats.misses += 1
        _metrics.inc("evalcore.memo.misses")
        return None

    def get_many(self, digests: list[str]) -> dict[str, SetStats]:
        """Bulk :meth:`get`: every hit across all tiers, one pass.

        The segment tier is probed once for all LRU misses (one
        directory scan, one file open per touched segment) instead of
        once per digest; remaining misses fall through to the JSON
        tier so records stored by looped evaluation hit too.
        """
        results: dict[str, SetStats] = {}
        missing: list[str] = []
        for digest in digests:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                results[digest] = entry
            else:
                missing.append(digest)
        self.stats.hits += len(results)
        if results:
            _metrics.inc("evalcore.memo.hits", len(results))
        if missing and self._segments is not None:
            segment_hits = self._segments.get_many(missing)
            for digest, sets in segment_hits.items():
                self._insert(digest, sets)
                results[digest] = sets
            self.stats.disk_hits += len(segment_hits)
            if segment_hits:
                _metrics.inc("evalcore.memo.disk_hits", len(segment_hits))
            missing = [d for d in missing if d not in segment_hits]
        if missing and self._disk is not None and self._has_json_records():
            still_missing = []
            for digest in missing:
                record = self._disk.get({"evalcore": digest})
                if record is not None:
                    sets = _sets_from_values(record["values"])
                    self._insert(digest, sets)
                    results[digest] = sets
                    self.stats.disk_hits += 1
                    _metrics.inc("evalcore.memo.disk_hits")
                else:
                    still_missing.append(digest)
            missing = still_missing
        self.stats.misses += len(missing)
        if missing:
            _metrics.inc("evalcore.memo.misses", len(missing))
        return results

    def put(self, digest: str, sets: SetStats) -> None:
        self._insert(digest, sets)
        if self._disk is not None:
            self._disk.put({"evalcore": digest}, _sets_to_values(sets))
        self.stats.stores += 1
        _metrics.inc("evalcore.memo.stores")

    def put_many(self, pairs: list[tuple[str, SetStats]]) -> None:
        """Bulk :meth:`put`: one segment write for the whole batch.

        Records land in the :class:`SegmentStore` (when a disk root is
        configured) rather than the record-per-file JSON tier — that
        single bulk write is where the batched evaluation path's disk
        saving comes from.  Reads consult both tiers, so the records
        stay visible to looped evaluation.
        """
        for digest, sets in pairs:
            self._insert(digest, sets)
        if self._segments is not None and pairs:
            self._segments.put_many(pairs)
        self.stats.stores += len(pairs)
        if pairs:
            _metrics.inc("evalcore.memo.stores", len(pairs))

    def _count_corrupt(self) -> None:
        """Segment-tier quarantine callback: one bad segment file.

        The record-per-file JSON tier tracks its own quarantines in
        its ``ResultCache.stats``; this folds the segment tier's into
        the memo's counters so ``memo_stats()`` surfaces both."""
        self.stats.corrupt += 1

    def _has_json_records(self) -> bool:
        """Whether the JSON tier holds any record at all.

        A cold batched pass probes thousands of digests that can only
        miss when the record-per-file tier is empty (batched stores go
        to the segment tier); one directory glob answers that for the
        whole bulk read.  Once a record is seen the answer is pinned —
        JSON records are only ever added.
        """
        if not self._disk_nonempty:
            self._disk_nonempty = any(
                True for _ in self._disk.root.glob("*/*.json")
            )
        return self._disk_nonempty

    def _insert(self, digest: str, sets: SetStats) -> None:
        self._entries[digest] = sets
        self._entries.move_to_end(digest)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


_UNSET = object()
_memo: object = _UNSET
#: Whether the current default memo was derived from the active
#: RuntimeConfig (vs. explicitly installed via set_memo/configure_memo).
_memo_derived = False

#: Memos derived per config *content* (the memo-relevant field tuple),
#: so repeated evaluations under equal configs — each sweep point a
#: process-pool worker handles, every call inside one config_scope —
#: share one LRU instead of rebuilding it per call.
_derived_memos: OrderedDict = OrderedDict()
_DERIVED_MEMOS_MAX = 8


def _memo_config_key(config: RuntimeConfig) -> tuple:
    return (
        config.evalcore_memo,
        config.evalcore_memo_size,
        config.effective_evalcore_cache_dir(),
    )


def memo_for_config(config: RuntimeConfig) -> EvalMemo | None:
    """The (cached) memo a config calls for; ``None`` when disabled."""
    key = _memo_config_key(config)
    memo = _derived_memos.get(key, _UNSET)
    if memo is _UNSET:
        if not config.memo_enabled:
            memo = None
        else:
            memo = EvalMemo(
                maxsize=config.evalcore_memo_size,
                disk_root=config.effective_evalcore_cache_dir() or None,
            )
        _derived_memos[key] = memo
        while len(_derived_memos) > _DERIVED_MEMOS_MAX:
            _derived_memos.popitem(last=False)
    else:
        _derived_memos.move_to_end(key)
    return memo  # type: ignore[return-value]


def get_memo() -> EvalMemo | None:
    """The process-wide default memo (derived lazily from the active
    :class:`~repro.api.config.RuntimeConfig` at first use)."""
    global _memo, _memo_derived
    if _memo is _UNSET:
        _memo = memo_for_config(get_config())
        _memo_derived = True
    return _memo  # type: ignore[return-value]


def configure_memo(
    maxsize: int = 512,
    disk_root: str | os.PathLike | None = None,
    enabled: bool = True,
) -> EvalMemo | None:
    """Replace the process-wide default memo; returns the new one."""
    global _memo, _memo_derived
    _memo = EvalMemo(maxsize=maxsize, disk_root=disk_root) if enabled else None
    _memo_derived = False
    return _memo  # type: ignore[return-value]


def set_memo(memo: EvalMemo | None) -> EvalMemo | None:
    """Install ``memo`` as the process-wide default; returns the
    previous one (which may be ``None`` for disabled), so callers can
    scope a temporary memo and restore the exact prior state."""
    global _memo, _memo_derived
    previous = get_memo()
    _memo = memo
    _memo_derived = False
    return previous


def _on_config_change() -> None:
    """Config-layer hook: drop a *derived* default memo so the next
    :func:`get_memo` re-derives from the new active config.  An
    explicitly installed memo (``set_memo``/``configure_memo``) is
    left in place."""
    global _memo, _memo_derived
    if _memo_derived:
        _memo = _UNSET
        _memo_derived = False


def _scope_save() -> tuple:
    """Config-layer hook (``config_scope`` entry): hand the raw default
    -memo state to the scope and reset it, so the scoped config governs
    even over an explicitly installed memo."""
    global _memo, _memo_derived
    state = (_memo, _memo_derived)
    _memo = _UNSET
    _memo_derived = False
    return state


def _scope_restore(state: tuple) -> None:
    """Config-layer hook (``config_scope`` exit): exact restore."""
    global _memo, _memo_derived
    _memo, _memo_derived = state


def memo_stats() -> dict[str, int]:
    memo = get_memo()
    return memo.stats.as_dict() if memo is not None else {}


# ----------------------------------------------------------------------
# content keys
# ----------------------------------------------------------------------
def _arch_signature(arch: ArchConfig) -> tuple:
    """The arch fields that shape working sets (GLB capacity does not)."""
    return (
        arch.pe_rows,
        arch.pe_cols,
        arch.rf_words,
        arch.macs_per_pe_per_cycle,
    )


def layer_phase_key(
    ls: LayerSparsity,
    phase: str,
    mapping: str,
    arch: ArchConfig,
    n: int,
    sparse: bool,
    balance_mode: str,
    seed: int,
) -> str:
    """Content digest addressing one (layer, phase) working-set build.

    Everything that determines the sampled sets is folded in — two
    calls with equal digests produce bit-identical :class:`SetStats`
    no matter which network or process runs them.  The layer *name* is
    deliberately excluded: identically-shaped layers with identical
    density profiles share work.
    """
    layer = ls.layer
    head = (
        EVALCORE_VERSION,
        phase,
        mapping,
        balance_mode,
        int(n),
        bool(sparse),
        int(seed),
        "exact" if sampling.exact_sampling() else "fast",
        layer.c,
        layer.k,
        layer.r,
        layer.s,
        layer.h,
        layer.w,
        layer.stride,
        layer.padding,
        layer.groups,
        layer.kind,
        *_arch_signature(arch),
        f"{ls.weight_density:.17g}",
        f"{ls.iact_density:.17g}",
    )
    digest = hashlib.sha256(repr(head).encode())
    if sparse:
        digest.update(np.ascontiguousarray(ls.out_channel_density).tobytes())
        digest.update(np.ascontiguousarray(ls.in_channel_density).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
@dataclass
class EvalTimings:
    """Per-stage wall time accumulated across one or more evaluations."""

    stages: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def total(self) -> float:
        return sum(self.stages.values())


@dataclass
class LayerPhaseEval:
    """One layer's working sets, cycles, MACs (and energy) in one phase.

    ``macs`` is the *sampled* surviving MAC count from ``sets`` — the
    same number the latency model times and the energy model charges
    MAC/RF events for, which is what makes the two sides agree.
    """

    layer_name: str
    phase: str
    cycles: float
    macs: float
    sets: SetStats
    energy: EnergyBreakdown | None = None


@dataclass
class NetworkEval:
    """Everything one single-pass network walk produced."""

    network: str
    mapping: str
    sparse: bool
    balanced: bool
    arch: ArchConfig
    seed: int
    layers: dict[str, list[LayerPhaseEval]] = field(default_factory=dict)

    def phase_cycles(self) -> dict[str, float]:
        return {
            phase: sum(r.cycles for r in rows)
            for phase, rows in self.layers.items()
        }

    def phase_energy(self) -> dict[str, EnergyBreakdown]:
        """Per-phase energy totals (requires a table at evaluation)."""
        result: dict[str, EnergyBreakdown] = {}
        for phase, rows in self.layers.items():
            total = EnergyBreakdown()
            for row in rows:
                if row.energy is None:
                    raise ValueError(
                        "evaluate_network ran without an energy table; "
                        "no energy to aggregate"
                    )
                total = total + row.energy
            result[phase] = total
        return result

    @property
    def total_cycles(self) -> float:
        return sum(self.phase_cycles().values())


def layer_phase_sets(
    ls: LayerSparsity,
    phase: str,
    mapping: str,
    arch: ArchConfig,
    n: int,
    sparse: bool = True,
    balance_mode: str = "none",
    seed: int = 0,
    memo: EvalMemo | None | object = _UNSET,
) -> SetStats:
    """Working sets for one (layer, phase), memoized by content key.

    The sampling stream is seeded from the content digest itself, so
    the result is a pure function of the key — cache hits are exact.
    """
    if memo is _UNSET:
        memo = get_memo()
    if _REFERENCE:
        memo = None
    digest = layer_phase_key(
        ls, phase, mapping, arch, n, sparse, balance_mode, seed
    )
    if memo is not None:
        cached = memo.get(digest)
        if cached is not None:
            return cached
    rng = np.random.default_rng(int(digest[:16], 16))
    op = phase_op(ls.layer, phase, n)
    builder = build_sets_reference if _REFERENCE else build_sets
    sets = builder(op, mapping, arch, ls, rng, sparse=sparse, balance=balance_mode)
    if memo is not None:
        memo.put(digest, sets)
    return sets


def evaluate_network(
    profile: NetworkSparsity,
    mapping: str,
    arch: ArchConfig,
    n: int,
    table: EnergyTable | None = None,
    sparse: bool = True,
    balance: bool = True,
    seed: int = 0,
    phases: tuple[str, ...] = PHASES,
    memo: EvalMemo | None | object = _UNSET,
    timings: EvalTimings | None = None,
    config: RuntimeConfig | None = None,
) -> NetworkEval:
    """One single-pass walk of a network's phases and layers.

    Builds each (layer, phase)'s working sets once; cycles come from
    the per-set maxima, and — when ``table`` is given — the energy
    breakdown is computed from the *same* sampled MAC counts.  Pass
    ``timings`` to accumulate a per-stage wall-time breakdown (the
    ``python -m repro.harness profile`` subcommand's view).

    ``config`` runs this one evaluation under an explicit
    :class:`~repro.api.config.RuntimeConfig` — its memo (unless
    ``memo`` is also given, which wins) and its sampling mode — without
    touching process-wide state; omitted, the active config governs.
    """
    if config is not None and memo is _UNSET:
        memo = memo_for_config(config)
    sampling_ctx = (
        sampling.sampling_mode(config.exact_sampling)
        if config is not None and not _REFERENCE
        else nullcontext()
    )
    result = NetworkEval(
        network=profile.name,
        mapping=mapping,
        sparse=sparse,
        balanced=balance,
        arch=arch,
        seed=seed,
    )
    network_span = _span(
        "evalcore.evaluate_network",
        network=profile.name,
        mapping=mapping,
        seed=seed,
    )
    with network_span, sampling_ctx:
        for phase in phases:
            mode = allowed_balancing(mapping, phase) if balance else "none"
            rows: list[LayerPhaseEval] = []
            for ls in profile.layers:
                with _span(
                    "evalcore.sets", layer=ls.layer.name, phase=phase
                ):
                    start = time.perf_counter()
                    sets = layer_phase_sets(
                        ls, phase, mapping, arch, n,
                        sparse=sparse, balance_mode=mode, seed=seed,
                        memo=memo,
                    )
                    cycles = sets.total_cycles(arch.macs_per_pe_per_cycle)
                    macs = sets.total_macs()
                    if timings is not None:
                        timings.add("sets", time.perf_counter() - start)
                energy = None
                if table is not None:
                    with _span(
                        "evalcore.energy",
                        layer=ls.layer.name,
                        phase=phase,
                    ):
                        start = time.perf_counter()
                        op = phase_op(ls.layer, phase, n)
                        energy = layer_phase_energy(
                            op, mapping, arch, ls, table,
                            sparse=sparse, macs=macs,
                        )
                        if timings is not None:
                            timings.add(
                                "energy", time.perf_counter() - start
                            )
                rows.append(
                    LayerPhaseEval(
                        layer_name=ls.layer.name,
                        phase=phase,
                        cycles=cycles,
                        macs=macs,
                        sets=sets,
                        energy=energy,
                    )
                )
            result.layers[phase] = rows
    return result
