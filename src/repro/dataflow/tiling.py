"""Work-tile generation: per-PE work for every full-array working set.

This is the heart of the Timeloop substitution.  For a (layer, phase,
mapping) triple it derives the sequence of *full-PE-array working
sets* (the columns of Figure 4) and, for each, the per-PE MAC counts
under the sparse operand's non-zero distribution.  Latency is then the
sum over sets of the slowest PE (synchronized execution), and the
imbalance histograms of Figures 5/13 are the per-set ``max/mean - 1``.

Tile sizing follows the hardware: the stationary operand tile per PE
is bounded by the register file (Table I: 1 KB, half of it budgeted to
the stationary tile), so a unit whose weights exceed that budget is
processed in multiple temporal chunks, each a separate working set —
smaller chunks mean more relative sparsity variance, which is exactly
why real working sets show the heavy imbalance tail of Figure 5.

Non-zero counts are *sampled* from the layer's channel-density profile
(binomial within a chunk) rather than materialized from full boolean
masks, so ImageNet-scale networks simulate in seconds; with a measured
profile (``profile_from_masks``) the channel densities come from real
Dropback masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.loadbalance import balance_sets, balance_sets_batch
from repro.dataflow.mapping import spatial_dims
from repro.dataflow.sampling import (
    beta_values,
    binomial_counts,
    binomial_counts_predrawn,
    binomial_predraw,
    replica_weights,
)
from repro.hw.config import ArchConfig
from repro.workloads.phases import PhaseOp
from repro.workloads.sparsity import LayerSparsity

__all__ = [
    "SetStats",
    "build_sets",
    "build_sets_batch",
    "build_sets_reference",
    "stationary_chunks",
]

#: Cycle tax on chip-wide ("perfect") balancing over the complex
#: interconnect: the accumulate-or-route partial-sum network that CK
#: balancing requires (Figure 10, and Eager Pruning's collection
#: module) serializes reductions that the simple fabric pipelines.
COMPLEX_BALANCE_OVERHEAD = 0.10

#: Beta concentration for per-sample activation density variation.
SAMPLE_ACT_CONCENTRATION = 60.0
#: Beta concentration for per-chunk activation density variation.
CHUNK_ACT_CONCENTRATION = 24.0
#: Beta concentration for spatial activation clustering (PQ mapping).
SPATIAL_ACT_CONCENTRATION = 4.0

#: Temporal chunks within a unit carry independent, identically
#: distributed non-zero draws; sampling this many (with replication
#: weights summing to the true chunk count) preserves totals in
#: expectation while bounding the sampled volume.  Exact-sampling mode
#: restores full enumeration (see :mod:`repro.dataflow.sampling`).
CHUNK_SAMPLE_CAP = 16

#: Full minibatch tiles in the wu phase are likewise exchangeable;
#: one sampled tile (plus the partial edge tile, kept verbatim)
#: represents them all.
WU_TILE_SAMPLE_CAP = 1


def stationary_chunks(
    weights_per_unit: float, arch: ArchConfig, rf_fraction: float = 0.5
) -> int:
    """Temporal chunks needed to stream one unit's stationary tile.

    The stationary operand tile per PE is bounded by the register file
    (``rf_fraction`` of it is budgeted to the stationary operand, the
    rest to streaming operands and partial sums); a unit whose weights
    exceed that budget executes in multiple temporal chunks, each a
    separate working set.  The design-space explorer reads this as its
    tiling-pressure signal when sizing register files: more chunks
    mean smaller chunks, hence more sparsity variance and a heavier
    imbalance tail (Figure 5).
    """
    budget = max(1, int(arch.rf_words * rf_fraction))
    return max(1, -(-int(round(weights_per_unit)) // budget))


@dataclass
class SetStats:
    """Summary of all working sets of one (layer, phase, mapping).

    Arrays are per *distinct* set; ``weight`` counts how many identical
    copies of each distinct set execute (e.g. a weight tile re-runs for
    every minibatch tile).
    """

    max_work: np.ndarray  # slowest PE's MACs per set
    mean_work: np.ndarray  # mean MACs over busy PEs per set
    sum_work: np.ndarray  # total MACs per set (all busy PEs)
    busy_pes: np.ndarray  # PEs with work assigned per set
    weight: np.ndarray  # replication count per distinct set

    def __post_init__(self) -> None:
        n = self.max_work.shape[0]
        for arr in (self.mean_work, self.sum_work, self.busy_pes, self.weight):
            if arr.shape[0] != n:
                raise ValueError("SetStats arrays must have equal length")

    @property
    def n_distinct(self) -> int:
        return int(self.max_work.shape[0])

    def total_sets(self) -> int:
        return int(self.weight.sum())

    def total_cycles(self, macs_per_pe_per_cycle: int = 1) -> float:
        """Latency: every set runs until its slowest PE finishes."""
        return float((self.max_work * self.weight).sum()) / macs_per_pe_per_cycle

    def total_macs(self) -> float:
        return float((self.sum_work * self.weight).sum())

    def overheads(self) -> np.ndarray:
        """Per-set execution overhead ``max/mean - 1`` (Figures 5/13),
        repeated per replication so histograms weight sets correctly."""
        valid = self.mean_work > 0
        over = np.zeros_like(self.max_work)
        over[valid] = self.max_work[valid] / self.mean_work[valid] - 1.0
        return np.repeat(over, self.weight.astype(int))

    @staticmethod
    def concatenate(parts: list["SetStats"]) -> "SetStats":
        return SetStats(
            max_work=np.concatenate([p.max_work for p in parts]),
            mean_work=np.concatenate([p.mean_work for p in parts]),
            sum_work=np.concatenate([p.sum_work for p in parts]),
            busy_pes=np.concatenate([p.busy_pes for p in parts]),
            weight=np.concatenate([p.weight for p in parts]),
        )


def _from_vectors(
    work: np.ndarray, busy_cols: int, replication: int
) -> SetStats:
    """Summarize sets given per-row work vectors ``(n_sets, A1)``.

    Rows carry distinct work; every busy column replicates its row's
    work, so the set total is ``row_sum * busy_cols`` and the slowest
    PE is the slowest row.
    """
    busy_rows = (work > 0).sum(axis=1)
    mean = np.zeros(work.shape[0])
    nonzero = busy_rows > 0
    mean[nonzero] = work.sum(axis=1)[nonzero] / busy_rows[nonzero]
    return SetStats(
        max_work=work.max(axis=1),
        mean_work=mean,
        sum_work=work.sum(axis=1) * busy_cols,
        busy_pes=busy_rows * busy_cols,
        weight=np.full(work.shape[0], replication, dtype=np.int64),
    )


def _from_matrices(work: np.ndarray, replication: int = 1) -> SetStats:
    """Summarize sets given full per-PE matrices ``(n_sets, A1, A2)``."""
    flat = work.reshape(work.shape[0], -1)
    busy = (flat > 0).sum(axis=1)
    mean = np.zeros(flat.shape[0])
    nonzero = busy > 0
    mean[nonzero] = flat.sum(axis=1)[nonzero] / busy[nonzero]
    return SetStats(
        max_work=flat.max(axis=1),
        mean_work=mean,
        sum_work=flat.sum(axis=1),
        busy_pes=busy,
        weight=np.full(flat.shape[0], replication, dtype=np.int64),
    )


def _beta_around(
    rng: np.random.Generator,
    mean: float | np.ndarray,
    concentration: float,
    size: tuple[int, ...],
) -> np.ndarray:
    """Beta draws with the given mean and concentration, clipped."""
    mean = np.clip(np.broadcast_to(np.asarray(mean, dtype=float), size),
                   1e-4, 1.0 - 1e-4)
    a = mean * concentration
    b = (1.0 - mean) * concentration
    return np.clip(beta_values(rng, a, b, size), 0.0, 1.0)


def _phase_channel_densities(
    op: PhaseOp, ls: LayerSparsity
) -> tuple[np.ndarray, np.ndarray]:
    """(out_ch, in_ch) densities in phase-relative order.

    In the backward pass the layer's input channels play the
    out-channel role, so the density arrays swap.
    """
    if op.phase == "bw":
        return ls.in_channel_density, ls.out_channel_density
    return ls.out_channel_density, ls.in_channel_density


# ----------------------------------------------------------------------
# fw / bw: weight sparsity
# ----------------------------------------------------------------------
#: Deterministic pre-draw intermediates for the KN/CN weight kernel,
#: content-keyed like :data:`_CK_PREDRAW_CACHE`.
_MB_PREDRAW_CACHE: dict[tuple, tuple] = {}
_MB_PREDRAW_CAP = 512


def _mb_predraw(densities: np.ndarray, s1: int, kept: int, trials: int):
    """Cached :func:`binomial_predraw` for the per-chunk weight draw."""
    key = (s1, kept, trials, densities[: s1].tobytes())
    hit = _MB_PREDRAW_CACHE.get(key)
    if hit is not None:
        return hit
    probs = np.repeat(
        np.clip(densities[:s1], 0.0, 1.0), kept
    ).reshape(s1, kept)
    value = binomial_predraw(trials, probs)
    if len(_MB_PREDRAW_CACHE) >= _MB_PREDRAW_CAP:
        _MB_PREDRAW_CACHE.clear()
    _MB_PREDRAW_CACHE[key] = value
    return value


def _weight_sets_channel_minibatch(
    op: PhaseOp,
    mapping_name: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
    balance: str,
) -> SetStats:
    """KN / CN mappings in fw/bw: channel dim on rows, minibatch on cols."""
    dims = spatial_dims(op, mapping_name)
    out_d, in_d = _phase_channel_densities(op, ls)
    densities = out_d if mapping_name == "KN" else in_d
    s1 = dims.size1
    layer = op.layer
    # Dense weights per channel unit of the spatial dimension.
    weights_per_unit = layer.weight_count / s1
    uses_per_weight = op.dense_macs / (layer.weight_count * op.n)
    chunks = stationary_chunks(weights_per_unit, arch)
    chunk_size = weights_per_unit / chunks
    # Chunk draws within a unit are i.i.d. (same channel density, same
    # trial count): sample a capped subset with replication weights.
    chunk_w = replica_weights(chunks, CHUNK_SAMPLE_CAP)
    kept = chunk_w.shape[0]

    if sparse:
        trials = max(1, int(round(chunk_size)))
        pre = _mb_predraw(densities, s1, kept, trials)
        nnz = binomial_counts_predrawn(rng, pre)
        nnz *= chunk_size / trials
    else:
        nnz = np.full((s1, kept), chunk_size)

    work = nnz * uses_per_weight  # MACs per PE per set, shape (s1, kept)
    # Group channel units into array-row tiles; pad idle rows with 0.
    tiles = -(-s1 // arch.pe_rows)
    row_padded = np.zeros((tiles * arch.pe_rows, kept))
    row_padded[:s1] = work
    vectors = (
        row_padded.reshape(tiles, arch.pe_rows, kept)
        .transpose(0, 2, 1)
        .reshape(tiles * kept, arch.pe_rows)
    )
    if sparse and balance == "half":
        vectors = balance_sets(vectors, rng)
    replication = -(-op.n // arch.pe_cols)
    busy_cols = min(op.n, arch.pe_cols)
    stats = _from_vectors(vectors, busy_cols, replication)
    stats.weight = np.tile(chunk_w, tiles) * replication
    return stats


#: Deterministic CK pre-draw intermediates, content-keyed.  Explorer
#: sweeps re-request the same (layer, densities, block size) hundreds
#: of times with only the random stream differing, so everything up to
#: the binomial draw is cached; the draw itself stays per call and the
#: streams are untouched.
_CK_PREDRAW_CACHE: dict[tuple, tuple] = {}
_CK_PREDRAW_CAP = 512


def _ck_predraw(
    op: PhaseOp, arch: ArchConfig, ls: LayerSparsity
) -> tuple[tuple, np.ndarray, np.ndarray]:
    """``(binomial predraw, zero_blocks, block_weights)`` for CK.

    A pure function of the layer dimensions, the register-file block
    size, and the density profile — exactly the inputs in the cache
    key.  Cached arrays are shared; callers must not mutate them.
    """
    layer = op.layer
    taps = op.reduction_taps
    budget = max(1, arch.rf_words)
    block = max(1, int(np.sqrt(budget / taps)))
    b_c = min(block, op.in_channels)
    b_k = min(block, op.out_channels)
    out_d, in_d = _phase_channel_densities(op, ls)
    s_c, s_k = op.in_channels, op.out_channels
    base = max(ls.weight_density, 1e-4)
    key = (
        s_c, s_k, layer.groups, taps, b_c, b_k, base,
        in_d[: s_c].tobytes(), out_d[: s_k].tobytes(),
    )
    hit = _CK_PREDRAW_CACHE.get(key)
    if hit is not None:
        return hit

    c_units = -(-s_c // b_c)
    k_units = -(-s_k // b_k)
    # A (c, k) channel pair holds weights only when both channels fall
    # in the same convolution group (depthwise layers keep only the
    # diagonal, which is what starves the CK mapping's utilization).
    c_group = (np.arange(s_c) * layer.groups) // s_c
    k_group = (np.arange(s_k) * layer.groups) // s_k
    valid = (c_group[:, None] == k_group[None, :]).astype(float)
    pair_density = (
        np.clip(np.outer(in_d[:s_c], out_d[:s_k]) / base, 0.0, 1.0) * valid
    )

    def _block_sum(matrix: np.ndarray) -> np.ndarray:
        padded = np.zeros((c_units * b_c, k_units * b_k))
        padded[:s_c, :s_k] = matrix
        return (
            padded.reshape(c_units, b_c, k_units, b_k)
            .sum(axis=(1, 3))
        )

    block_weights = _block_sum(valid) * taps
    block_expected_nnz = _block_sum(pair_density) * taps
    trials = np.maximum(block_weights.astype(int), 0)
    probs = np.divide(
        block_expected_nnz,
        np.maximum(block_weights, 1.0),
    ).clip(0.0, 1.0)
    value = (
        binomial_predraw(np.maximum(trials, 1), probs),
        trials == 0,
        block_weights,
    )
    if len(_CK_PREDRAW_CACHE) >= _CK_PREDRAW_CAP:
        _CK_PREDRAW_CACHE.clear()
    _CK_PREDRAW_CACHE[key] = value
    return value


def _weight_sets_ck(
    op: PhaseOp,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
    balance: str,
) -> SetStats:
    """CK mapping in fw/bw: in-channels on rows, out-channels on cols.

    Each PE holds a rectangular block of channel pairs sized to the
    register file; grouped convolutions leave cross-group pairs empty
    (which is what collapses utilization for depthwise layers).
    """
    layer = op.layer
    taps = op.reduction_taps
    budget = max(1, arch.rf_words)
    block = max(1, int(np.sqrt(budget / taps)))
    b_c = min(block, op.in_channels)
    b_k = min(block, op.out_channels)
    uses_per_weight = op.dense_macs / max(1, layer.weight_count)
    s_c, s_k = op.in_channels, op.out_channels
    c_units = -(-s_c // b_c)
    k_units = -(-s_k // b_k)

    pre, zero_blocks, block_weights = _ck_predraw(op, arch, ls)
    if sparse:
        nnz = binomial_counts_predrawn(rng, pre)
        nnz[zero_blocks] = 0.0
    else:
        nnz = block_weights.astype(float)
    work = nnz * uses_per_weight

    rows = -(-c_units // arch.pe_rows)
    cols = -(-k_units // arch.pe_cols)
    grid = np.zeros((rows * arch.pe_rows, cols * arch.pe_cols))
    grid[:c_units, :k_units] = work
    matrices = (
        grid.reshape(rows, arch.pe_rows, cols, arch.pe_cols)
        .transpose(0, 2, 1, 3)
        .reshape(rows * cols, arch.pe_rows, arch.pe_cols)
    )
    stats = _from_matrices(matrices)
    if sparse and balance == "perfect":
        # Chip-wide balancing over the complex interconnect: every busy
        # PE gets the mean work (Figure 10's costly alternative), but
        # the accumulate-or-route psum network adds a cycle tax.
        stats = SetStats(
            max_work=stats.mean_work * (1.0 + COMPLEX_BALANCE_OVERHEAD),
            mean_work=stats.mean_work,
            sum_work=stats.sum_work,
            busy_pes=stats.busy_pes,
            weight=stats.weight,
        )
    return stats


def _weight_sets_pq(
    op: PhaseOp,
    arch: ArchConfig,
    ls: LayerSparsity,
    sparse: bool,
) -> SetStats:
    """PQ mapping in fw/bw: output positions on the array.

    Every PE processes the entire filter set for its position, so work
    is uniform (no imbalance) but utilization collapses when the
    output extent is smaller than the array — the tail-layer problem
    of activation-stationary dataflows (Section II-C).
    """
    p, q = op.spatial
    density = ls.weight_density if sparse else 1.0
    work_per_position = op.dense_macs * density / (p * q)
    t_p = -(-p // arch.pe_rows)
    t_q = -(-q // arch.pe_cols)
    # Distinct sets differ only in how many positions are busy.
    sets_full = (p // arch.pe_rows) * (q // arch.pe_cols)
    stats_parts = []
    if sets_full:
        stats_parts.append(
            SetStats(
                max_work=np.array([work_per_position]),
                mean_work=np.array([work_per_position]),
                sum_work=np.array([work_per_position * arch.n_pes]),
                busy_pes=np.array([arch.n_pes]),
                weight=np.array([sets_full], dtype=np.int64),
            )
        )
    # Edge sets (partial rows/cols of positions).
    edge_sets = t_p * t_q - sets_full
    if edge_sets:
        busy_r = p - (p // arch.pe_rows) * arch.pe_rows or arch.pe_rows
        busy_c = q - (q // arch.pe_cols) * arch.pe_cols or arch.pe_cols
        busy = min(busy_r * arch.pe_cols, busy_c * arch.pe_rows,
                   busy_r * busy_c if busy_r and busy_c else arch.n_pes)
        busy = max(1, busy)
        stats_parts.append(
            SetStats(
                max_work=np.array([work_per_position]),
                mean_work=np.array([work_per_position]),
                sum_work=np.array([work_per_position * busy]),
                busy_pes=np.array([busy]),
                weight=np.array([edge_sets], dtype=np.int64),
            )
        )
    return SetStats.concatenate(stats_parts)


# ----------------------------------------------------------------------
# wu: activation sparsity
# ----------------------------------------------------------------------
def _wu_tile_sample(
    n: int, n_tiles: int, pe_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Kept wu minibatch-tile indices and replication weights.

    Full tiles are exchangeable draws, so a capped sample represents
    them; a partial edge tile (idle columns) is kept verbatim because
    its work distribution differs.
    """
    if n < n_tiles * pe_cols and n_tiles > 1:
        full_w = replica_weights(n_tiles - 1, WU_TILE_SAMPLE_CAP)
        idx = np.concatenate(
            [np.arange(full_w.shape[0]), [n_tiles - 1]]
        ).astype(np.int64)
        return idx, np.concatenate([full_w, np.ones(1, dtype=np.int64)])
    weights = replica_weights(n_tiles, WU_TILE_SAMPLE_CAP)
    return np.arange(weights.shape[0], dtype=np.int64), weights


def _wu_sets_channel_minibatch(
    op: PhaseOp,
    mapping_name: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
    balance: str,
) -> SetStats:
    """KN / CN mappings in wu: activation sparsity varies along N
    (per-sample) and along C (per-channel)."""
    dims = spatial_dims(op, mapping_name)
    layer = op.layer
    act_density = ls.iact_density if sparse else 1.0
    n = op.n
    s1 = dims.size1
    dense_per_pair = op.dense_macs / (s1 * n)
    # Temporal chunks: the PE walks its sample's activation slice.
    x_per_sample = layer.c * layer.h * layer.w
    budget = max(1, arch.rf_words // 2)
    chunks = max(1, min(64, -(-x_per_sample // budget)))

    n_tiles = -(-n // arch.pe_cols)

    if not sparse:
        work = np.full((n_tiles * chunks, arch.pe_cols), dense_per_pair / chunks)
        if n < arch.pe_cols:
            work[:, n:] = 0.0
        stats = _from_vectors(work, min(s1, arch.pe_rows), -(-s1 // arch.pe_rows))
        return stats

    sample_density = _beta_around(
        rng, act_density, SAMPLE_ACT_CONCENTRATION, (n_tiles * arch.pe_cols,)
    )
    if n < n_tiles * arch.pe_cols:
        sample_density[n:] = 0.0
    chunk_density = _beta_around(
        rng,
        np.repeat(sample_density, chunks),
        CHUNK_ACT_CONCENTRATION,
        (n_tiles * arch.pe_cols * chunks,),
    ).reshape(n_tiles * arch.pe_cols, chunks)
    chunk_density[sample_density == 0.0] = 0.0

    if mapping_name == "KN":
        # Rows carry K (uniform): per-set work varies along columns.
        work = (
            chunk_density.reshape(n_tiles, arch.pe_cols, chunks)
            .transpose(0, 2, 1)
            .reshape(n_tiles * chunks, arch.pe_cols)
            * dense_per_pair
            / chunks
        )
        if balance == "half":
            work = balance_sets(work, rng)
        return _from_vectors(
            work, min(s1, arch.pe_rows), -(-s1 // arch.pe_rows)
        )
    # CN: rows carry C with per-channel activation density variance.
    c_density = _beta_around(
        rng, act_density, CHUNK_ACT_CONCENTRATION, (s1,)
    )
    c_density *= act_density / max(c_density.mean(), 1e-9)
    c_density = np.clip(c_density, 0.0, 1.0)
    rows = -(-s1 // arch.pe_rows)
    row_padded = np.zeros(rows * arch.pe_rows)
    row_padded[:s1] = c_density
    # Work(c, n) multiplicative in the two densities: one broadcast
    # outer product over every sampled (row-tile, minibatch-tile,
    # chunk) combination replaces the reference implementation's
    # triple loop — work[r, t, f, i, j] = clip(c[r, i] * s[t, j, f]).
    base = max(act_density, 1e-4)
    c_tiles = row_padded.reshape(rows, arch.pe_rows)
    sample_tiles = chunk_density.reshape(n_tiles, arch.pe_cols, chunks)
    tile_idx, tile_w = _wu_tile_sample(n, n_tiles, arch.pe_cols)
    chunk_w = replica_weights(chunks, CHUNK_SAMPLE_CAP)
    kept_chunks = chunk_w.shape[0]
    samples = sample_tiles[tile_idx][:, :, :kept_chunks]
    # einsum (not broadcasting) so the product lands in one fresh
    # C-contiguous buffer: the downstream row-sum reductions must see
    # the same memory layout as the reference path's matrices, or
    # NumPy's pairwise summation peels differently and drifts an ulp.
    rho = np.clip(
        np.einsum(
            "ri,tfj->rtfij", c_tiles, samples.transpose(0, 2, 1), order="C"
        )
        / base,
        0.0,
        1.0,
    )
    work = (
        rho.reshape(-1, arch.pe_rows, arch.pe_cols)
        * dense_per_pair
        / chunks
    )
    if balance == "half":
        # Balance along the row (channel) dimension per column.
        flat = work.transpose(0, 2, 1).reshape(-1, work.shape[1])
        flat = balance_sets(flat, rng)
        work = flat.reshape(
            work.shape[0], work.shape[2], work.shape[1]
        ).transpose(0, 2, 1)
    stats = _from_matrices(work)
    stats.weight = np.tile(
        (tile_w[:, None] * chunk_w[None, :]).ravel(), rows
    )
    return stats


def _reference_wu_sets_channel_minibatch(
    op: PhaseOp,
    mapping_name: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
    balance: str,
) -> SetStats:
    """Loop reference for the CN branch of
    :func:`_wu_sets_channel_minibatch`.

    Draws the same random variates in the same order as the vectorized
    implementation, then builds the CN per-set work matrices with the
    original rows x minibatch-tiles x chunks Python loop.  Kept (and
    exercised by ``tests/test_evalcore.py``) as the bit-identical
    ground truth for the broadcast outer product above.  Only the CN
    sparse path differs from the fast implementation, so only that
    path lives here — :func:`build_sets_reference` routes everything
    else through the shared kernels.
    """
    if mapping_name != "CN" or not sparse:
        raise ValueError(
            "the wu reference covers only the sparse CN branch; "
            "other paths share the fast implementation"
        )
    dims = spatial_dims(op, mapping_name)
    layer = op.layer
    act_density = ls.iact_density
    n = op.n
    s1 = dims.size1
    dense_per_pair = op.dense_macs / (s1 * n)
    x_per_sample = layer.c * layer.h * layer.w
    budget = max(1, arch.rf_words // 2)
    chunks = max(1, min(64, -(-x_per_sample // budget)))

    n_tiles = -(-n // arch.pe_cols)

    sample_density = _beta_around(
        rng, act_density, SAMPLE_ACT_CONCENTRATION, (n_tiles * arch.pe_cols,)
    )
    if n < n_tiles * arch.pe_cols:
        sample_density[n:] = 0.0
    chunk_density = _beta_around(
        rng,
        np.repeat(sample_density, chunks),
        CHUNK_ACT_CONCENTRATION,
        (n_tiles * arch.pe_cols * chunks,),
    ).reshape(n_tiles * arch.pe_cols, chunks)
    chunk_density[sample_density == 0.0] = 0.0

    c_density = _beta_around(
        rng, act_density, CHUNK_ACT_CONCENTRATION, (s1,)
    )
    c_density *= act_density / max(c_density.mean(), 1e-9)
    c_density = np.clip(c_density, 0.0, 1.0)
    rows = -(-s1 // arch.pe_rows)
    row_padded = np.zeros(rows * arch.pe_rows)
    row_padded[:s1] = c_density
    matrices = []
    base = max(act_density, 1e-4)
    sample_tiles = chunk_density.reshape(n_tiles, arch.pe_cols, chunks)
    tile_idx, tile_w = _wu_tile_sample(n, n_tiles, arch.pe_cols)
    chunk_w = replica_weights(chunks, CHUNK_SAMPLE_CAP)
    kept_chunks = chunk_w.shape[0]
    for r in range(rows):
        c_slice = row_padded[r * arch.pe_rows : (r + 1) * arch.pe_rows]
        for t in tile_idx:
            for f in range(kept_chunks):
                rho = np.clip(
                    np.outer(c_slice, sample_tiles[t, :, f]) / base, 0.0, 1.0
                )
                matrices.append(rho * dense_per_pair / chunks)
    work = np.asarray(matrices)
    if balance == "half":
        flat = work.transpose(0, 2, 1).reshape(-1, work.shape[1])
        flat = balance_sets(flat, rng)
        work = flat.reshape(
            work.shape[0], work.shape[2], work.shape[1]
        ).transpose(0, 2, 1)
    stats = _from_matrices(work)
    stats.weight = np.tile(
        (tile_w[:, None] * chunk_w[None, :]).ravel(), rows
    )
    return stats


def _wu_sets_ck(
    op: PhaseOp,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
    balance: str,
) -> SetStats:
    """CK mapping in wu: per-channel activation variance on rows."""
    act_density = ls.iact_density if sparse else 1.0
    s1, s2 = op.in_channels, op.out_channels
    dense_per_pair = op.dense_macs / (s1 * s2)
    rows = -(-s1 // arch.pe_rows)
    if sparse:
        c_density = _beta_around(
            rng, act_density, CHUNK_ACT_CONCENTRATION, (rows * arch.pe_rows,)
        )
        if s1 < rows * arch.pe_rows:
            c_density[s1:] = 0.0
    else:
        c_density = np.zeros(rows * arch.pe_rows)
        c_density[:s1] = 1.0
    work = (
        c_density.reshape(rows, arch.pe_rows) * dense_per_pair
    )
    stats = _from_vectors(
        work, min(s2, arch.pe_cols), -(-s2 // arch.pe_cols)
    )
    if sparse and balance == "perfect":
        stats = SetStats(
            max_work=stats.mean_work * (1.0 + COMPLEX_BALANCE_OVERHEAD),
            mean_work=stats.mean_work,
            sum_work=stats.sum_work,
            busy_pes=stats.busy_pes,
            weight=stats.weight,
        )
    return stats


def _wu_sets_pq(
    op: PhaseOp,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool,
) -> SetStats:
    """PQ mapping in wu: spatially clustered activation sparsity with no
    way to rebalance on the simple fabric (Section II-C)."""
    p, q = op.spatial
    act_density = ls.iact_density if sparse else 1.0
    dense_per_position = op.dense_macs / (p * q)
    t_p = -(-p // arch.pe_rows)
    t_q = -(-q // arch.pe_cols)
    grid_p = t_p * arch.pe_rows
    grid_q = t_q * arch.pe_cols
    if sparse:
        density = _beta_around(
            rng, act_density, SPATIAL_ACT_CONCENTRATION, (grid_p, grid_q)
        )
    else:
        density = np.ones((grid_p, grid_q))
    density[p:, :] = 0.0
    density[:, q:] = 0.0
    work = density * dense_per_position
    matrices = (
        work.reshape(t_p, arch.pe_rows, t_q, arch.pe_cols)
        .transpose(0, 2, 1, 3)
        .reshape(t_p * t_q, arch.pe_rows, arch.pe_cols)
    )
    return _from_matrices(matrices)


# ----------------------------------------------------------------------
# batched kernels: a leading candidate axis over same-shaped jobs
# ----------------------------------------------------------------------
# Each ``*_batch`` kernel evaluates many (density profile, rng) jobs of
# one (op, mapping, arch-signature, balance) condition in a single
# stacked pass.  The random draws stay *per job* — every job's private
# generator is consumed exactly as the single-job kernel would consume
# it — and only the deterministic array math (elementwise products,
# pad/reshape/transpose copies, trailing-axis reductions) carries the
# leading axis, which is what keeps every result slice bit-identical
# to the corresponding single-job call.


def _weight_sets_channel_minibatch_batch(
    op: PhaseOp,
    mapping_name: str,
    arch: ArchConfig,
    jobs: list[tuple[LayerSparsity, np.random.Generator]],
    balance: str,
) -> list[SetStats]:
    """Batched sparse :func:`_weight_sets_channel_minibatch`."""
    dims = spatial_dims(op, mapping_name)
    s1 = dims.size1
    layer = op.layer
    weights_per_unit = layer.weight_count / s1
    uses_per_weight = op.dense_macs / (layer.weight_count * op.n)
    chunks = stationary_chunks(weights_per_unit, arch)
    chunk_size = weights_per_unit / chunks
    chunk_w = replica_weights(chunks, CHUNK_SAMPLE_CAP)
    kept = chunk_w.shape[0]
    n_jobs = len(jobs)

    trials = max(1, int(round(chunk_size)))
    nnz = np.empty((n_jobs, s1, kept))
    for b, (ls, rng) in enumerate(jobs):
        out_d, in_d = _phase_channel_densities(op, ls)
        densities = out_d if mapping_name == "KN" else in_d
        pre = _mb_predraw(densities, s1, kept, trials)
        draw = binomial_counts_predrawn(rng, pre)
        draw *= chunk_size / trials
        nnz[b] = draw

    work = nnz * uses_per_weight
    tiles = -(-s1 // arch.pe_rows)
    row_padded = np.zeros((n_jobs, tiles * arch.pe_rows, kept))
    row_padded[:, :s1] = work
    vectors = (
        row_padded.reshape(n_jobs, tiles, arch.pe_rows, kept)
        .transpose(0, 1, 3, 2)
        .reshape(n_jobs, tiles * kept, arch.pe_rows)
    )
    if balance == "half":
        vectors = balance_sets_batch(vectors, [rng for _, rng in jobs])
    replication = -(-op.n // arch.pe_cols)
    busy_cols = min(op.n, arch.pe_cols)
    weight = np.tile(chunk_w, tiles) * replication
    results = []
    for b in range(n_jobs):
        stats = _from_vectors(vectors[b], busy_cols, replication)
        stats.weight = weight
        results.append(stats)
    return results


def _weight_sets_ck_batch(
    op: PhaseOp,
    arch: ArchConfig,
    jobs: list[tuple[LayerSparsity, np.random.Generator]],
    balance: str,
) -> list[SetStats]:
    """Batched sparse :func:`_weight_sets_ck`.

    Per-job deterministic structure comes from the shared
    :func:`_ck_predraw` cache; only the binomial draws run per job,
    from each job's own generator, exactly as the single-job kernel
    draws them.
    """
    layer = op.layer
    taps = op.reduction_taps
    budget = max(1, arch.rf_words)
    block = max(1, int(np.sqrt(budget / taps)))
    b_c = min(block, op.in_channels)
    b_k = min(block, op.out_channels)
    uses_per_weight = op.dense_macs / max(1, layer.weight_count)
    s_c, s_k = op.in_channels, op.out_channels
    c_units = -(-s_c // b_c)
    k_units = -(-s_k // b_k)

    n_jobs = len(jobs)
    nnz = np.empty((n_jobs, c_units, k_units))
    for b, (ls, rng) in enumerate(jobs):
        pre, zero_blocks, _ = _ck_predraw(op, arch, ls)
        draw = binomial_counts_predrawn(rng, pre)
        draw[zero_blocks] = 0.0
        nnz[b] = draw

    work = nnz * uses_per_weight
    rows = -(-c_units // arch.pe_rows)
    cols = -(-k_units // arch.pe_cols)
    grid = np.zeros((n_jobs, rows * arch.pe_rows, cols * arch.pe_cols))
    grid[:, :c_units, :k_units] = work
    matrices = (
        grid.reshape(n_jobs, rows, arch.pe_rows, cols, arch.pe_cols)
        .transpose(0, 1, 3, 2, 4)
        .reshape(n_jobs, rows * cols, arch.pe_rows, arch.pe_cols)
    )
    results = []
    for b in range(n_jobs):
        stats = _from_matrices(matrices[b])
        if balance == "perfect":
            stats = SetStats(
                max_work=stats.mean_work * (1.0 + COMPLEX_BALANCE_OVERHEAD),
                mean_work=stats.mean_work,
                sum_work=stats.sum_work,
                busy_pes=stats.busy_pes,
                weight=stats.weight,
            )
        results.append(stats)
    return results


def _wu_sets_channel_minibatch_batch(
    op: PhaseOp,
    mapping_name: str,
    arch: ArchConfig,
    jobs: list[tuple[LayerSparsity, np.random.Generator]],
    balance: str,
) -> list[SetStats]:
    """Batched sparse :func:`_wu_sets_channel_minibatch` (KN and CN).

    The CN outer product becomes one einsum with a leading candidate
    axis (``"bri,btfj->brtfij"``) — a pure product with no reduction,
    so every slice matches the single-candidate einsum exactly.
    """
    dims = spatial_dims(op, mapping_name)
    layer = op.layer
    n = op.n
    s1 = dims.size1
    dense_per_pair = op.dense_macs / (s1 * n)
    x_per_sample = layer.c * layer.h * layer.w
    budget = max(1, arch.rf_words // 2)
    chunks = max(1, min(64, -(-x_per_sample // budget)))
    n_tiles = -(-n // arch.pe_cols)
    n_jobs = len(jobs)
    rngs = [rng for _, rng in jobs]
    rows = -(-s1 // arch.pe_rows)

    chunk_stack = np.empty((n_jobs, n_tiles * arch.pe_cols, chunks))
    c_stack = np.zeros((n_jobs, rows * arch.pe_rows))
    base = np.empty(n_jobs)
    for b, (ls, rng) in enumerate(jobs):
        act_density = ls.iact_density
        sample_density = _beta_around(
            rng,
            act_density,
            SAMPLE_ACT_CONCENTRATION,
            (n_tiles * arch.pe_cols,),
        )
        if n < n_tiles * arch.pe_cols:
            sample_density[n:] = 0.0
        chunk_density = _beta_around(
            rng,
            np.repeat(sample_density, chunks),
            CHUNK_ACT_CONCENTRATION,
            (n_tiles * arch.pe_cols * chunks,),
        ).reshape(n_tiles * arch.pe_cols, chunks)
        chunk_density[sample_density == 0.0] = 0.0
        chunk_stack[b] = chunk_density
        if mapping_name == "CN":
            c_density = _beta_around(
                rng, act_density, CHUNK_ACT_CONCENTRATION, (s1,)
            )
            c_density *= act_density / max(c_density.mean(), 1e-9)
            c_density = np.clip(c_density, 0.0, 1.0)
            c_stack[b, :s1] = c_density
            base[b] = max(act_density, 1e-4)

    if mapping_name == "KN":
        work = (
            chunk_stack.reshape(n_jobs, n_tiles, arch.pe_cols, chunks)
            .transpose(0, 1, 3, 2)
            .reshape(n_jobs, n_tiles * chunks, arch.pe_cols)
            * dense_per_pair
            / chunks
        )
        if balance == "half":
            work = balance_sets_batch(work, rngs)
        return [
            _from_vectors(
                work[b], min(s1, arch.pe_rows), -(-s1 // arch.pe_rows)
            )
            for b in range(n_jobs)
        ]

    # CN: stacked broadcast outer product over the candidate axis.
    c_tiles = c_stack.reshape(n_jobs, rows, arch.pe_rows)
    sample_tiles = chunk_stack.reshape(
        n_jobs, n_tiles, arch.pe_cols, chunks
    )
    tile_idx, tile_w = _wu_tile_sample(n, n_tiles, arch.pe_cols)
    chunk_w = replica_weights(chunks, CHUNK_SAMPLE_CAP)
    kept_chunks = chunk_w.shape[0]
    samples = sample_tiles[:, tile_idx][:, :, :, :kept_chunks]
    rho = np.clip(
        np.einsum(
            "bri,btfj->brtfij",
            c_tiles,
            samples.transpose(0, 1, 3, 2),
            order="C",
        )
        / base[:, None, None, None, None, None],
        0.0,
        1.0,
    )
    work = (
        rho.reshape(n_jobs, -1, arch.pe_rows, arch.pe_cols)
        * dense_per_pair
        / chunks
    )
    if balance == "half":
        flat = work.transpose(0, 1, 3, 2).reshape(
            n_jobs, -1, work.shape[2]
        )
        flat = balance_sets_batch(flat, rngs)
        work = flat.reshape(
            n_jobs, work.shape[1], work.shape[3], work.shape[2]
        ).transpose(0, 1, 3, 2)
    weight = np.tile((tile_w[:, None] * chunk_w[None, :]).ravel(), rows)
    results = []
    for b in range(n_jobs):
        stats = _from_matrices(work[b])
        stats.weight = weight
        results.append(stats)
    return results


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def build_sets(
    op: PhaseOp,
    mapping: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool = True,
    balance: str = "none",
) -> SetStats:
    """Working-set statistics for one (layer, phase, mapping).

    ``balance`` is ``'none'``, ``'half'`` (half-tile pairing on the
    simple fabric) or ``'perfect'`` (chip-wide, complex interconnect).
    """
    if balance not in ("none", "half", "perfect"):
        raise ValueError(f"unknown balance mode {balance!r}")
    if op.sparse_operand == "weights":
        if mapping in ("KN", "CN"):
            return _weight_sets_channel_minibatch(
                op, mapping, arch, ls, rng, sparse, balance
            )
        if mapping == "CK":
            return _weight_sets_ck(op, arch, ls, rng, sparse, balance)
        if mapping == "PQ":
            return _weight_sets_pq(op, arch, ls, sparse)
        raise ValueError(f"unknown mapping {mapping!r}")
    # wu phase: activation sparsity.
    if mapping in ("KN", "CN"):
        return _wu_sets_channel_minibatch(
            op, mapping, arch, ls, rng, sparse, balance
        )
    if mapping == "CK":
        return _wu_sets_ck(op, arch, ls, rng, sparse, balance)
    if mapping == "PQ":
        return _wu_sets_pq(op, arch, ls, rng, sparse)
    raise ValueError(f"unknown mapping {mapping!r}")


def build_sets_batch(
    op: PhaseOp,
    mapping: str,
    arch: ArchConfig,
    jobs: list[tuple[LayerSparsity, np.random.Generator]],
    sparse: bool = True,
    balance: str = "none",
) -> list[SetStats]:
    """:func:`build_sets` for many jobs of one condition, in one pass.

    ``jobs`` is a list of ``(layer sparsity, generator)`` pairs that
    share everything the condition fixes — phase op (layer dimensions,
    minibatch), mapping, balance mode, and the tiling-relevant arch
    fields — and differ only in density profiles and random streams.
    Results are returned in job order and each is bit-identical to the
    corresponding ``build_sets(op, mapping, arch, ls, rng, ...)`` call:
    random variates are drawn per job from that job's generator, in
    the single-job order, and only deterministic math is stacked along
    the leading candidate axis.

    Mappings whose kernels are dominated by per-job draws or are fully
    deterministic (PQ, the wu-phase CK path) and dense jobs fall back
    to per-job :func:`build_sets` — same contract, no stacking win.
    """
    if balance not in ("none", "half", "perfect"):
        raise ValueError(f"unknown balance mode {balance!r}")
    if not jobs:
        return []

    def _loop() -> list[SetStats]:
        return [
            build_sets(
                op, mapping, arch, ls, rng, sparse=sparse, balance=balance
            )
            for ls, rng in jobs
        ]

    if len(jobs) == 1 or not sparse:
        return _loop()
    if op.sparse_operand == "weights":
        if mapping in ("KN", "CN"):
            return _weight_sets_channel_minibatch_batch(
                op, mapping, arch, jobs, balance
            )
        if mapping == "CK":
            return _weight_sets_ck_batch(op, arch, jobs, balance)
        if mapping == "PQ":
            return _loop()
        raise ValueError(f"unknown mapping {mapping!r}")
    if mapping in ("KN", "CN"):
        return _wu_sets_channel_minibatch_batch(
            op, mapping, arch, jobs, balance
        )
    if mapping in ("CK", "PQ"):
        return _loop()
    raise ValueError(f"unknown mapping {mapping!r}")


def build_sets_reference(
    op: PhaseOp,
    mapping: str,
    arch: ArchConfig,
    ls: LayerSparsity,
    rng: np.random.Generator,
    sparse: bool = True,
    balance: str = "none",
) -> SetStats:
    """:func:`build_sets` via the kept loop reference kernels.

    Same dispatch, same random stream; the sparse wu-phase CN path —
    the one kernel whose fast implementation diverges from its loop
    form — runs :func:`_reference_wu_sets_channel_minibatch` instead
    of the broadcast implementation.  The parity suite asserts the two
    dispatchers return bit-identical :class:`SetStats`; the perf
    benchmark uses this path (plus exact sampling) to reconstruct the
    pre-optimization baseline.
    """
    if balance not in ("none", "half", "perfect"):
        raise ValueError(f"unknown balance mode {balance!r}")
    if op.sparse_operand != "weights" and mapping == "CN" and sparse:
        return _reference_wu_sets_channel_minibatch(
            op, mapping, arch, ls, rng, sparse, balance
        )
    return build_sets(op, mapping, arch, ls, rng, sparse=sparse, balance=balance)
