"""Half-tile load balancing (Figures 9 and 12).

Procrustes balances a working set by cutting every PE work tile in
half along one dimension, sorting the half-tiles by density, and
pairing the sparsest half with the densest half (then the second
sparsest with the second densest, and so on).  Each reconstituted tile
is then as close as possible to the mean density, collapsing the
imbalance histogram of Figure 5 into Figure 13 — without changing the
on-chip traffic patterns, because the swaps happen along the spatial
dimension opposite the reuse broadcast.

Work tiles here are represented by their *work amounts* (MAC counts);
the split models intra-tile sparsity variation by drawing the half
split from a Beta distribution around one half.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.sampling import beta_values

__all__ = [
    "split_halves",
    "pair_halves",
    "balance_sets",
    "balance_sets_batch",
]

#: Concentration of the half-split Beta draw.  Sparsity is "almost
#: certainly uneven within the tile" (Section IV-C); concentration 36
#: gives halves that typically differ by ~8-18 %.
DEFAULT_SPLIT_CONCENTRATION = 36.0


def split_halves(
    work: np.ndarray,
    rng: np.random.Generator,
    concentration: float = DEFAULT_SPLIT_CONCENTRATION,
) -> np.ndarray:
    """Cut each tile of ``work`` (shape ``(..., A)``) into two halves.

    Returns shape ``(..., 2A)``: for each tile, the two half works whose
    sum is the original work.
    """
    if concentration <= 0:
        raise ValueError(
            f"concentration must be positive (got {concentration})"
        )
    fractions = beta_values(rng, concentration, concentration, work.shape)
    first = work * fractions
    second = work - first
    return np.concatenate([first, second], axis=-1)


def pair_halves(halves: np.ndarray) -> np.ndarray:
    """Pair sparsest-with-densest half-tiles (Figure 9c).

    ``halves`` has shape ``(..., 2A)``; the result has shape
    ``(..., A)`` with each entry the work of a reconstituted tile.
    Total work per set is preserved exactly.
    """
    n_halves = halves.shape[-1]
    if n_halves % 2:
        raise ValueError(f"need an even number of halves (got {n_halves})")
    ordered = np.sort(halves, axis=-1)
    return ordered[..., : n_halves // 2] + ordered[..., : n_halves // 2 - 1 : -1]


def balance_sets(
    work: np.ndarray,
    rng: np.random.Generator,
    concentration: float = DEFAULT_SPLIT_CONCENTRATION,
) -> np.ndarray:
    """Apply one half-tile balancing round to every working set.

    ``work`` is ``(n_sets, A)`` per-PE work along the balanced
    dimension; the result has the same shape, the same per-set totals,
    and a (weakly) smaller per-set maximum.

    Fused implementation of ``pair_halves(split_halves(...))``: the
    halves land in one preallocated buffer sorted in place, skipping
    the intermediate concatenate/copy the composed form pays on every
    working set.  Bit-identical to :func:`_reference_balance_sets`.
    """
    if concentration <= 0:
        raise ValueError(
            f"concentration must be positive (got {concentration})"
        )
    n = work.shape[-1]
    fractions = beta_values(rng, concentration, concentration, work.shape)
    halves = np.empty(work.shape[:-1] + (2 * n,), dtype=float)
    np.multiply(work, fractions, out=halves[..., :n])
    np.subtract(work, halves[..., :n], out=halves[..., n:])
    halves.sort(axis=-1)
    return halves[..., :n] + halves[..., : n - 1 : -1]


def balance_sets_batch(
    work: np.ndarray,
    rngs: list[np.random.Generator],
    concentration: float = DEFAULT_SPLIT_CONCENTRATION,
) -> np.ndarray:
    """:func:`balance_sets` over a leading candidate axis.

    ``work`` is ``(B, n_sets, A)``: one candidate's working sets per
    leading slice, with ``rngs[b]`` that candidate's private random
    stream.  The half-split fractions are drawn *per candidate* — the
    same draws, in the same order, ``balance_sets`` would make — and
    only the deterministic fused split/sort/pair math is stacked, so
    each result slice is bit-identical to
    ``balance_sets(work[b], rngs[b])``.
    """
    if concentration <= 0:
        raise ValueError(
            f"concentration must be positive (got {concentration})"
        )
    if work.shape[0] != len(rngs):
        raise ValueError(
            f"need one rng per candidate: work has {work.shape[0]} "
            f"slices, got {len(rngs)} rngs"
        )
    n = work.shape[-1]
    fractions = np.empty(work.shape, dtype=float)
    for b, rng in enumerate(rngs):
        fractions[b] = beta_values(
            rng, concentration, concentration, work.shape[1:]
        )
    halves = np.empty(work.shape[:-1] + (2 * n,), dtype=float)
    np.multiply(work, fractions, out=halves[..., :n])
    np.subtract(work, halves[..., :n], out=halves[..., n:])
    halves.sort(axis=-1)
    return halves[..., :n] + halves[..., : n - 1 : -1]


def _reference_balance_sets(
    work: np.ndarray,
    rng: np.random.Generator,
    concentration: float = DEFAULT_SPLIT_CONCENTRATION,
) -> np.ndarray:
    """The composed split-then-pair reference for :func:`balance_sets`."""
    halves = split_halves(work, rng, concentration)
    return pair_halves(halves)
