"""Mappings, tiling, load balancing, and the latency/energy models."""

from repro.dataflow.eager_accel import (
    EagerPruningAccelerator,
    EagerRound,
    EagerRunResult,
    sorting_cycles,
)
from repro.dataflow.energy_model import layer_phase_energy, network_energy
from repro.dataflow.evalcore import (
    EvalMemo,
    EvalTimings,
    LayerPhaseEval,
    NetworkEval,
    configure_memo,
    evaluate_network,
    memo_stats,
    reference_implementation,
)
from repro.dataflow.latency import LayerLatency, PhaseLatency, network_latency
from repro.dataflow.loadbalance import balance_sets, pair_halves, split_halves
from repro.dataflow.mapper import (
    MappingChoice,
    candidate_mappings,
    choose_mapping,
)
from repro.dataflow.mapping import (
    MAPPINGS,
    Mapping,
    allowed_balancing,
    spatial_dims,
)
from repro.dataflow.simulator import SimulationResult, simulate
from repro.dataflow.tiling import SetStats, build_sets, stationary_chunks

__all__ = [
    "EagerPruningAccelerator",
    "EagerRound",
    "EagerRunResult",
    "sorting_cycles",
    "MappingChoice",
    "candidate_mappings",
    "choose_mapping",
    "layer_phase_energy",
    "network_energy",
    "EvalMemo",
    "EvalTimings",
    "LayerPhaseEval",
    "NetworkEval",
    "configure_memo",
    "evaluate_network",
    "memo_stats",
    "reference_implementation",
    "LayerLatency",
    "PhaseLatency",
    "network_latency",
    "balance_sets",
    "pair_halves",
    "split_halves",
    "MAPPINGS",
    "Mapping",
    "allowed_balancing",
    "spatial_dims",
    "SimulationResult",
    "simulate",
    "SetStats",
    "build_sets",
    "stationary_chunks",
]
