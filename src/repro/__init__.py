"""repro — reproduction of Procrustes (MICRO 2020).

A from-scratch Python implementation of the Procrustes sparse-training
system: the hardware-friendly Dropback variant (initial-weight decay +
streaming quantile estimation), the compressed-sparse-block weight
format, the spatial-minibatch dataflow with half-tile load balancing,
and an analytical accelerator model that regenerates every table and
figure of the paper's evaluation.

Subpackages
-----------
``repro.core``
    The sparse-training algorithm (Dropback, decay, quantile).
``repro.nn``
    NumPy DNN training substrate (layers, optimizers, datasets).
``repro.models``
    The five paper CNNs: paper-scale specs and mini trainable variants.
``repro.sparse``
    Compressed-sparse-block weight representation, the rival EIE/SCNN
    formats, and compressed activation storage.
``repro.workloads``
    Layer specs, per-phase operation spaces, sparsity profiles.
``repro.dataflow``
    Mappings, tiling, load balancing, latency and energy models, and
    the Eager Pruning accelerator model.
``repro.hw``
    Hardware unit models (PRNG/WR, QE), energy and area tables, the
    cycle-level array simulator, fabric cost and memory footprint
    models, and the behavioural CSB training engines.
``repro.report``
    ASCII plotting and CSV/JSON experiment export.
``repro.harness``
    One experiment driver per table and figure of the paper.
``repro.sweep``
    The parallel sweep/orchestration engine: declarative grid specs,
    a content-addressed result cache, and a process-pool runner that
    every grid-shaped experiment fans out through.
``repro.explore``
    Pareto design-space exploration on top of the sweep engine:
    constrained search spaces, grid/random/greedy strategies, and an
    incremental latency/energy/area frontier.
``repro.api``
    The typed entry point: the experiment registry (every paper
    artifact as a runnable ``Experiment``) and the layered
    ``RuntimeConfig`` (defaults < ``REPRO_*`` env < explicit argument)
    threaded through the whole stack.
``repro.obs``
    Observability: hierarchical trace spans with Chrome-trace export,
    a cross-process counter/gauge/histogram registry, and the
    library's structured-logging conventions — all no-ops unless
    enabled through ``RuntimeConfig``.
"""

import logging as _logging

__version__ = "1.1.0"

# Standard library-logging contract: repro.* loggers stay silent (and
# warning-free) until an application or repro.obs.configure_logging
# attaches a real handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core import (
    DropbackConfig,
    DropbackOptimizer,
    DumiqueEstimator,
    InitialWeightDecay,
    ParallelQuantileEstimator,
    ThresholdTracker,
)

__all__ = [
    "DropbackConfig",
    "DropbackOptimizer",
    "DumiqueEstimator",
    "InitialWeightDecay",
    "ParallelQuantileEstimator",
    "ThresholdTracker",
    "__version__",
]
