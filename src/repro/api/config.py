"""Layered runtime configuration: one typed object instead of env peeks.

Before this module, runtime behavior was toggled by ``REPRO_*``
environment variables read ad hoc inside the evaluation core, the
sampling helpers, and the campaign store — so library callers who
wanted a cache tier or exact sampling had to mutate ``os.environ`` and
remember to restore it.  :class:`RuntimeConfig` replaces that with a
plain frozen dataclass and an explicit precedence chain:

    defaults  <  ``REPRO_*`` environment  <  explicit argument

``RuntimeConfig()`` is pure defaults.  :meth:`RuntimeConfig.from_env`
layers the environment on top (and keyword overrides on top of that);
it is the **only** place in the library that consults ``os.environ``.
Everything downstream — :func:`repro.dataflow.simulator.simulate`,
:func:`repro.dataflow.evalcore.evaluate_network`, the sweep runner,
the campaign store — either takes a config argument explicitly or
falls back to the process-active config from :func:`get_config`.

:func:`config_scope` installs a config for the duration of a ``with``
block and restores *all* prior state on exit — the active config, the
evaluation core's derived default memo, and any sampling override —
which is what tests and the harness ``--cache-dir`` plumbing use
instead of environment mutation.

This module deliberately imports nothing heavy (no numpy, no sibling
packages) so any layer of the package can depend on it without cycles.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "RuntimeConfig",
    "config_scope",
    "get_config",
    "register_known_executor",
    "set_config",
]

#: Environment variable -> RuntimeConfig field, for the documented
#: knobs that map one-to-one onto string fields.
_PATH_ENV_VARS = {
    "REPRO_EVALCORE_CACHE_DIR": "evalcore_cache_dir",
    "REPRO_CAMPAIGN_CACHE_DIR": "campaign_cache_dir",
    "REPRO_CACHE_ROOT": "cache_root",
    "REPRO_SERVE_SOCKET": "serve_socket",
    "REPRO_TRACE_DIR": "trace_dir",
}

#: Log-level names :class:`RuntimeConfig.log_level` accepts (any
#: case).  Kept as literals so this module stays import-light — the
#: :mod:`logging` resolution itself lives in :mod:`repro.obs.logs`.
_LOG_LEVELS = ("CRITICAL", "ERROR", "WARNING", "INFO", "DEBUG", "NOTSET")

#: Executor names :class:`RuntimeConfig` accepts.  The sweep runner's
#: built-ins are seeded here (this module stays import-light, so it
#: cannot ask the runner); :func:`repro.sweep.runner.register_executor`
#: extends the set through :func:`register_known_executor` when a
#: custom backend is registered.
_KNOWN_EXECUTORS = {"serial", "process", "batched", "distributed"}


def register_known_executor(name: str) -> None:
    """Allow ``name`` as a :class:`RuntimeConfig` executor value.

    Called by :func:`repro.sweep.runner.register_executor`; config
    validation stays in lockstep with the runner's registry without
    this module importing it.
    """
    _KNOWN_EXECUTORS.add(name)


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that tunes *how* the models run (never *what* they
    compute — seeds aside, two configs produce the same numbers).

    Fields
    ------
    evalcore_memo / evalcore_memo_size
        The evaluation core's layer-level working-set memo: ``False``
        (or a non-positive size) disables it, mirroring the old
        ``REPRO_EVALCORE_MEMO=0`` convention.
    evalcore_cache_dir
        On-disk tier for the evalcore memo (``REPRO_EVALCORE_CACHE_DIR``).
    exact_sampling
        Restore the exact (slow) working-set sampling generators
        (``REPRO_EXACT_SAMPLING=1``).
    campaign_cache_dir
        Process-default :class:`~repro.campaign.trajectory.TrajectoryStore`
        directory (``REPRO_CAMPAIGN_CACHE_DIR``).
    cache_root
        One directory rooting *every* on-disk tier — the config
        equivalent of the harness ``--cache-dir`` flag: the sweep
        result cache lives at the root, the evalcore tier at
        ``<root>/evalcore``, and the trajectory store at
        ``<root>/campaign`` unless the specific fields above override
        them.
    seed
        Experiment seed override for registry runs; ``None`` keeps
        each experiment's canonical paper seed.
    executor / workers
        Sweep-runner fan-out policy (``REPRO_EXECUTOR`` /
        ``REPRO_WORKERS``).  Built-ins: ``"batched"`` (the default —
        group points that share a network and evaluate each group in
        one multi-candidate pass, falling back to serial where no
        batch evaluator exists), ``"serial"``, ``"process"``, and the
        ``"distributed"`` stub; custom backends registered through
        :func:`repro.sweep.runner.register_executor` are accepted too.
    retries / point_timeout_s
        Sweep-runner fault tolerance (``REPRO_RETRIES`` /
        ``REPRO_POINT_TIMEOUT``): how many times a failed point is
        re-attempted (with deterministic jittered backoff) and the
        per-attempt wall-clock deadline in seconds (``None`` = no
        deadline).  See :mod:`repro.reliability`.
    faults
        A deterministic fault-injection plan (``REPRO_FAULTS``),
        parsed by :class:`repro.reliability.faults.FaultPlan` — seeded
        injection of worker crashes, point errors/stalls, cache
        corruption, and slow I/O for chaos testing.  ``None`` (the
        default) injects nothing.
    serve_socket / serve_workers
        The evaluation service (:mod:`repro.serve`): the Unix-domain
        socket path the server binds / clients connect to
        (``REPRO_SERVE_SOCKET``; default ``<cache_root>/serve.sock``)
        and the server's evaluation worker-pool size
        (``REPRO_SERVE_WORKERS``; default 2).
    trace / trace_dir
        The observability layer (:mod:`repro.obs`): ``trace=True``
        (``REPRO_TRACE=1``) records hierarchical spans into the
        process trace buffer; ``trace_dir`` (``REPRO_TRACE_DIR``;
        default ``<cache_root>/traces``) is where span JSONL files and
        the merged Chrome trace land.  Off by default — the disabled
        path is a guarded no-op.
    metrics
        Enable the process-local counter/gauge/histogram registry
        (:mod:`repro.obs.metrics`; ``REPRO_METRICS=1``).  Pool workers
        ship their registry deltas back to the parent exactly like
        cache stats.  Telemetry never changes evaluation results.
    log_level
        Level name for :func:`repro.obs.logs.configure_logging`
        (``REPRO_LOG_LEVEL``; e.g. ``"INFO"``, any case).  ``None``
        (the default) leaves logging unconfigured — the library's
        ``repro.*`` loggers stay silent under the ``NullHandler``.
    """

    evalcore_memo: bool = True
    evalcore_memo_size: int = 512
    evalcore_cache_dir: str | None = None
    exact_sampling: bool = False
    campaign_cache_dir: str | None = None
    cache_root: str | None = None
    seed: int | None = None
    executor: str = "batched"
    workers: int | None = None
    retries: int = 0
    point_timeout_s: float | None = None
    faults: str | None = None
    serve_socket: str | None = None
    serve_workers: int | None = None
    trace: bool = False
    trace_dir: str | None = None
    metrics: bool = False
    log_level: str | None = None

    def __post_init__(self) -> None:
        if self.executor not in _KNOWN_EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"known executors: {sorted(_KNOWN_EXECUTORS)}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0 (got {self.retries})")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive "
                f"(got {self.point_timeout_s})"
            )
        if self.serve_workers is not None and self.serve_workers < 1:
            raise ValueError(
                f"serve_workers must be >= 1 (got {self.serve_workers})"
            )
        if (
            self.log_level is not None
            and self.log_level.upper() not in _LOG_LEVELS
        ):
            raise ValueError(
                f"unknown log_level {self.log_level!r}; "
                f"expected one of {list(_LOG_LEVELS)} (any case)"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_env(
        cls,
        environ: Mapping[str, str] | None = None,
        **overrides: Any,
    ) -> "RuntimeConfig":
        """defaults < ``REPRO_*`` environment < explicit ``overrides``.

        This classmethod is the single point where the library consults
        the environment; pass ``environ`` to read from a mapping other
        than ``os.environ`` (tests use plain dicts).
        """
        env = os.environ if environ is None else environ
        values: dict[str, Any] = {}
        if "REPRO_EVALCORE_MEMO" in env:
            values["evalcore_memo"] = env["REPRO_EVALCORE_MEMO"] != "0"
        raw_size = env.get("REPRO_EVALCORE_MEMO_SIZE")
        if raw_size is not None:
            try:
                values["evalcore_memo_size"] = int(raw_size)
            except ValueError:
                raise ValueError(
                    f"REPRO_EVALCORE_MEMO_SIZE must be an integer "
                    f"(got {raw_size!r})"
                ) from None
        if env.get("REPRO_EXACT_SAMPLING", "") == "1":
            values["exact_sampling"] = True
        raw_executor = env.get("REPRO_EXECUTOR")
        if raw_executor:
            values["executor"] = raw_executor
        raw_workers = env.get("REPRO_WORKERS")
        if raw_workers is not None:
            try:
                values["workers"] = int(raw_workers)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer "
                    f"(got {raw_workers!r})"
                ) from None
        raw_retries = env.get("REPRO_RETRIES")
        if raw_retries is not None:
            try:
                values["retries"] = int(raw_retries)
            except ValueError:
                raise ValueError(
                    f"REPRO_RETRIES must be an integer "
                    f"(got {raw_retries!r})"
                ) from None
        raw_timeout = env.get("REPRO_POINT_TIMEOUT")
        if raw_timeout is not None:
            try:
                values["point_timeout_s"] = float(raw_timeout)
            except ValueError:
                raise ValueError(
                    f"REPRO_POINT_TIMEOUT must be a number of seconds "
                    f"(got {raw_timeout!r})"
                ) from None
        raw_faults = env.get("REPRO_FAULTS")
        if raw_faults:
            values["faults"] = raw_faults
        if env.get("REPRO_TRACE", "") == "1":
            values["trace"] = True
        if env.get("REPRO_METRICS", "") == "1":
            values["metrics"] = True
        raw_log_level = env.get("REPRO_LOG_LEVEL")
        if raw_log_level:
            values["log_level"] = raw_log_level
        raw_serve_workers = env.get("REPRO_SERVE_WORKERS")
        if raw_serve_workers is not None:
            try:
                values["serve_workers"] = int(raw_serve_workers)
            except ValueError:
                raise ValueError(
                    f"REPRO_SERVE_WORKERS must be an integer "
                    f"(got {raw_serve_workers!r})"
                ) from None
        for var, field_name in _PATH_ENV_VARS.items():
            raw = env.get(var)
            if raw:
                values[field_name] = raw
        values.update(overrides)
        return cls(**values)

    def with_(self, **overrides: Any) -> "RuntimeConfig":
        """A copy with the given fields replaced (explicit layer)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def memo_enabled(self) -> bool:
        """Whether the evalcore default memo should exist at all."""
        return self.evalcore_memo and self.evalcore_memo_size > 0

    def effective_evalcore_cache_dir(self) -> str | None:
        """The evalcore disk tier: explicit dir, else under the root."""
        if self.evalcore_cache_dir:
            return self.evalcore_cache_dir
        if self.cache_root:
            return str(Path(self.cache_root) / "evalcore")
        return None

    def effective_campaign_cache_dir(self) -> str | None:
        """The trajectory store: explicit dir, else under the root."""
        if self.campaign_cache_dir:
            return self.campaign_cache_dir
        if self.cache_root:
            return str(Path(self.cache_root) / "campaign")
        return None

    def effective_trace_dir(self) -> str | None:
        """Where trace files land: explicit dir, else under the root."""
        if self.trace_dir:
            return self.trace_dir
        if self.cache_root:
            return str(Path(self.cache_root) / "traces")
        return None

    def sweep_cache(self):
        """A sweep :class:`~repro.sweep.cache.ResultCache` at the cache
        root, or ``None`` when no root is configured."""
        if not self.cache_root:
            return None
        from repro.sweep.cache import ResultCache

        return ResultCache(self.cache_root)

    def trajectory_store(self):
        """The configured trajectory store, or ``None``."""
        root = self.effective_campaign_cache_dir()
        if not root:
            return None
        from repro.campaign.trajectory import TrajectoryStore

        return TrajectoryStore(root)


# ----------------------------------------------------------------------
# process-active config
# ----------------------------------------------------------------------
_active: RuntimeConfig | None = None

#: Modules holding process state *derived* from the active config.
#: Each provides ``_on_config_change`` (drop derived state so it
#: re-derives lazily) plus ``_scope_save``/``_scope_restore`` (reset
#: on scope entry, exact restore on exit).  Looked up via
#: ``sys.modules`` so this module never imports them.
_DERIVED_STATE_MODULES = (
    "repro.dataflow.evalcore",
    "repro.dataflow.sampling",
    "repro.obs.metrics",
    "repro.obs.trace",
)


def get_config() -> RuntimeConfig:
    """The process-active config.

    An explicitly installed config (via :func:`set_config` /
    :func:`config_scope`) wins; otherwise the environment is layered
    freshly on each call, so processes that never touch the API keep
    the historical live-env behavior.
    """
    if _active is not None:
        return _active
    return RuntimeConfig.from_env()


def set_config(config: RuntimeConfig | None) -> RuntimeConfig | None:
    """Install ``config`` as process-active; returns the previous one.

    ``None`` uninstalls, reverting :func:`get_config` to the
    environment layer.  State other modules derived from the previous
    config (the evalcore default memo) is dropped so it re-derives
    from the new one.  Prefer :func:`config_scope` for anything
    temporary — it also restores that derived state exactly.
    """
    global _active
    previous = _active
    _active = config
    for name in _DERIVED_STATE_MODULES:
        module = sys.modules.get(name)
        if module is not None:
            module._on_config_change()
    return previous


@contextmanager
def config_scope(
    config: RuntimeConfig | None = None, **overrides: Any
) -> Iterator[RuntimeConfig]:
    """Run a block under ``config`` (or the current config plus
    ``overrides``), restoring all prior state on exit.

    On entry the scoped config becomes process-active and any
    config-derived module state (evalcore's default memo, a sampling
    override) is reset so the scope's config governs; on exit the
    previous active config *and* the exact prior module state return —
    including explicitly installed memos and in-flight sampling
    overrides.  Scopes nest.
    """
    base = config if config is not None else get_config()
    scoped = base.with_(**overrides) if overrides else base
    saved = {
        name: sys.modules[name]._scope_save()
        for name in _DERIVED_STATE_MODULES
        if name in sys.modules
    }
    previous = set_config(scoped)
    try:
        yield scoped
    finally:
        set_config(previous)
        for name, state in saved.items():
            sys.modules[name]._scope_restore(state)
