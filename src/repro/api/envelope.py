"""The typed request/result envelope: one schema at every API boundary.

Before this module, each boundary shipped its own ad-hoc dict: the
sweep runner returned ``PointResult.values`` mappings, ``Experiment.run``
returned whatever the harness function produced, and there was no wire
form at all.  :class:`EvalRequest` and :class:`EvalResult` are the one
envelope shared by the evaluation service (:mod:`repro.serve`), the
sweep evaluators' records, and registry experiment runs:

* an :class:`EvalRequest` names **what** to evaluate — a registered
  experiment (``kind="experiment"``, ``target`` a registry id) or one
  raw sweep/design point (``kind="point"``, ``target`` a registered
  evaluator) — plus its parameters and seed.  Its canonical JSON is its
  identity: :meth:`EvalRequest.digest` is the content hash the service
  deduplicates and caches on.
* an :class:`EvalResult` carries the JSON-able values (or the error),
  the request digest it answers, and whether it was served from cache.
* a :class:`JobStatus` is one progress event for an in-flight request.

All three carry a versioned ``schema`` field and round-trip through
the canonical-JSON wire codec (:meth:`to_wire` / :meth:`from_wire`),
so records written today stay decodable — and rejectable with a clear
error — by future readers.

:func:`evaluate` is the one in-process entry point over the envelope:
``evaluate(request, config)`` returns the same :class:`EvalResult` the
service would stream back, bit-identical values included — point
requests run through the sweep runner (same cache keys, same executor
seam), experiment requests through the registry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.api.config import RuntimeConfig, get_config
from repro.obs.trace import span as _span

__all__ = [
    "SCHEMA_VERSION",
    "EvalRequest",
    "EvalResult",
    "JobStatus",
    "evaluate",
    "evaluate_requests",
    "experiment_request",
    "point_request",
]

#: Version of the wire schema these dataclasses encode.  Bump on any
#: incompatible field change; decoders reject records from a *newer*
#: schema instead of misreading them.
SCHEMA_VERSION = 1

#: Request kinds the envelope (and the service) understand.
REQUEST_KINDS = ("experiment", "point")

#: Terminal and non-terminal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")


def _canonical_json(value: Any) -> str:
    from repro.sweep.spec import canonical_json

    return canonical_json(value)


def _check_schema(obj: Mapping[str, Any], what: str) -> int:
    schema = obj.get("schema", SCHEMA_VERSION)
    if not isinstance(schema, int) or schema < 1:
        raise ValueError(f"{what} schema must be a positive int, got {schema!r}")
    if schema > SCHEMA_VERSION:
        raise ValueError(
            f"{what} uses wire schema {schema}, newer than this library's "
            f"{SCHEMA_VERSION}; upgrade the reader instead of guessing"
        )
    return schema


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation request: an experiment run or a raw sweep point.

    ``kind="experiment"``: ``target`` is a registry id (see
    ``repro.api.list_experiments``), ``params`` are keyword overrides
    forwarded to the experiment runner, and ``seed`` (optional)
    overrides the experiment's canonical seed via the config layer.

    ``kind="point"``: ``target`` is a registered sweep evaluator name,
    ``params`` the point's full parameter assignment, and ``seed`` the
    sweep-point seed (default 0) — exactly the identity a
    ``SweepSpec.explicit`` point with ``seed_mode="fixed"`` would get,
    so served results share cache entries with direct ``run_sweep``
    calls point-for-point.
    """

    kind: str
    target: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"request kind must be one of {REQUEST_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.target:
            raise ValueError("request target must be non-empty")
        object.__setattr__(self, "params", dict(self.params))
        _canonical_json(self.params)  # validate early, clear message
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"request seed must be an int, got {self.seed!r}")

    # -- identity ------------------------------------------------------
    def canonical(self) -> str:
        """The canonical JSON this request is content-addressed by."""
        return _canonical_json(self.to_wire())

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical` — the dedup/cache identity."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @property
    def point_seed(self) -> int:
        """The effective sweep-point seed for ``kind="point"``."""
        return 0 if self.seed is None else self.seed

    # -- wire codec ----------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "schema": self.schema,
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
        }
        if self.seed is not None:
            wire["seed"] = self.seed
        return wire

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "EvalRequest":
        schema = _check_schema(obj, "EvalRequest")
        return cls(
            kind=obj.get("kind", ""),
            target=obj.get("target", ""),
            params=obj.get("params", {}),
            seed=obj.get("seed"),
            schema=schema,
        )


def experiment_request(
    experiment_id: str, seed: int | None = None, **overrides: Any
) -> EvalRequest:
    """Convenience constructor for an experiment-kind request."""
    return EvalRequest(
        kind="experiment", target=experiment_id, params=overrides, seed=seed
    )


def point_request(
    evaluator: str, params: Mapping[str, Any], seed: int | None = None
) -> EvalRequest:
    """Convenience constructor for a sweep/design-point request."""
    return EvalRequest(kind="point", target=evaluator, params=params, seed=seed)


@dataclass(frozen=True)
class EvalResult:
    """One evaluation outcome: values on success, an error otherwise.

    ``request_digest`` ties the result to the :class:`EvalRequest` it
    answers; ``cached`` records whether any tier (result cache, dedup
    onto an in-flight computation) served it without re-evaluating;
    ``wall_time_s`` is the evaluation wall time (0.0 for cache hits).
    ``values`` are JSON-able and deterministic — timing lives in this
    envelope, never in the payload — so two results for one request
    compare bit-identically via :meth:`canonical`.
    """

    request_digest: str
    status: str
    values: Mapping[str, Any] | None = None
    error: str | None = None
    cached: bool = False
    wall_time_s: float = 0.0
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise ValueError(
                f"result status must be 'ok' or 'error', got {self.status!r}"
            )
        if self.status == "ok" and self.values is None:
            raise ValueError("an ok result must carry values")
        if self.status == "error" and not self.error:
            raise ValueError("an error result must carry an error message")
        if self.values is not None:
            object.__setattr__(self, "values", dict(self.values))

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical(self) -> str:
        """Canonical JSON of the deterministic payload (digest, status,
        values/error — **not** timing or cache provenance), so served
        and directly-computed results compare bit-for-bit."""
        return _canonical_json(
            {
                "request_digest": self.request_digest,
                "status": self.status,
                "values": dict(self.values) if self.values is not None else None,
                "error": self.error,
            }
        )

    # -- wire codec ----------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "schema": self.schema,
            "request_digest": self.request_digest,
            "status": self.status,
            "cached": self.cached,
            "wall_time_s": self.wall_time_s,
        }
        if self.values is not None:
            wire["values"] = dict(self.values)
        if self.error is not None:
            wire["error"] = self.error
        return wire

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "EvalResult":
        schema = _check_schema(obj, "EvalResult")
        return cls(
            request_digest=obj.get("request_digest", ""),
            status=obj.get("status", ""),
            values=obj.get("values"),
            error=obj.get("error"),
            cached=bool(obj.get("cached", False)),
            wall_time_s=float(obj.get("wall_time_s", 0.0)),
            schema=schema,
        )

    def with_provenance(
        self, cached: bool | None = None, wall_time_s: float | None = None
    ) -> "EvalResult":
        """A copy with the non-payload provenance fields replaced."""
        changes: dict[str, Any] = {}
        if cached is not None:
            changes["cached"] = cached
        if wall_time_s is not None:
            changes["wall_time_s"] = wall_time_s
        return replace(self, **changes) if changes else self


@dataclass(frozen=True)
class JobStatus:
    """One progress event for an in-flight service job."""

    job_id: str
    state: str
    request_digest: str = ""
    queue_depth: int | None = None
    detail: str | None = None
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(
                f"job state must be one of {JOB_STATES}, got {self.state!r}"
            )

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "schema": self.schema,
            "job_id": self.job_id,
            "state": self.state,
            "request_digest": self.request_digest,
        }
        if self.queue_depth is not None:
            wire["queue_depth"] = self.queue_depth
        if self.detail is not None:
            wire["detail"] = self.detail
        return wire

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "JobStatus":
        schema = _check_schema(obj, "JobStatus")
        return cls(
            job_id=obj.get("job_id", ""),
            state=obj.get("state", ""),
            request_digest=obj.get("request_digest", ""),
            queue_depth=obj.get("queue_depth"),
            detail=obj.get("detail"),
            schema=schema,
        )


# ----------------------------------------------------------------------
# evaluation over the envelope (shared by repro.serve workers and
# in-process callers)
# ----------------------------------------------------------------------
def _experiment_key_material(request: EvalRequest) -> dict[str, Any]:
    """Cache key material for an experiment request.

    Mirrors the sweep point's ``key_material`` shape (evaluator /
    version / params / seed) with the experiment id in the evaluator
    slot, namespaced so the two families can never collide; the package
    version invalidates cached experiment payloads on release bumps.
    """
    import repro

    return {
        "evaluator": f"experiment:{request.target}",
        "version": f"repro={repro.__version__}",
        "params": dict(request.params),
        "seed": request.seed,
    }


def _run_experiment(
    request: EvalRequest, config: RuntimeConfig, cache
) -> EvalResult:
    """One experiment request: cache lookup, registry run, cache fill."""
    import time

    from repro.api.registry import get_experiment
    from repro.report.export import _jsonable

    material = _experiment_key_material(request)
    if cache is not None:
        record = cache.get(material)
        if record is not None:
            return EvalResult(
                request_digest=request.digest(),
                status="ok",
                values=record["values"],
                cached=True,
            )
    run_config = (
        config.with_(seed=request.seed) if request.seed is not None else config
    )
    start = time.perf_counter()
    result = get_experiment(request.target).run(run_config, **request.params)
    wall = time.perf_counter() - start
    values = _jsonable(result)
    if not isinstance(values, Mapping):
        values = {"result": values}
    if cache is not None:
        cache.put(material, values)
    return EvalResult(
        request_digest=request.digest(),
        status="ok",
        values=values,
        cached=False,
        wall_time_s=wall,
    )


def _run_point_group(
    requests: Sequence[EvalRequest], config: RuntimeConfig, cache
) -> tuple[list[EvalResult], dict[str, int]]:
    """One group of point requests sharing (evaluator, seed): a single
    explicit sweep through the configured executor seam.

    Returns results in request order plus the run's reliability
    counters.  The spec's identity fields match what a direct
    ``run_sweep`` over the same points uses, so values — and cache
    entries — are bit-identical between the two paths.
    """
    from repro.sweep.runner import SweepRunner
    from repro.sweep.spec import SweepSpec

    evaluator = requests[0].target
    seed = requests[0].point_seed
    executor = config.executor if config.executor != "distributed" else "batched"
    spec = SweepSpec.explicit(
        name=f"serve-{evaluator}",
        evaluator=evaluator,
        points=[dict(r.params) for r in requests],
        base_seed=seed,
        seed_mode="fixed",
    )
    runner = SweepRunner(
        cache=cache, executor=executor, workers=1, config=config
    )
    sweep = runner.run(spec)
    results = [
        EvalResult(
            request_digest=request.digest(),
            status="ok",
            values=point.values,
            cached=point.cached,
            wall_time_s=point.wall_time_s,
        )
        for request, point in zip(requests, sweep.points)
    ]
    return results, dict(sweep.reliability)


def _merge_counters(into: dict[str, int], new: Mapping[str, int]) -> None:
    for key, value in new.items():
        into[key] = into.get(key, 0) + int(value)


def evaluate_requests(
    requests: Sequence[EvalRequest],
    config: RuntimeConfig | None = None,
    cache=None,
) -> tuple[list[EvalResult], dict[str, Any]]:
    """Evaluate a batch of requests; returns (results, accounting).

    Point requests are grouped by (evaluator, seed) and each group runs
    as one explicit sweep through the configured executor — under the
    default ``"batched"`` executor, points sharing a workload collapse
    into one multi-candidate evaluation pass.  Experiment requests run
    through the registry, individually.  A failing request yields an
    ``error`` result; it never aborts its batch (surviving group
    members fall back to singleton evaluation).

    ``cache`` defaults to ``config.sweep_cache()`` — the content-
    addressed result tier both request kinds are answered from and
    written back to.  The accounting dict carries the per-call cache-
    stats delta (``"sweep_cache"``) and merged reliability counters
    (``"reliability"``), which is how the service aggregates hit rates
    across pool workers instead of under-reporting them.
    """
    config = config if config is not None else get_config()
    if cache is None:
        cache = config.sweep_cache()
    stats_before = cache.stats.snapshot() if cache is not None else None
    reliability: dict[str, int] = {}
    results: dict[int, EvalResult] = {}

    groups: dict[tuple[str, int], list[int]] = {}
    for index, request in enumerate(requests):
        if request.kind == "experiment":
            try:
                with _span(
                    "envelope.request",
                    kind="experiment",
                    target=request.target,
                ):
                    results[index] = _run_experiment(request, config, cache)
            except Exception as error:
                results[index] = EvalResult(
                    request_digest=request.digest(),
                    status="error",
                    error=f"{type(error).__name__}: {error}",
                )
        else:
            key = (request.target, request.point_seed)
            groups.setdefault(key, []).append(index)

    for indices in groups.values():
        group = [requests[i] for i in indices]
        try:
            with _span(
                "envelope.request",
                kind="point",
                target=group[0].target,
                points=len(group),
            ):
                group_results, counters = _run_point_group(
                    group, config, cache
                )
        except Exception:
            # The group failed as a whole (or raised its first point
            # failure at the end); re-run each member as a singleton so
            # completable points still complete — already-committed
            # ones come straight back from the cache.
            group_results = []
            for request in group:
                try:
                    singles, counters = _run_point_group(
                        [request], config, cache
                    )
                    group_results.append(singles[0])
                    _merge_counters(reliability, counters)
                except Exception as error:
                    group_results.append(
                        EvalResult(
                            request_digest=request.digest(),
                            status="error",
                            error=f"{type(error).__name__}: {error}",
                        )
                    )
        else:
            _merge_counters(reliability, counters)
        for index, result in zip(indices, group_results):
            results[index] = result

    accounting: dict[str, Any] = {"reliability": reliability}
    if cache is not None:
        accounting["sweep_cache"] = cache.stats.diff(stats_before).as_dict()
    return [results[i] for i in range(len(requests))], accounting


def evaluate(
    request: EvalRequest, config: RuntimeConfig | None = None, cache=None
) -> EvalResult:
    """Evaluate one request in-process; the typed little sibling of
    submitting it to a :class:`repro.serve.Server`."""
    results, _ = evaluate_requests([request], config=config, cache=cache)
    return results[0]
