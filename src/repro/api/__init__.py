"""repro.api — the typed programmatic entry point.

Two pieces:

* the **experiment registry** (:mod:`repro.api.registry`): every paper
  table/figure and beyond-the-paper analysis as a registered
  :class:`Experiment` with ``run(config)`` / ``format(result)`` /
  ``export(results_dir, result)``, dispatched by id::

      from repro.api import RuntimeConfig, get_experiment

      result = get_experiment("fig18-19").run(RuntimeConfig())
      print(get_experiment("fig18-19").format(result))

* the **layered runtime configuration**
  (:mod:`repro.api.config`): :class:`RuntimeConfig` with precedence
  *defaults < ``REPRO_*`` env < explicit argument*, threaded
  explicitly through the evaluation stack so library callers never
  mutate ``os.environ``; :func:`config_scope` scopes a config (and
  every piece of state derived from it) for tests and the CLI.

* the **request/result envelope** (:mod:`repro.api.envelope`):
  :class:`EvalRequest` / :class:`EvalResult` / :class:`JobStatus` —
  the one typed, versioned, canonically-JSON-encoded envelope shared
  by the evaluation service (:mod:`repro.serve`), the sweep engine's
  records, and registry runs; :func:`evaluate` answers a request
  in-process, bit-identically to what the service would stream back.

See ``docs/api.md`` for the full guide.
"""

from repro.api.config import (
    RuntimeConfig,
    config_scope,
    get_config,
    set_config,
)
from repro.api.envelope import (
    SCHEMA_VERSION,
    EvalRequest,
    EvalResult,
    JobStatus,
    evaluate,
    evaluate_requests,
    experiment_request,
    point_request,
)
from repro.api.registry import (
    Experiment,
    experiment_for_artifact,
    experiment_ids,
    get_experiment,
    list_experiments,
    register_experiment,
)

__all__ = [
    "SCHEMA_VERSION",
    "EvalRequest",
    "EvalResult",
    "Experiment",
    "JobStatus",
    "RuntimeConfig",
    "config_scope",
    "evaluate",
    "evaluate_requests",
    "experiment_for_artifact",
    "experiment_ids",
    "experiment_request",
    "get_config",
    "get_experiment",
    "list_experiments",
    "point_request",
    "register_experiment",
    "set_config",
]
