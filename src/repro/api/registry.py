"""The experiment registry: one typed catalogue of paper artifacts.

Every table, figure, and beyond-the-paper analysis the harness can
reproduce is a registered :class:`Experiment`: a stable id, the paper
artifact(s) it renders, a ``run(config) -> result`` entry point, a
``format(result) -> str`` renderer, and (where the artifact is
exported) an ``export(results_dir, result)`` writer.  The CLI
(``python -m repro.harness run <id>`` / ``list``), the bulk exporter
(:func:`repro.harness.export_all.export_all`), the docs figure index,
and the tests all dispatch through this one catalogue instead of
importing ``run_*/format_*`` function pairs from five modules.

Runners resolve their harness implementation **lazily** — this module
imports nothing heavy at import time, so ``repro.api`` is safe to
import from any layer (the evaluation core imports
:mod:`repro.api.config`, which shares the package ``__init__``).

Runner contract: ``runner(config, **overrides)`` where ``config`` is a
:class:`~repro.api.config.RuntimeConfig`.  A runner maps only the
config fields that apply to it (sweep cache/executor/workers, seed)
onto the underlying harness function and leaves every other default at
the harness function's canonical value, so
``get_experiment(id).run(RuntimeConfig())`` is bit-identical to
calling the harness function directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api.config import RuntimeConfig, get_config

__all__ = [
    "Experiment",
    "experiment_for_artifact",
    "experiment_ids",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]

#: Experiment families, in ``python -m repro.harness all`` order.
FAMILIES = ("tables", "arch", "beyond", "training")

Runner = Callable[..., Any]
Formatter = Callable[[Any], str]
Exporter = Callable[[Any, Any], None]  # (ResultsDirectory, result)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact (or analysis) in the catalogue.

    ``loader`` returns ``(runner, formatter, exporter_or_None)`` and
    runs at first use, keeping registration import-free.
    """

    id: str
    title: str
    artifacts: tuple[str, ...]
    family: str
    loader: Callable[[], tuple[Runner, Formatter, Exporter | None]]
    exported: bool = False
    _resolved: dict = field(default_factory=dict, compare=False, repr=False)

    def _parts(self) -> tuple[Runner, Formatter, Exporter | None]:
        if "parts" not in self._resolved:
            self._resolved["parts"] = self.loader()
        return self._resolved["parts"]

    def run(
        self, config: RuntimeConfig | None = None, **overrides: Any
    ) -> Any:
        """Run the experiment under ``config`` (default: active config).

        ``overrides`` forward to the underlying harness runner (e.g.
        ``epochs=...`` or ``with_training=...``).
        """
        runner, _, _ = self._parts()
        return runner(config if config is not None else get_config(),
                      **overrides)

    def format(self, result: Any) -> str:
        """Render a :meth:`run` result the way the CLI prints it."""
        _, formatter, _ = self._parts()
        return formatter(result)

    def export(self, results_dir: Any, result: Any) -> None:
        """Persist a :meth:`run` result through a ``ResultsDirectory``."""
        _, _, exporter = self._parts()
        if exporter is None:
            raise ValueError(
                f"experiment {self.id!r} does not define an export schema"
            )
        exporter(results_dir, result)


_REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    id: str,
    title: str,
    artifacts: tuple[str, ...],
    family: str,
    loader: Callable[[], tuple[Runner, Formatter, Exporter | None]],
    exported: bool = False,
) -> Experiment:
    """Register (and return) an experiment; ids must be unique."""
    if family not in FAMILIES:
        raise ValueError(
            f"family must be one of {FAMILIES} (got {family!r})"
        )
    if id in _REGISTRY:
        raise ValueError(f"experiment id {id!r} already registered")
    experiment = Experiment(
        id=id,
        title=title,
        artifacts=artifacts,
        family=family,
        loader=loader,
        exported=exported,
    )
    _REGISTRY[id] = experiment
    return experiment


def get_experiment(id: str) -> Experiment:
    try:
        return _REGISTRY[id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {id!r}; choose from {experiment_ids()}"
        ) from None


def experiment_ids() -> list[str]:
    return list(_REGISTRY)


def list_experiments(family: str | None = None) -> list[Experiment]:
    """Registered experiments, in registration (catalogue) order."""
    experiments = list(_REGISTRY.values())
    if family is None:
        return experiments
    return [e for e in experiments if e.family == family]


def experiment_for_artifact(artifact: str) -> Experiment:
    """Resolve a paper artifact name ("Figure 18", "Table II") to the
    experiment that reproduces it."""
    for experiment in _REGISTRY.values():
        if artifact in experiment.artifacts:
            return experiment
    raise KeyError(
        f"no registered experiment reproduces {artifact!r}; known "
        f"artifacts: {sorted(a for e in _REGISTRY.values() for a in e.artifacts)}"
    )


# ----------------------------------------------------------------------
# config plumbing shared by the runners
# ----------------------------------------------------------------------
def _sweep_kwargs(config: RuntimeConfig) -> dict[str, Any]:
    """The sweep-engine kwargs a config implies (the config itself
    rides along so pool workers inherit cache tiers by pickle)."""
    return {
        "cache": config.sweep_cache(),
        "executor": config.executor,
        "workers": config.workers,
        "config": config,
    }


def _seed_kwargs(config: RuntimeConfig) -> dict[str, Any]:
    """A seed override only when the config sets one explicitly."""
    return {} if config.seed is None else {"seed": config.seed}


# ----------------------------------------------------------------------
# the catalogue
# ----------------------------------------------------------------------
def _load_fig01():
    from repro.harness import arch_experiments as _arch
    from repro.harness.export_all import _export_fig01

    run_fig01_potential = _arch.entry_point("run_fig01_potential")
    format_fig01 = _arch.entry_point("format_fig01")

    def run(config, **kw):
        return run_fig01_potential(**{**_seed_kwargs(config), **kw})

    return run, format_fig01, _export_fig01


def _load_histogram(experiment_id: str, mapping: str, balanced: bool,
                    figure: str):
    from repro.harness import arch_experiments as _arch
    from repro.harness.export_all import _export_histogram

    run_imbalance_histogram = _arch.entry_point("run_imbalance_histogram")
    format_histogram = _arch.entry_point("format_histogram")

    def run(config, **kw):
        params = {"network": "vgg-s", "mapping": mapping,
                  "balanced": balanced, **_seed_kwargs(config), **kw}
        return run_imbalance_histogram(**params)

    def fmt(result):
        return format_histogram(result, figure)

    def export(results, result):
        _export_histogram(results, experiment_id, result)

    return run, fmt, export


def _load_fig05():
    return _load_histogram("fig05", "CK", False, "Figure 5")


def _load_fig13():
    return _load_histogram("fig13", "KN", True, "Figure 13")


def _load_fig17():
    from repro.harness import arch_experiments as _arch
    from repro.harness.export_all import _export_fig17

    run_fig17_energy_breakdown = _arch.entry_point("run_fig17_energy_breakdown")
    format_fig17 = _arch.entry_point("format_fig17")

    def run(config, **kw):
        return run_fig17_energy_breakdown(
            **{**_sweep_kwargs(config), **_seed_kwargs(config), **kw}
        )

    return run, format_fig17, _export_fig17


def _load_fig18_19():
    from repro.harness import arch_experiments as _arch
    from repro.harness.export_all import _export_fig18_19

    run_fig18_fig19_dataflows = _arch.entry_point("run_fig18_fig19_dataflows")
    format_fig18 = _arch.entry_point("format_fig18")
    format_fig19 = _arch.entry_point("format_fig19")

    def run(config, **kw):
        return run_fig18_fig19_dataflows(
            **{**_sweep_kwargs(config), **_seed_kwargs(config), **kw}
        )

    def fmt(result):
        return format_fig18(result) + "\n\n" + format_fig19(result)

    return run, fmt, _export_fig18_19


def _load_fig20():
    from repro.harness import arch_experiments as _arch
    from repro.harness.export_all import _export_fig20

    run_fig20_scalability = _arch.entry_point("run_fig20_scalability")
    format_fig20 = _arch.entry_point("format_fig20")

    def run(config, **kw):
        return run_fig20_scalability(
            **{**_sweep_kwargs(config), **_seed_kwargs(config), **kw}
        )

    return run, format_fig20, _export_fig20


def _load_table1():
    from repro.harness.tables import format_table1, run_table1

    def run(config, **kw):
        return run_table1(**kw)

    return run, format_table1, None


def _load_table2():
    from repro.harness.export_all import _export_table2
    from repro.harness.tables import format_table2, run_table2

    def run(config, with_training: bool = False, **kw):
        return run_table2(
            with_training=with_training, **{**_seed_kwargs(config), **kw}
        )

    return run, format_table2, _export_table2


def _load_table3():
    from repro.harness.export_all import _export_table3
    from repro.harness.tables import format_table3, run_table3

    def run(config, **kw):
        return run_table3(**kw)

    return run, format_table3, _export_table3


def _load_fig06():
    from repro.harness import training_experiments as _training

    run_fig06_decay = _training.entry_point("run_fig06_decay")
    format_curves = _training.entry_point("format_curves")

    def run(config, **kw):
        return run_fig06_decay(**{"epochs": 8, **_seed_kwargs(config), **kw})

    def fmt(result):
        return format_curves(list(result), "init decay vs none")

    return run, fmt, None


def _load_fig07():
    from repro.harness import training_experiments as _training

    run_fig07_quantile = _training.entry_point("run_fig07_quantile")
    format_curves = _training.entry_point("format_curves")

    def run(config, **kw):
        return run_fig07_quantile(**{"epochs": 8, **_seed_kwargs(config), **kw})

    def fmt(result):
        return format_curves(list(result), "quantile vs sort")

    return run, fmt, None


def _load_fig15():
    from repro.harness import training_experiments as _training

    run_fig15_cifar_curves = _training.entry_point("run_fig15_cifar_curves")
    format_curves = _training.entry_point("format_curves")

    def run(config, **kw):
        return run_fig15_cifar_curves(
            **{**_sweep_kwargs(config), **_seed_kwargs(config), **kw}
        )

    def fmt(result):
        return "\n\n".join(
            format_curves(list(pair), network)
            for network, pair in result.items()
        )

    return run, fmt, None


def _load_fig16():
    from repro.harness import training_experiments as _training

    run_fig16_sparsity_sweep = _training.entry_point("run_fig16_sparsity_sweep")
    format_curves = _training.entry_point("format_curves")

    def run(config, **kw):
        return run_fig16_sparsity_sweep(
            **{**_sweep_kwargs(config), **_seed_kwargs(config), **kw}
        )

    def fmt(result):
        return format_curves(list(result.values()), "resnet18 sweep")

    return run, fmt, None


def _load_format_costs():
    from repro.harness import beyond_experiments as _beyond
    from repro.harness.export_all import _export_format_costs

    run_format_costs = _beyond.entry_point("run_format_costs")
    format_format_costs = _beyond.entry_point("format_format_costs")

    def run(config, **kw):
        return run_format_costs(**{**_seed_kwargs(config), **kw})

    return run, format_format_costs, _export_format_costs


def _load_schedule_survey():
    from repro.harness import beyond_experiments as _beyond
    from repro.harness.export_all import _export_schedule_survey

    run_schedule_survey = _beyond.entry_point("run_schedule_survey")
    format_schedule_survey = _beyond.entry_point("format_schedule_survey")

    def run(config, **kw):
        return run_schedule_survey(**kw)

    return run, format_schedule_survey, _export_schedule_survey


def _load_fabric_pricing():
    from repro.harness import beyond_experiments as _beyond
    from repro.harness.export_all import _export_fabric_pricing

    run_fabric_pricing = _beyond.entry_point("run_fabric_pricing")
    format_fabric_pricing = _beyond.entry_point("format_fabric_pricing")

    def run(config, **kw):
        return run_fabric_pricing(**{**_sweep_kwargs(config), **kw})

    return run, format_fabric_pricing, _export_fabric_pricing


def _load_eager_comparison():
    from repro.harness import beyond_experiments as _beyond

    run_eager_comparison = _beyond.entry_point("run_eager_comparison")
    format_eager_comparison = _beyond.entry_point("format_eager_comparison")

    def run(config, **kw):
        return run_eager_comparison(**{**_seed_kwargs(config), **kw})

    def fmt(result):
        return format_eager_comparison(*result)

    return run, fmt, None


def _register_builtins() -> None:
    register_experiment(
        "table1", "Accelerator configuration (baseline vs. Procrustes)",
        ("Table I",), "tables", _load_table1,
    )
    register_experiment(
        "table2", "Model statistics and sparsity",
        ("Table II",), "tables", _load_table2, exported=True,
    )
    register_experiment(
        "table3", "Silicon area and power costs",
        ("Table III",), "tables", _load_table3, exported=True,
    )
    register_experiment(
        "fig01", "Idealized potential of sparse training",
        ("Figure 1",), "arch", _load_fig01, exported=True,
    )
    register_experiment(
        "fig05", "Load imbalance, weight-stationary C,K, no balancing",
        ("Figure 5",), "arch", _load_fig05, exported=True,
    )
    register_experiment(
        "fig13", "Load imbalance, K,N with half-tile balancing",
        ("Figure 13",), "arch", _load_fig13, exported=True,
    )
    register_experiment(
        "fig17", "Per-phase energy breakdown (K,N dataflow)",
        ("Figure 17",), "arch", _load_fig17, exported=True,
    )
    register_experiment(
        "fig18-19", "Energy and latency across the four dataflows",
        ("Figure 18", "Figure 19"), "arch", _load_fig18_19, exported=True,
    )
    register_experiment(
        "fig20", "Scalability 16x16 -> 32x32",
        ("Figure 20",), "arch", _load_fig20, exported=True,
    )
    register_experiment(
        "format-costs",
        "Sparse-format access costs under training patterns (Section II-D)",
        ("Figure 8",), "beyond", _load_format_costs, exported=True,
    )
    register_experiment(
        "schedule-survey",
        "Schedule/memory survey of intro claims (i)-(iii)",
        (), "beyond", _load_schedule_survey, exported=True,
    )
    register_experiment(
        "fabric-pricing",
        "Interconnect options priced vs. array size (Section IV-C)",
        ("Figure 10", "Figure 14"), "beyond", _load_fabric_pricing,
        exported=True,
    )
    register_experiment(
        "eager-comparison",
        "Eager Pruning dataflow vs. Procrustes K,N (Section VII-A)",
        (), "beyond", _load_eager_comparison,
    )
    register_experiment(
        "fig06", "Initial-weight decay vs. no decay",
        ("Figure 6",), "training", _load_fig06,
    )
    register_experiment(
        "fig07", "Quantile estimation vs. exact sort",
        ("Figure 7",), "training", _load_fig07,
    )
    register_experiment(
        "fig15", "Procrustes vs. SGD accuracy (CIFAR-10 stand-ins)",
        ("Figure 15",), "training", _load_fig15,
    )
    register_experiment(
        "fig16", "Accuracy across sparsity factors",
        ("Figure 16",), "training", _load_fig16,
    )


_register_builtins()
