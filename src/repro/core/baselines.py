"""Baseline sparse-training algorithms the paper compares against.

Section II-E/VII-B of the paper surveys the landscape Procrustes
competes with; this module implements the two representative families
on the same substrate, so the comparisons (and the paper's generality
claim — Section VI-G: quantile selection applies to *all* sparse
training algorithms) are directly runnable:

* :class:`GradualMagnitudePruning` — the lottery-ticket / Eager
  Pruning recipe: start dense, periodically remove the
  lowest-magnitude fraction of the remaining weights until the target
  sparsity is reached.  Selection uses either an exact sort or the
  same streaming-quantile threshold Procrustes uses (the paper notes
  Eager Pruning's sorting cost is unaccounted in its hardware).
* :class:`DynamicSparseReparameterization` — Mostafa & Wang's scheme:
  start sparse at the target level, periodically prune
  smallest-magnitude survivors and regrow an equal number of randomly
  chosen pruned weights (zero-initialized), letting zeros redistribute.

Both optimizers share the interface of
:class:`repro.core.dropback.DropbackOptimizer` (``step()``, ``masks()``,
``achieved_sparsity_factor()``), so trainers and the architecture model
consume them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dropback import ParameterLike
from repro.core.quantile import DumiqueEstimator
from repro.core.tracking import select_topk

__all__ = [
    "GradualMagnitudePruningConfig",
    "GradualMagnitudePruning",
    "DynamicSparseReparameterization",
]


@dataclass
class GradualMagnitudePruningConfig:
    """Eager-Pruning-style schedule.

    Every ``prune_interval`` iterations, ``prune_fraction`` of the
    *remaining* weights are removed (lowest magnitude first) until the
    overall ``target_sparsity_factor`` is reached.  The paper's Eager
    Pruning removes ~0.8 % every 24k iterations and tops out at modest
    factors; the defaults here are scaled for mini runs.
    """

    target_sparsity_factor: float = 3.0
    prune_interval: int = 10
    prune_fraction: float = 0.2
    lr: float = 0.05
    momentum: float = 0.9
    selection: str = "sort"  # or "quantile" (Procrustes-style, no sort)
    quantile_rho: float = 5e-3

    def __post_init__(self) -> None:
        if self.target_sparsity_factor < 1.0:
            raise ValueError("target_sparsity_factor must be >= 1")
        if not 0.0 < self.prune_fraction < 1.0:
            raise ValueError("prune_fraction must lie in (0, 1)")
        if self.prune_interval < 1:
            raise ValueError("prune_interval must be >= 1")
        if self.selection not in ("sort", "quantile"):
            raise ValueError("selection must be 'sort' or 'quantile'")


class _MaskedSGD:
    """Shared machinery: SGD over parameters with persistent masks."""

    def __init__(self, parameters, lr: float, momentum: float) -> None:
        self.lr = lr
        self.momentum = momentum
        self.prunable = [p for p in parameters if getattr(p, "prunable", False)]
        self.dense = [p for p in parameters if not getattr(p, "prunable", False)]
        self.masks_: dict[int, np.ndarray] = {
            id(p): np.ones_like(p.data, dtype=bool) for p in self.prunable
        }
        self._velocity: dict[int, np.ndarray] = {}
        self.iteration = 0

    def _sgd_step(self, param: ParameterLike) -> None:
        if param.grad is None:
            raise ValueError(
                f"parameter {param.name!r} has no gradient; run backward "
                "before step()"
            )
        grad = param.grad
        if self.momentum > 0.0:
            velocity = self._velocity.setdefault(
                id(param), np.zeros_like(param.data)
            )
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        param.data = param.data - self.lr * grad

    def _apply_masks(self) -> None:
        for param in self.prunable:
            param.data = param.data * self.masks_[id(param)]

    # -- common reporting (mirrors DropbackOptimizer) -------------------
    def masks(self) -> dict[str, np.ndarray]:
        return {p.name: self.masks_[id(p)].copy() for p in self.prunable}

    def tracked_count(self) -> int:
        return sum(int(m.sum()) for m in self.masks_.values())

    def achieved_sparsity_factor(self) -> float:
        total = sum(p.data.size for p in self.prunable)
        tracked = self.tracked_count()
        return total / tracked if tracked else float("inf")


class GradualMagnitudePruning(_MaskedSGD):
    """Start dense; periodically drop the smallest surviving weights."""

    def __init__(
        self,
        parameters,
        config: GradualMagnitudePruningConfig | None = None,
    ) -> None:
        self.config = config or GradualMagnitudePruningConfig()
        super().__init__(parameters, self.config.lr, self.config.momentum)
        self._estimator: DumiqueEstimator | None = None
        if self.config.selection == "quantile":
            self._estimator = DumiqueEstimator(
                self.config.prune_fraction,
                rho=self.config.quantile_rho,
                initial=1e-6,
            )

    @property
    def at_target(self) -> bool:
        return (
            self.achieved_sparsity_factor()
            >= self.config.target_sparsity_factor
        )

    def step(self) -> None:
        for param in self.prunable + self.dense:
            self._sgd_step(param)
        self._apply_masks()
        self.iteration += 1
        if self.iteration % self.config.prune_interval == 0 and not self.at_target:
            self._prune_round()

    def _prune_round(self) -> None:
        """Remove ``prune_fraction`` of the surviving weights."""
        survivors = np.concatenate(
            [
                np.abs(p.data[self.masks_[id(p)]]).ravel()
                for p in self.prunable
            ]
        )
        if survivors.size == 0:
            return
        if self._estimator is not None:
            # Procrustes-style: one comparison per weight against the
            # streamed low-quantile estimate — no sort.
            self._estimator.update_many(survivors)
            threshold = self._estimator.estimate
        else:
            k_drop = int(round(survivors.size * self.config.prune_fraction))
            keep = select_topk(survivors, survivors.size - k_drop)
            threshold = (
                survivors[~keep].max() if (~keep).any() else -np.inf
            )
        for param in self.prunable:
            mask = self.masks_[id(param)]
            mask &= np.abs(param.data) > threshold
        self._apply_masks()


class DynamicSparseReparameterization(_MaskedSGD):
    """Sparse-from-scratch with prune-and-regrow redistribution.

    Starts at the target sparsity with a random mask; every
    ``rewire_interval`` iterations the ``rewire_fraction`` smallest
    surviving weights are pruned and the same number of currently
    pruned positions regrow at zero.
    """

    def __init__(
        self,
        parameters,
        target_sparsity_factor: float = 3.0,
        rewire_interval: int = 10,
        rewire_fraction: float = 0.1,
        lr: float = 0.05,
        momentum: float = 0.9,
        seed: int = 0,
    ) -> None:
        if target_sparsity_factor < 1.0:
            raise ValueError("target_sparsity_factor must be >= 1")
        super().__init__(parameters, lr, momentum)
        self.target_sparsity_factor = target_sparsity_factor
        self.rewire_interval = rewire_interval
        self.rewire_fraction = rewire_fraction
        self._rng = np.random.default_rng(seed)
        density = 1.0 / target_sparsity_factor
        for param in self.prunable:
            mask = self._rng.uniform(size=param.data.shape) < density
            if not mask.any():
                mask.flat[0] = True
            self.masks_[id(param)] = mask
        self._apply_masks()

    def step(self) -> None:
        for param in self.prunable + self.dense:
            self._sgd_step(param)
        self._apply_masks()
        self.iteration += 1
        if self.iteration % self.rewire_interval == 0:
            self._rewire_round()

    def _rewire_round(self) -> None:
        for param in self.prunable:
            mask = self.masks_[id(param)]
            surviving = np.flatnonzero(mask.ravel())
            if surviving.size < 2:
                continue
            n_move = max(1, int(round(surviving.size * self.rewire_fraction)))
            magnitudes = np.abs(param.data.ravel()[surviving])
            drop = surviving[np.argsort(magnitudes)[:n_move]]
            pruned = np.flatnonzero(~mask.ravel())
            if pruned.size == 0:
                continue
            grow = self._rng.choice(
                pruned, size=min(n_move, pruned.size), replace=False
            )
            flat_mask = mask.ravel()
            flat_mask[drop] = False
            flat_mask[grow] = True
            self.masks_[id(param)] = flat_mask.reshape(mask.shape)
        self._apply_masks()
