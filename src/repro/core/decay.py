"""Initial-weight decay schedule (Algorithm 3 of the paper).

Dropback resets pruned weights to their *initialization values* rather
than to zero, which preserves accuracy but destroys computation
sparsity: a pruned weight still multiplies.  Procrustes observes that
initial values only matter early in training — once accumulated
gradients dominate, the initial "scaffolding" can be removed — and
decays every initial weight by a factor ``lambda`` (0.9 in the paper)
each iteration, flushing it to exactly zero once it falls below FP32
resolution (the paper quotes 1,000 iterations, i.e. early in the
second epoch of VGG-S/CIFAR-10 training).

After the flush point a pruned weight is exactly zero and its MAC can
be skipped, which is what converts Dropback's *representation* sparsity
into *computation* sparsity.
"""

from __future__ import annotations

import math

__all__ = ["InitialWeightDecay"]


class InitialWeightDecay:
    """Multiplier schedule ``lambda ** t`` with a hard zero after a cutoff.

    Parameters
    ----------
    decay:
        Per-iteration multiplicative decay ``lambda`` (paper: 0.9).
        ``decay=1.0`` disables decay entirely (original Dropback).
    zero_after:
        Iteration index at and beyond which the multiplier is exactly
        0.0 (paper: 1,000).  At ``lambda=0.9`` the analytic value at
        iteration 1,000 is ~1e-46, far below FP32 denormal range, so
        the hard zero matches what the hardware's integer scaling
        factor produces.  ``None`` derives the cutoff automatically as
        the first iteration where the multiplier underflows FP32
        (``lambda ** t < 2 ** -149``).
    """

    #: Smallest positive FP32 subnormal; once the analytic multiplier
    #: drops below this the hardware scaling factor is exactly zero.
    FP32_TINY = 2.0 ** -149

    def __init__(self, decay: float = 0.9, zero_after: int | None = 1000) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1] (got {decay})")
        self.decay = float(decay)
        if zero_after is None:
            zero_after = self._underflow_iteration(self.decay)
        if zero_after is not None and zero_after < 0:
            raise ValueError(f"zero_after must be >= 0 (got {zero_after})")
        self.zero_after = zero_after

    @staticmethod
    def _underflow_iteration(decay: float) -> int | None:
        """First iteration where ``decay ** t`` underflows FP32."""
        if decay >= 1.0:
            return None
        return int(
            math.ceil(math.log(InitialWeightDecay.FP32_TINY) / math.log(decay))
        )

    @property
    def enabled(self) -> bool:
        """Whether any decay happens at all (``decay < 1``)."""
        return self.decay < 1.0

    def multiplier(self, iteration: int) -> float:
        """Return ``lambda ** iteration``, hard-zeroed past the cutoff."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0 (got {iteration})")
        if not self.enabled:
            return 1.0
        if self.zero_after is not None and iteration >= self.zero_after:
            return 0.0
        return self.decay ** iteration

    def is_zero(self, iteration: int) -> bool:
        """True once initial weights have fully decayed away."""
        return self.multiplier(iteration) == 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InitialWeightDecay(decay={self.decay}, "
            f"zero_after={self.zero_after})"
        )
