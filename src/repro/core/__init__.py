"""The paper's primary contribution: hardware-friendly sparse training.

Exports the Dropback/Procrustes optimizer, the initial-weight decay
schedule, streaming quantile estimation, and tracked-set selection.
"""

from repro.core.baselines import (
    DynamicSparseReparameterization,
    GradualMagnitudePruning,
    GradualMagnitudePruningConfig,
)
from repro.core.decay import InitialWeightDecay
from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.core.quantile import (
    DumiqueEstimator,
    ParallelQuantileEstimator,
    quantile_for_sparsity,
    sparsity_for_quantile,
)
from repro.core.quantile_variants import (
    P2Estimator,
    SetPointThreshold,
    estimator_hardware_cost,
)
from repro.core.schedules import (
    ConstantSparsity,
    PAPER_SCHEDULES,
    SparseFromScratch,
    SparsitySchedule,
    StepwisePruning,
    paper_schedule,
)
from repro.core.tracking import ThresholdTracker, select_topk, topk_threshold

__all__ = [
    "DynamicSparseReparameterization",
    "GradualMagnitudePruning",
    "GradualMagnitudePruningConfig",
    "InitialWeightDecay",
    "DropbackConfig",
    "DropbackOptimizer",
    "PAPER_SCHEDULES",
    "ConstantSparsity",
    "SparseFromScratch",
    "SparsitySchedule",
    "StepwisePruning",
    "paper_schedule",
    "DumiqueEstimator",
    "ParallelQuantileEstimator",
    "quantile_for_sparsity",
    "sparsity_for_quantile",
    "ThresholdTracker",
    "select_topk",
    "topk_threshold",
    "P2Estimator",
    "SetPointThreshold",
    "estimator_hardware_cost",
]
