"""Dropback sparse training and its hardware-friendly Procrustes variant.

This module implements, on top of any parameter container exposing
``.data`` / ``.grad`` NumPy arrays:

* **Algorithm 2** (original Dropback): after each SGD step, only the
  ``k`` weights with the largest *accumulated gradient* magnitudes keep
  their value; every other weight resets to its initialization value.
* **Algorithm 3** (Dropback with initial-weight decay): identical,
  except the initialization values decay by ``lambda`` (0.9) every
  iteration and are flushed to exactly zero after 1,000 iterations, so
  pruned weights become true zeros and their MACs can be skipped.
* **Section III-B** (quantile selection): the global sort is replaced
  by a per-gradient comparison against a streaming quantile estimate.

The optimizer materializes weights exactly the way the hardware WR
unit does: ``W = decay_multiplier * W0 + accumulated_update``, where
the accumulated update is the sum of the ``-lr * grad`` contributions
of every iteration in which the weight was tracked, and is zero for
pruned weights.

Only parameters flagged ``prunable`` participate (convolution and
fully-connected weights); biases and batch-norm parameters follow
plain SGD, as in the paper's PyTorch implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.core.decay import InitialWeightDecay
from repro.core.tracking import ThresholdTracker, select_topk

__all__ = ["ParameterLike", "DropbackConfig", "DropbackOptimizer"]


class ParameterLike(Protocol):
    """Duck type the optimizer accepts (satisfied by repro.nn.Parameter)."""

    data: np.ndarray
    grad: np.ndarray | None
    name: str
    prunable: bool


@dataclass
class DropbackConfig:
    """Hyperparameters for Dropback / Procrustes training.

    Parameters
    ----------
    sparsity_factor:
        Target compression, e.g. ``10.0`` keeps 1 weight in 10.
    lr:
        SGD learning rate.
    momentum:
        Momentum applied to raw gradients (0 reproduces the paper's
        plain-SGD formulation; the velocity feeds the accumulated
        update for prunable parameters).
    selection:
        ``"sort"`` for exact top-k (Algorithm 2) or ``"quantile"`` for
        the streaming-threshold hardware scheme (Section III-B).
    init_decay:
        ``lambda`` for initial-weight decay; ``1.0`` disables decay
        (original Dropback), ``0.9`` is the Procrustes setting.
    init_decay_zero_after:
        Iteration at which initial weights are flushed to exact zero.
    quantile_rho / quantile_initial / quantile_width:
        DUMIQUE constants (paper defaults; insensitive per the paper).
    weight_decay:
        L2 regularization applied to non-prunable parameters only.
    decay_tracked_init:
        Algorithm 3 as written decays only *pruned* weights' values;
        tracked weights keep evolving from wherever they are (False,
        the default).  The hardware WR unit instead materializes every
        weight as ``decayed_init + accumulated`` (True), which decays
        the initial component of tracked weights too.  The two coincide
        once accumulated gradients dominate; the flag exposes both for
        the fidelity tests.
    """

    sparsity_factor: float = 10.0
    lr: float = 0.1
    momentum: float = 0.0
    selection: str = "sort"
    init_decay: float = 0.9
    init_decay_zero_after: int | None = 1000
    quantile_rho: float = 1e-3
    quantile_initial: float = 1e-6
    quantile_width: int = 4
    weight_decay: float = 0.0
    decay_tracked_init: bool = False

    def __post_init__(self) -> None:
        if self.sparsity_factor <= 1.0:
            raise ValueError(
                f"sparsity_factor must exceed 1 (got {self.sparsity_factor})"
            )
        if self.selection not in ("sort", "quantile"):
            raise ValueError(
                f"selection must be 'sort' or 'quantile' (got {self.selection!r})"
            )
        if self.lr <= 0.0:
            raise ValueError(f"lr must be positive (got {self.lr})")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1) (got {self.momentum})")


@dataclass
class _PrunableState:
    """Per-parameter optimizer state for a prunable tensor."""

    param: ParameterLike
    initial: np.ndarray
    accumulated: np.ndarray
    velocity: np.ndarray | None
    offset: int  # start index in the global flat candidate vector
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.size = int(self.initial.size)


class DropbackOptimizer:
    """SGD with Dropback weight tracking (Algorithms 2 and 3).

    Usage mirrors a standard optimizer::

        opt = DropbackOptimizer(model.parameters(), DropbackConfig(...))
        for batch in data:
            loss = model.forward_backward(batch)   # fills .grad
            opt.step()

    After every :meth:`step`, each prunable parameter's ``.data`` holds
    ``decay^t * W0 + accum`` with ``accum`` zero outside the tracked
    set, so pruned weights are exactly zero once the decay flushes
    (t >= 1000 with the default schedule).
    """

    def __init__(
        self,
        parameters: Sequence[ParameterLike],
        config: DropbackConfig | None = None,
    ) -> None:
        self.config = config or DropbackConfig()
        self.decay_schedule = InitialWeightDecay(
            decay=self.config.init_decay,
            zero_after=self.config.init_decay_zero_after,
        )
        self.iteration = 0
        self._prunable: list[_PrunableState] = []
        self._dense: list[ParameterLike] = []
        self._dense_velocity: dict[int, np.ndarray] = {}
        offset = 0
        for param in parameters:
            if getattr(param, "prunable", False):
                velocity = (
                    np.zeros_like(param.data)
                    if self.config.momentum > 0.0
                    else None
                )
                self._prunable.append(
                    _PrunableState(
                        param=param,
                        initial=param.data.copy(),
                        accumulated=np.zeros_like(param.data),
                        velocity=velocity,
                        offset=offset,
                    )
                )
                offset += param.data.size
            else:
                self._dense.append(param)
        self.total_prunable = offset
        self.budget = max(
            1, int(round(offset / self.config.sparsity_factor))
        )
        self._tracker: ThresholdTracker | None = None
        self._tracked_mask: np.ndarray | None = None
        if self.config.selection == "quantile":
            self._tracker = ThresholdTracker(
                self.config.sparsity_factor,
                rho=self.config.quantile_rho,
                initial=self.config.quantile_initial,
                width=self.config.quantile_width,
            )
            self._tracked_mask = np.zeros(self.total_prunable, dtype=bool)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Consume ``.grad`` on every parameter and advance one iteration."""
        candidates, steps = self._candidate_updates()
        mask_flat = self._select(np.abs(candidates))
        multiplier = self.decay_schedule.multiplier(self.iteration + 1)
        for state in self._prunable:
            sl = slice(state.offset, state.offset + state.size)
            shape = state.param.data.shape
            cand = candidates[sl].reshape(shape)
            mask = mask_flat[sl].reshape(shape)
            state.accumulated = np.where(mask, cand, 0.0)
            if self.config.decay_tracked_init:
                # Hardware WR semantics: every weight regenerates as
                # decayed-init plus its accumulated update.
                state.param.data = multiplier * state.initial + state.accumulated
            else:
                # Algorithm 3 as written: tracked weights take an SGD
                # step from their current value; pruned weights reset
                # to the decayed initialization.
                step_update = steps[sl].reshape(shape)
                state.param.data = np.where(
                    mask,
                    state.param.data - step_update,
                    multiplier * state.initial,
                )
        self._step_dense()
        self.iteration += 1

    def _candidate_updates(self) -> tuple[np.ndarray, np.ndarray]:
        """Candidate accumulated updates (T ∪ P in Alg 2) and raw steps.

        Returns flat vectors of (a) each weight's would-be accumulated
        update ``accum - lr * grad`` and (b) this iteration's step
        ``lr * grad`` alone (needed for the Algorithm 3 weight update).
        """
        chunks = []
        step_chunks = []
        for state in self._prunable:
            grad = state.param.grad
            if grad is None:
                raise ValueError(
                    f"parameter {state.param.name!r} has no gradient; run "
                    "backward before step()"
                )
            if self.config.momentum > 0.0 and state.velocity is not None:
                state.velocity *= self.config.momentum
                state.velocity += grad
                effective = state.velocity
            else:
                effective = grad
            step = self.config.lr * effective
            chunks.append((state.accumulated - step).ravel())
            step_chunks.append(step.ravel())
        if not chunks:
            return np.empty(0), np.empty(0)
        return np.concatenate(chunks), np.concatenate(step_chunks)

    def _select(self, magnitudes: np.ndarray) -> np.ndarray:
        if magnitudes.size == 0:
            return np.zeros(0, dtype=bool)
        if self._tracker is not None:
            mask = self._tracker.select(magnitudes, self._tracked_mask)
            self._tracked_mask = mask
            return mask
        return select_topk(magnitudes, self.budget)

    def _step_dense(self) -> None:
        cfg = self.config
        for param in self._dense:
            if param.grad is None:
                raise ValueError(
                    f"parameter {param.name!r} has no gradient; run backward "
                    "before step()"
                )
            grad = param.grad
            if cfg.weight_decay > 0.0:
                grad = grad + cfg.weight_decay * param.data
            if cfg.momentum > 0.0:
                velocity = self._dense_velocity.setdefault(
                    id(param), np.zeros_like(param.data)
                )
                velocity *= cfg.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - cfg.lr * grad

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float | None:
        """Current quantile threshold (None in sort mode)."""
        return self._tracker.threshold if self._tracker else None

    def tracked_count(self) -> int:
        """Number of currently tracked (surviving) weights."""
        return sum(
            int(np.count_nonzero(state.accumulated)) for state in self._prunable
        )

    def achieved_sparsity_factor(self) -> float:
        """Realized compression ``total / tracked`` (paper's "5.2x")."""
        tracked = self.tracked_count()
        if tracked == 0:
            return float("inf")
        return self.total_prunable / tracked

    def density_by_parameter(self) -> dict[str, float]:
        """Per-tensor fraction of tracked weights (for the arch model)."""
        return {
            state.param.name: float(
                np.count_nonzero(state.accumulated) / state.size
            )
            for state in self._prunable
        }

    def masks(self) -> dict[str, np.ndarray]:
        """Boolean survivor masks per prunable parameter."""
        return {
            state.param.name: state.accumulated != 0.0
            for state in self._prunable
        }

    def computation_is_sparse(self) -> bool:
        """True once pruned weights are exact zeros (decay flushed)."""
        return self.decay_schedule.is_zero(self.iteration)
