"""Streaming quantile estimation (DUMIQUE) used by Procrustes.

Procrustes replaces the global sort over all accumulated gradients in
Dropback (Algorithm 2 of the paper) with a streaming estimate of the
``q``-th quantile of accumulated-gradient magnitudes (Algorithm 4,
after Yazidi & Hammer's DUMIQUE estimator).  Every gradient magnitude
observed during the weight-update phase nudges the estimate up or down
multiplicatively; the estimate converges to the value below which a
fraction ``q`` of the stream lies.

Two variants are provided:

* :class:`DumiqueEstimator` — the scalar textbook update, one value at
  a time (reference implementation).
* :class:`ParallelQuantileEstimator` — the hardware variant described
  in the paper, which averages ``width`` incoming values (up to four
  per cycle in the last VGG-S conv layer) and applies a single update
  per group, allowing the QE unit to keep up with peak gradient rates.

Both are pure Python/NumPy with no hidden global state, mirroring the
hardware unit which holds only the current estimate register.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "DumiqueEstimator",
    "ParallelQuantileEstimator",
    "quantile_for_sparsity",
    "sparsity_for_quantile",
]

#: Default initial estimate from the paper (Algorithm 4): Q̂q(0) = 1e-6.
DEFAULT_INITIAL_ESTIMATE = 1e-6

#: Default adjustment rate from the paper (Algorithm 4): % = 1e-3.
DEFAULT_ADJUSTMENT_RATE = 1e-3


def quantile_for_sparsity(sparsity_factor: float) -> float:
    """Return the quantile ``q`` that keeps ``1/sparsity_factor`` weights.

    A sparsity factor of 10x means 10% of weights survive, so the
    threshold must sit at the 0.9 quantile of gradient magnitudes.

    >>> quantile_for_sparsity(10.0)
    0.9
    """
    if sparsity_factor <= 1.0:
        raise ValueError(
            f"sparsity factor must exceed 1 (got {sparsity_factor})"
        )
    return 1.0 - 1.0 / sparsity_factor


def sparsity_for_quantile(q: float) -> float:
    """Inverse of :func:`quantile_for_sparsity`.

    >>> sparsity_for_quantile(0.9)
    10.0
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must lie in (0, 1) (got {q})")
    return 1.0 / (1.0 - q)


class DumiqueEstimator:
    """Multiplicative incremental quantile estimator (Algorithm 4).

    On each observation ``delta``:

    * if the current estimate is below ``delta`` the estimate grows by
      a factor ``(1 + rho * q)``;
    * otherwise it shrinks by a factor ``(1 - rho * (1 - q))``.

    At equilibrium the expected log-step is zero exactly when the
    probability of an upward move is ``1 - q``, i.e. when the estimate
    sits at the ``q``-th quantile of the input distribution.

    Parameters
    ----------
    q:
        Target quantile in ``(0, 1)``.
    rho:
        Adjustment rate (the paper uses 1e-3 for all experiments).
    initial:
        Initial estimate (the paper uses 1e-6 for all experiments; the
        paper reports negligible sensitivity to both constants).
    """

    def __init__(
        self,
        q: float,
        rho: float = DEFAULT_ADJUSTMENT_RATE,
        initial: float = DEFAULT_INITIAL_ESTIMATE,
    ) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1) (got {q})")
        if not 0.0 < rho < 1.0:
            raise ValueError(f"adjustment rate must lie in (0, 1) (got {rho})")
        if initial <= 0.0:
            raise ValueError(f"initial estimate must be positive (got {initial})")
        self.q = float(q)
        self.rho = float(rho)
        self._estimate = float(initial)
        self._count = 0
        self._up_factor = 1.0 + self.rho * self.q
        self._down_factor = 1.0 - self.rho * (1.0 - self.q)

    @property
    def estimate(self) -> float:
        """Current quantile estimate (the hardware's single register)."""
        return self._estimate

    @property
    def count(self) -> int:
        """Number of observations folded into the estimate."""
        return self._count

    def update(self, delta: float) -> float:
        """Fold one observation into the estimate and return it."""
        if self._estimate < delta:
            self._estimate *= self._up_factor
        else:
            self._estimate *= self._down_factor
        self._count += 1
        return self._estimate

    def update_many(self, deltas: np.ndarray) -> float:
        """Fold a 1-D array of observations in stream order.

        The update is inherently sequential (each step rescales the
        current estimate), but because both branches are multiplicative
        the result only depends on *how many* upward moves happen at
        each estimate level.  We exploit this with a chunked loop: the
        estimate changes by at most ``rho`` per step, so over a short
        chunk the comparisons against the chunk-start estimate are a
        good approximation.  For exactness we fall back to the scalar
        loop when a chunk straddles the estimate (values close to it).
        """
        deltas = np.asarray(deltas, dtype=np.float64).ravel()
        log_up = math.log(self._up_factor)
        log_down = math.log(self._down_factor)
        i = 0
        n = deltas.shape[0]
        chunk = 64
        while i < n:
            block = deltas[i : i + chunk]
            # Worst-case drift of the estimate over this block.
            drift = math.exp(len(block) * max(abs(log_up), abs(log_down)))
            lo = self._estimate / drift
            hi = self._estimate * drift
            inside = np.logical_and(block >= lo, block <= hi)
            if inside.any():
                # Values land near the estimate: replay exactly.
                for value in block:
                    self.update(float(value))
            else:
                ups = int(np.count_nonzero(block > self._estimate))
                downs = len(block) - ups
                self._estimate *= math.exp(ups * log_up + downs * log_down)
                self._count += len(block)
            i += chunk
        return self._estimate

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DumiqueEstimator(q={self.q}, rho={self.rho}, "
            f"estimate={self._estimate:.3e}, count={self._count})"
        )


class ParallelQuantileEstimator:
    """The Procrustes QE-unit variant of DUMIQUE.

    The accelerator produces up to four accumulated gradients per cycle
    in the widest layers, while the scalar estimator absorbs one value
    per cycle.  The paper's modified variant therefore treats *the
    average of four incoming accumulated gradients as a single*
    ``delta(n)``.  This class models that behaviour: values are grouped
    ``width`` at a time (a trailing partial group is averaged over its
    actual length) and each group average drives one scalar update.

    The unit also tracks how many hardware cycles it consumed, at one
    group per cycle, which the architecture model uses to confirm the
    QE unit never becomes a bottleneck.
    """

    def __init__(
        self,
        q: float,
        width: int = 4,
        rho: float = DEFAULT_ADJUSTMENT_RATE,
        initial: float = DEFAULT_INITIAL_ESTIMATE,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be at least 1 (got {width})")
        self.width = int(width)
        self._scalar = DumiqueEstimator(q, rho=rho, initial=initial)
        self._pending: list[float] = []
        self._cycles = 0

    @property
    def q(self) -> float:
        return self._scalar.q

    @property
    def estimate(self) -> float:
        return self._scalar.estimate

    @property
    def cycles(self) -> int:
        """Hardware cycles consumed so far (one group update per cycle)."""
        return self._cycles

    def update(self, delta: float) -> float:
        """Feed one value; an update fires once a full group is buffered."""
        self._pending.append(float(delta))
        if len(self._pending) == self.width:
            self._flush_group()
        return self._scalar.estimate

    def update_many(self, deltas: np.ndarray) -> float:
        """Feed an array of values in stream order."""
        deltas = np.asarray(deltas, dtype=np.float64).ravel()
        if self._pending:
            take = self.width - len(self._pending)
            head, deltas = deltas[:take], deltas[take:]
            for value in head:
                self.update(float(value))
        n_groups = deltas.shape[0] // self.width
        if n_groups:
            groups = deltas[: n_groups * self.width].reshape(
                n_groups, self.width
            )
            self._scalar.update_many(groups.mean(axis=1))
            self._cycles += n_groups
        for value in deltas[n_groups * self.width :]:
            self._pending.append(float(value))
        return self._scalar.estimate

    def flush(self) -> float:
        """Force an update from a partial trailing group, if any."""
        if self._pending:
            self._flush_group()
        return self._scalar.estimate

    def _flush_group(self) -> None:
        group = self._pending
        self._pending = []
        self._scalar.update(sum(group) / len(group))
        self._cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ParallelQuantileEstimator(q={self.q}, width={self.width}, "
            f"estimate={self.estimate:.3e}, cycles={self._cycles})"
        )
