"""Sparsity-over-training schedules of the surveyed algorithms.

The introduction argues that *when* sparsity arrives matters as much
as how much arrives: gradual pruning approaches [8, 33, 49] imply
"(i) no peak memory footprint reduction, (ii) mediocre energy savings
because the average sparsity is low during most of the training
process, and (iii) the need to support two weight storage formats
... and switch formats mid-way during training", whereas Dropback and
Procrustes "maintain the target weight sparsity throughout training".

This module captures each method's weight-density trajectory as an
analytic :class:`SparsitySchedule`, from which those three claims
become measurable quantities:

* :meth:`SparsitySchedule.peak_density` — claim (i);
* :meth:`SparsitySchedule.average_density` (energy is roughly
  proportional to density iteration by iteration) — claim (ii);
* :meth:`SparsitySchedule.format_switch_iteration` — claim (iii): the
  iteration where compressed storage first beats dense storage.

The schedules are *density* models, deliberately decoupled from the
trainable optimizers in :mod:`repro.core.baselines`: the footprint and
energy analyses sweep millions of iterations, which only an analytic
model can afford, while the optimizers validate dynamics on mini runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SparsitySchedule",
    "ConstantSparsity",
    "StepwisePruning",
    "SparseFromScratch",
    "PAPER_SCHEDULES",
    "paper_schedule",
]


@dataclass(frozen=True)
class SparsitySchedule:
    """Base class: weight density as a function of training iteration.

    Density is the surviving fraction ``nnz / total`` in ``(0, 1]``;
    the paper's "sparsity factor" is its reciprocal.
    """

    name: str

    def density(self, iteration: int) -> float:
        """*Computation* density: fraction of MACs that must execute."""
        raise NotImplementedError

    def storage_density(self, iteration: int) -> float:
        """*Storage* density: fraction of weights that must be stored.

        Identical to :meth:`density` for most methods; Dropback-style
        schedules override it, because pruned weights are regenerated
        from the PRNG and never stored even while their initial values
        still participate in computation.
        """
        return self.density(iteration)

    # ------------------------------------------------------------------
    # derived quantities used by the footprint/energy analyses
    # ------------------------------------------------------------------
    def density_curve(self, total_iterations: int) -> np.ndarray:
        """Density at every iteration in ``[0, total_iterations)``."""
        if total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        return np.asarray(
            [self.density(t) for t in range(total_iterations)]
        )

    def average_density(self, total_iterations: int) -> float:
        """Mean density over a full run — the MAC-energy proxy.

        Training MAC count per iteration scales with weight density
        (forward and backward passes), so a method's energy saving
        over dense training is roughly ``1 / average_density``.
        """
        return float(self.density_curve(total_iterations).mean())

    def peak_density(self, total_iterations: int) -> float:
        """Maximum *storage* density over the run — the memory peak."""
        if total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        return max(
            self.storage_density(t) for t in range(total_iterations)
        )

    def format_switch_iteration(
        self, total_iterations: int, switch_density: float = 0.5
    ) -> int | None:
        """First iteration where compressed storage beats dense.

        A sparse format with per-value index overhead only wins once
        density falls below ``switch_density`` (~0.5 for 32-bit values
        with mask+pointer overhead).  Methods that start dense must
        store weights densely until then and re-encode everything at
        the switch; methods that start sparse return 0 — no switch.
        Returns ``None`` if the density never drops that far.
        """
        if not 0.0 < switch_density <= 1.0:
            raise ValueError("switch_density must lie in (0, 1]")
        if total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        for t in range(total_iterations):
            if self.storage_density(t) < switch_density:
                return t
        return None

    def final_sparsity_factor(self, total_iterations: int) -> float:
        return 1.0 / self.density(total_iterations - 1)


@dataclass(frozen=True)
class ConstantSparsity(SparsitySchedule):
    """Dropback / Procrustes: target density from iteration zero.

    (Procrustes reaches computation sparsity once the initial weights
    decay to zero at ~iteration 1,000 — ``decay_iterations`` models
    that brief dense-computation prefix; storage is sparse throughout.)
    """

    sparsity_factor: float = 10.0
    decay_iterations: int = 0

    def __post_init__(self) -> None:
        if self.sparsity_factor < 1.0:
            raise ValueError("sparsity_factor must be >= 1")
        if self.decay_iterations < 0:
            raise ValueError("decay_iterations must be >= 0")

    def density(self, iteration: int) -> float:
        if iteration < self.decay_iterations:
            return 1.0
        return 1.0 / self.sparsity_factor

    def storage_density(self, iteration: int) -> float:
        # Only tracked accumulated gradients are ever stored; pruned
        # weights are recomputed from the WR unit's PRNG (Section V).
        return 1.0 / self.sparsity_factor


@dataclass(frozen=True)
class StepwisePruning(SparsitySchedule):
    """Lottery-ticket / Eager-Pruning-style gradual magnitude pruning.

    Every ``interval`` iterations, ``prune_fraction`` of the currently
    surviving weights are removed, until ``target_factor`` is reached.
    The lottery ticket prunes 20 % every 50,000 iterations; Eager
    Pruning 0.8 % every 24,000.
    """

    prune_fraction: float = 0.2
    interval: int = 50_000
    target_factor: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.prune_fraction < 1.0:
            raise ValueError("prune_fraction must lie in (0, 1)")
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.target_factor < 1.0:
            raise ValueError("target_factor must be >= 1")

    def density(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        rounds = iteration // self.interval
        return max(
            (1.0 - self.prune_fraction) ** rounds, 1.0 / self.target_factor
        )

    def rounds_to_target(self) -> int:
        """Pruning rounds needed to reach the target factor."""
        return int(
            np.ceil(
                np.log(1.0 / self.target_factor)
                / np.log(1.0 - self.prune_fraction)
            )
        )


@dataclass(frozen=True)
class SparseFromScratch(SparsitySchedule):
    """Dynamic sparse reparameterization: constant target density.

    Like Dropback the density never exceeds the target, but zeros
    *redistribute* every ``rewire_interval`` iterations — the storage
    footprint is flat while the mask churns (which is why its format
    must support cheap re-encoding; the churn rate is exposed for the
    traffic model).
    """

    sparsity_factor: float = 3.5
    rewire_interval: int = 4_000
    rewire_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.sparsity_factor < 1.0:
            raise ValueError("sparsity_factor must be >= 1")
        if self.rewire_interval < 1:
            raise ValueError("rewire_interval must be >= 1")

    def density(self, iteration: int) -> float:
        return 1.0 / self.sparsity_factor

    def mask_churn_per_iteration(self, total_weights: int) -> float:
        """Average mask positions rewritten per iteration."""
        survivors = total_weights / self.sparsity_factor
        return survivors * self.rewire_fraction / self.rewire_interval


def paper_schedule(method: str) -> SparsitySchedule:
    """The published schedule of each surveyed method (Section II-E).

    ``lottery``            20 % every 50k iterations, 5-10x targets [8]
    ``eager-pruning``      0.8 % every 24k iterations, 2.4x on ResNet50 [49]
    ``dsr``                3.5x from scratch, rewiring every 1k-8k [33]
    ``dropback``           constant target density, e.g. 11.7x [10]
    ``procrustes``         dropback + 1,000-iteration init decay
    """
    key = method.lower()
    if key not in PAPER_SCHEDULES:
        raise ValueError(
            f"unknown method {method!r}; expected one of "
            f"{sorted(PAPER_SCHEDULES)}"
        )
    return PAPER_SCHEDULES[key]


#: Published per-method schedules, at ResNet-class operating points.
PAPER_SCHEDULES: dict[str, SparsitySchedule] = {
    "lottery": StepwisePruning(
        name="lottery", prune_fraction=0.2, interval=50_000, target_factor=5.0
    ),
    "eager-pruning": StepwisePruning(
        name="eager-pruning",
        prune_fraction=0.008,
        interval=24_000,
        target_factor=2.4,
    ),
    "dsr": SparseFromScratch(
        name="dsr", sparsity_factor=3.5, rewire_interval=4_000
    ),
    "dropback": ConstantSparsity(name="dropback", sparsity_factor=11.7),
    "procrustes": ConstantSparsity(
        name="procrustes", sparsity_factor=11.7, decay_iterations=1_000
    ),
}
