"""Alternative threshold estimators, for comparison with DUMIQUE.

Section III-B motivates the choice of DUMIQUE [45] over the obvious
alternatives; this module implements those alternatives so the choice
is an experiment rather than an assertion:

* :class:`SetPointThreshold` — the feedback scheme of dynamic sparse
  reparameterization [33]: a value threshold adjusted periodically to
  steer the *count* of surviving weights toward a set point.  Works,
  "however, the initial value of this threshold becomes a
  hyperparameter" — the comparison bench sweeps that initial value to
  show the sensitivity DUMIQUE avoids.
* :class:`P2Estimator` — Jain & Chlamtac's P-squared estimator, the
  classic streaming-quantile algorithm.  More accurate per update but
  needs five marker registers, sorting of markers, and a parabolic
  update — substantially more hardware than DUMIQUE's single register
  and two multiplies.

All three estimators (including DUMIQUE from :mod:`.quantile`) share
the ``update(value) -> estimate`` protocol.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SetPointThreshold", "P2Estimator", "estimator_hardware_cost"]


class SetPointThreshold:
    """DSR-style multiplicative set-point controller.

    Observations accumulate counts above/below the current threshold;
    every ``adjust_every`` observations the threshold moves by a
    multiplicative step proportional to the tracking error between the
    observed above-threshold fraction and the target ``1 - q``.

    Parameters
    ----------
    q:
        Target quantile (fraction that should fall *below*).
    initial:
        Initial threshold — the hyperparameter the paper criticizes;
        convergence time depends strongly on how well it is chosen.
    adjust_every:
        Observations between adjustments (DSR adjusts per prune round).
    gain:
        Step size of the multiplicative correction.
    """

    def __init__(
        self,
        q: float,
        initial: float,
        adjust_every: int = 1000,
        gain: float = 0.5,
    ) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1) (got {q})")
        if initial <= 0.0:
            raise ValueError(f"initial threshold must be positive (got {initial})")
        if adjust_every < 1:
            raise ValueError("adjust_every must be >= 1")
        if gain <= 0.0:
            raise ValueError("gain must be positive")
        self.q = float(q)
        self.adjust_every = int(adjust_every)
        self.gain = float(gain)
        self._estimate = float(initial)
        self._above = 0
        self._seen = 0
        self._count = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def count(self) -> int:
        return self._count

    def update(self, value: float) -> float:
        if value > self._estimate:
            self._above += 1
        self._seen += 1
        self._count += 1
        if self._seen >= self.adjust_every:
            observed_above = self._above / self._seen
            target_above = 1.0 - self.q
            # Too many survivors -> raise the bar; too few -> lower it.
            error = observed_above - target_above
            self._estimate *= float(np.exp(self.gain * error))
            self._above = 0
            self._seen = 0
        return self._estimate

    def update_many(self, values: np.ndarray) -> float:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(float(value))
        return self._estimate


class P2Estimator:
    """Jain & Chlamtac's P-squared streaming quantile estimator.

    Maintains five markers whose heights approximate the quantile
    curve; marker heights move by a piecewise-parabolic rule as
    observations arrive.  The reference accuracy bar for streaming
    estimators — at the cost of hardware DUMIQUE does not need.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1) (got {q})")
        self.q = float(q)
        self._initial: list[float] = []
        self._heights = np.zeros(5)
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array([1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0])
        self._increments = np.array([0.0, q / 2.0, q, (1 + q) / 2.0, 1.0])
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def estimate(self) -> float:
        if self._count < 5:
            if not self._initial:
                return 0.0
            ordered = sorted(self._initial)
            index = min(
                len(ordered) - 1, int(round(self.q * (len(ordered) - 1)))
            )
            return ordered[index]
        return float(self._heights[2])

    def update(self, value: float) -> float:
        self._count += 1
        if self._count <= 5:
            self._initial.append(float(value))
            if self._count == 5:
                self._heights = np.sort(np.asarray(self._initial))
            return self.estimate

        h = self._heights
        # Locate the cell and bump marker positions above it.
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = int(np.searchsorted(h, value, side="right")) - 1
        self._positions[cell + 1 :] += 1.0
        self._desired += self._increments

        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            left = self._positions[i] - self._positions[i - 1]
            right = self._positions[i + 1] - self._positions[i]
            if (d >= 1.0 and right > 1.0) or (d <= -1.0 and left > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step
        return self.estimate

    def _parabolic(self, i: int, step: float) -> float:
        n, h = self._positions, self._heights
        span = n[i + 1] - n[i - 1]
        a = (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
        b = (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        return float(h[i] + step / span * (a + b))

    def _linear(self, i: int, step: float) -> float:
        n, h = self._positions, self._heights
        j = i + int(step)
        return float(h[i] + step * (h[j] - h[i]) / (n[j] - n[i]))

    def update_many(self, values: np.ndarray) -> float:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(float(value))
        return self.estimate


def estimator_hardware_cost(kind: str) -> dict[str, int]:
    """First-order hardware inventory of each estimator option.

    Registers and arithmetic ops per update; the basis of the paper's
    preference for DUMIQUE (one register, one compare, one multiply).
    """
    inventory = {
        "dumique": {"registers": 1, "compares": 1, "multiplies": 1, "divides": 0},
        "set-point": {"registers": 3, "compares": 1, "multiplies": 1, "divides": 1},
        "p2": {"registers": 15, "compares": 7, "multiplies": 8, "divides": 4},
    }
    key = kind.lower()
    if key not in inventory:
        raise ValueError(
            f"unknown estimator {kind!r}; expected one of {sorted(inventory)}"
        )
    return inventory[key]
