"""Tracked-set selection: which weights survive each iteration.

Dropback keeps, at every iteration, only the weights with the largest
accumulated-gradient magnitudes; everything else is reset (to its
initial value in Algorithm 2, to a decayed initial value in
Algorithm 3).  The selection itself can be done two ways:

* :func:`select_topk` — the exact, sort-based selection of the original
  algorithm (``S = sort(T ∪ P); mask = 1(S > S[k])``).  This is what
  a GPU implementation does, and what the paper argues is too
  expensive in hardware (log2(n!) comparisons).
* :class:`ThresholdTracker` — the hardware-friendly replacement: a
  single comparison per gradient against a streaming quantile estimate
  (:mod:`repro.core.quantile`).  The estimate lags the true quantile
  slightly, so a few extra weights are tracked — the paper measures the
  effective sparsity of a 7.5x target dropping to 5.2x — but no sort is
  needed and selection is a constant-work-per-gradient operation.

Both operate on *flat magnitude arrays*; the optimizer handles
splitting/joining per-parameter tensors.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantile import ParallelQuantileEstimator, quantile_for_sparsity

__all__ = ["select_topk", "topk_threshold", "ThresholdTracker"]


def topk_threshold(magnitudes: np.ndarray, k: int) -> float:
    """Return the magnitude of the ``k``-th largest element.

    Selecting ``mask = magnitudes >= threshold`` keeps at least ``k``
    elements (more under ties).  ``k`` is clamped to the array size.
    """
    magnitudes = np.asarray(magnitudes).ravel()
    n = magnitudes.shape[0]
    if k <= 0:
        return float("inf")
    if k >= n:
        return float("-inf")
    # np.partition puts the (n-k)-th smallest at index n-k; everything
    # right of it is >= it, so index n-k holds the k-th largest value.
    return float(np.partition(magnitudes, n - k)[n - k])


def select_topk(magnitudes: np.ndarray, k: int) -> np.ndarray:
    """Exact top-``k`` selection mask (the sort in Algorithm 2).

    Returns a boolean mask with exactly ``min(k, n)`` True entries.
    Ties at the threshold are broken by index order so the budget is
    met exactly, matching a stable sort.
    """
    magnitudes = np.asarray(magnitudes).ravel()
    n = magnitudes.shape[0]
    if k <= 0:
        return np.zeros(n, dtype=bool)
    if k >= n:
        return np.ones(n, dtype=bool)
    threshold = topk_threshold(magnitudes, k)
    mask = magnitudes > threshold
    selected = int(np.count_nonzero(mask))
    if selected < k:
        # Admit just enough threshold-valued entries to hit the budget.
        ties = np.flatnonzero(magnitudes == threshold)
        mask[ties[: k - selected]] = True
    return mask


class ThresholdTracker:
    """Quantile-threshold selection (Section III-B of the paper).

    Maintains a :class:`ParallelQuantileEstimator` targeting the
    quantile that corresponds to the requested sparsity factor.  Each
    iteration, :meth:`select` compares every candidate
    accumulated-gradient magnitude against the current estimate
    ``theta`` and returns the survivors' mask; all observed magnitudes
    are then streamed into the estimator, exactly as the hardware QE
    unit sees the gradients flow from the GLB to DRAM.

    Because the estimate starts tiny (1e-6) and adapts multiplicatively,
    early iterations track more weights than the target — the same
    "extra weights tracked" effect the paper reports (7.5x requested,
    5.2x realized).
    """

    def __init__(
        self,
        sparsity_factor: float,
        rho: float = 1e-3,
        initial: float = 1e-6,
        width: int = 4,
        hysteresis: float = 0.5,
    ) -> None:
        if not 0.0 <= hysteresis <= 1.0:
            raise ValueError(
                f"hysteresis must lie in [0, 1] (got {hysteresis})"
            )
        self.sparsity_factor = float(sparsity_factor)
        self.hysteresis = float(hysteresis)
        q = quantile_for_sparsity(sparsity_factor)
        self._estimator = ParallelQuantileEstimator(
            q, width=width, rho=rho, initial=initial
        )

    @property
    def threshold(self) -> float:
        """Current value threshold ``theta``."""
        return self._estimator.estimate

    @property
    def quantile(self) -> float:
        return self._estimator.q

    @property
    def estimator_cycles(self) -> int:
        """Hardware cycles the QE unit has consumed."""
        return self._estimator.cycles

    def select(
        self,
        magnitudes: np.ndarray,
        tracked: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the survivor mask and fold the stream into the estimate.

        The mask is computed against the threshold *before* this
        iteration's updates, matching the hardware where the QE unit
        lags the datapath by design.

        ``tracked`` is the previous iteration's mask.  Entry and exit
        use different bars, modeling the hardware's keep-until-evicted
        tracked-set storage (Section III-B): an untracked weight enters
        only when its gradient exceeds ``theta``, but a tracked weight
        keeps accumulating until it falls below ``hysteresis * theta``.
        The band between the bars is what tracks *extra* weights and
        drifts the realized sparsity below the request (the paper's
        7.5x -> 5.2x).
        """
        magnitudes = np.asarray(magnitudes).ravel()
        mask = np.zeros(magnitudes.shape[0], dtype=bool)
        # Stream in hardware-sized bursts: each burst is compared
        # against the threshold as of its arrival, so the estimate
        # adapts *during* the pass (per-layer thresholds emerge
        # naturally, the deviation source Figure 7's caption names).
        burst = 256
        for start in range(0, magnitudes.shape[0], burst):
            stop = start + burst
            chunk = magnitudes[start:stop]
            theta = self.threshold
            chunk_mask = chunk > theta
            if tracked is not None:
                chunk_mask |= tracked[start:stop] & (
                    chunk > self.hysteresis * theta
                )
            mask[start:stop] = chunk_mask
            self._estimator.update_many(chunk)
        return mask

    def observe(self, magnitudes: np.ndarray) -> None:
        """Stream magnitudes into the estimator without selecting."""
        self._estimator.update_many(np.asarray(magnitudes).ravel())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ThresholdTracker(sparsity_factor={self.sparsity_factor}, "
            f"theta={self.threshold:.3e})"
        )
