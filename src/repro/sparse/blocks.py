"""Block partitioning of dense weight tensors for the CSB format.

The Procrustes compressed-sparse-block format (Figure 8) packs
non-zero values block by block, where a block corresponds to a
*fixed-size region of the dense weight space*:

* for conv layers, one block per 2-D kernel — the ``(R, S)`` plane of
  a single (output-channel, input-channel) pair, so blocks can be
  rotated 180 degrees while being fetched (backward pass);
* for fc layers, square fragments of the weight matrix, so the matrix
  can be transposed by transposing sub-tensors piecewise.

:class:`BlockGrid` captures that partitioning: how a dense tensor is
carved into a grid of equally-shaped regions, including edge padding
for fc matrices whose dimensions are not multiples of the block size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockGrid", "conv_grid", "fc_grid"]


@dataclass(frozen=True)
class BlockGrid:
    """A partition of a dense tensor into a grid of fixed-size blocks.

    Attributes
    ----------
    dense_shape:
        Shape of the underlying dense tensor.
    grid_shape:
        Number of blocks along each grid axis.
    block_shape:
        Shape of each block region.
    kind:
        ``"conv"`` (grid over (K, C), blocks are kernels) or ``"fc"``
        (grid over matrix tiles, blocks are square fragments).
    """

    dense_shape: tuple[int, ...]
    grid_shape: tuple[int, ...]
    block_shape: tuple[int, ...]
    kind: str

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.grid_shape))

    @property
    def block_size(self) -> int:
        return int(np.prod(self.block_shape))

    def to_blocks(self, dense: np.ndarray) -> np.ndarray:
        """Rearrange a dense tensor into ``(n_blocks, block_size)`` rows.

        fc tensors whose dimensions do not divide the block size are
        zero-padded on the high side; the padding positions are always
        zero and thus never stored by the CSB encoder.
        """
        if tuple(dense.shape) != self.dense_shape:
            raise ValueError(
                f"expected dense shape {self.dense_shape}, got {dense.shape}"
            )
        if self.kind == "conv":
            k, c, r, s = dense.shape
            return dense.reshape(k * c, r * s)
        # fc: pad then tile.
        rows, cols = dense.shape
        br, bc = self.block_shape
        gr, gc = self.grid_shape
        padded = np.zeros((gr * br, gc * bc), dtype=dense.dtype)
        padded[:rows, :cols] = dense
        tiles = padded.reshape(gr, br, gc, bc).transpose(0, 2, 1, 3)
        return tiles.reshape(gr * gc, br * bc)

    def from_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_blocks`."""
        if blocks.shape != (self.n_blocks, self.block_size):
            raise ValueError(
                f"expected blocks shape {(self.n_blocks, self.block_size)}, "
                f"got {blocks.shape}"
            )
        if self.kind == "conv":
            k, c, r, s = self.dense_shape
            return blocks.reshape(k, c, r, s)
        rows, cols = self.dense_shape
        br, bc = self.block_shape
        gr, gc = self.grid_shape
        padded = (
            blocks.reshape(gr, gc, br, bc)
            .transpose(0, 2, 1, 3)
            .reshape(gr * br, gc * bc)
        )
        return padded[:rows, :cols]

    def block_index(self, *coords: int) -> int:
        """Flat block index from grid coordinates."""
        if len(coords) != len(self.grid_shape):
            raise ValueError(
                f"expected {len(self.grid_shape)} coordinates, got {len(coords)}"
            )
        return int(np.ravel_multi_index(coords, self.grid_shape))


def conv_grid(weight_shape: tuple[int, int, int, int]) -> BlockGrid:
    """Kernel-granularity grid for a conv weight ``(K, C, R, S)``.

    The region size follows the layer's kernel dimensions, which is why
    the pointer and mask arrays are decoupled (Section IV-B): each
    layer may use a different mask length.
    """
    k, c, r, s = weight_shape
    return BlockGrid(
        dense_shape=(k, c, r, s),
        grid_shape=(k, c),
        block_shape=(r, s),
        kind="conv",
    )


def fc_grid(
    weight_shape: tuple[int, int], block_size: int = 8
) -> BlockGrid:
    """Square-fragment grid for an fc weight matrix ``(out, in)``."""
    rows, cols = weight_shape
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1 (got {block_size})")
    gr = -(-rows // block_size)
    gc = -(-cols // block_size)
    return BlockGrid(
        dense_shape=(rows, cols),
        grid_shape=(gr, gc),
        block_shape=(block_size, block_size),
        kind="fc",
    )
