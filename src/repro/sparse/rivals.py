"""Inference-accelerator weight formats, for comparison with CSB.

Section II-D argues that the linear run-length encodings used by sparse
*inference* accelerators are tightly coupled to one dataflow and cannot
serve the different weight access orders that arise across the three
training phases.  This module implements the two formats the paper
names so the argument can be made quantitative:

* :class:`EIEMatrix` — the interleaved compressed sparse column (CSC)
  layout of EIE [13].  Non-zeros are stored column by column with
  small relative row offsets (zero-run lengths); streaming a column of
  ``W`` (forward pass) is cheap, but reading a column of ``W**T`` — a
  *row* of ``W`` — requires scanning every column, because row
  positions are only recoverable by walking each column's runs.

* :class:`SCNNFilterBank` — the compressed filter layout of SCNN [36].
  All kernels that share an *input* channel sit adjacently so the
  input-stationary forward dataflow can stream them; grouping by
  *output* channel (the gradient-stationary backward order) requires
  touching the whole bank.

Both formats expose the same cost-accounting interface as
:class:`~repro.sparse.csb.CSBTensor` gains via
:func:`access_costs`, so a single experiment (the format-comparison
bench) can tabulate elements touched per phase for every format.
Costs are counted in *elements touched* — entries the decoder must
read (including padding zeros inserted by EIE's bounded run lengths) —
which is proportional to both latency and memory energy of the access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EIEMatrix",
    "SCNNFilterBank",
    "FormatCosts",
    "access_costs",
    "csb_costs",
]


@dataclass
class EIEMatrix:
    """EIE's interleaved CSC encoding of an fc weight matrix.

    Attributes
    ----------
    shape:
        Dense ``(rows, cols)`` shape.
    col_pointers:
        ``(cols + 1,)`` offsets into the value/offset streams.
    values:
        Packed entries in column-major order.  Entries may include
        *padding zeros*: when a zero run exceeds the representable
        ``2**index_bits - 1``, EIE stores an explicit zero to restart
        the run counter, so ``values`` can be longer than ``nnz``.
    offsets:
        Per-entry zero-run length preceding the entry (the EIE
        4-bit relative row index).
    index_bits:
        Width of the run-length field.
    """

    shape: tuple[int, int]
    col_pointers: np.ndarray
    values: np.ndarray
    offsets: np.ndarray
    index_bits: int = 4

    @classmethod
    def from_dense(cls, dense: np.ndarray, index_bits: int = 4) -> "EIEMatrix":
        """Encode a dense matrix column by column.

        Zero runs longer than ``2**index_bits - 1`` insert explicit
        padding zeros, exactly as EIE does, so very sparse columns pay
        a storage overhead that the bench makes visible.
        """
        if dense.ndim != 2:
            raise ValueError(f"EIE CSC encodes matrices, got {dense.ndim}-D")
        if index_bits < 1:
            raise ValueError(f"index_bits must be >= 1 (got {index_bits})")
        max_run = (1 << index_bits) - 1
        rows, cols = dense.shape
        pointers = np.zeros(cols + 1, dtype=np.int64)
        values: list[float] = []
        offsets: list[int] = []
        for j in range(cols):
            run = 0
            for i in range(rows):
                v = dense[i, j]
                if v == 0.0:
                    run += 1
                    if run > max_run:
                        # Restart the run counter with a padding zero.
                        values.append(0.0)
                        offsets.append(max_run)
                        run = 0
                    continue
                values.append(float(v))
                offsets.append(run)
                run = 0
            pointers[j + 1] = len(values)
        return cls(
            shape=(rows, cols),
            col_pointers=pointers,
            values=np.asarray(values, dtype=np.float64),
            offsets=np.asarray(offsets, dtype=np.int64),
            index_bits=index_bits,
        )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Stored entries, padding zeros included."""
        return int(self.col_pointers[-1])

    @property
    def nnz(self) -> int:
        """True non-zeros (excludes padding)."""
        return int(np.count_nonzero(self.values))

    @property
    def padding_entries(self) -> int:
        return self.n_entries - self.nnz

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows, cols = self.shape
        for j in range(cols):
            i = 0
            lo, hi = self.col_pointers[j], self.col_pointers[j + 1]
            for e in range(lo, hi):
                i += int(self.offsets[e])
                if self.values[e] != 0.0:
                    dense[i, j] = self.values[e]
                i += 1
        return dense

    def storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> dict[str, int]:
        """Bits per component (values + run lengths + column pointers)."""
        return {
            "values": self.n_entries * value_bits,
            "offsets": self.n_entries * self.index_bits,
            "pointers": (self.shape[1] + 1) * pointer_bits,
        }

    def total_storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> int:
        return sum(self.storage_bits(value_bits, pointer_bits).values())

    # ------------------------------------------------------------------
    # access patterns
    # ------------------------------------------------------------------
    def read_column(self, j: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Stream one column (forward-pass order).

        Returns ``(row_indices, values, elements_touched)``; cost is
        the column's entry count — the cheap, dataflow-matched access.
        """
        if not 0 <= j < self.shape[1]:
            raise IndexError(f"column {j} out of range")
        lo, hi = int(self.col_pointers[j]), int(self.col_pointers[j + 1])
        rows = np.empty(hi - lo, dtype=np.int64)
        i = 0
        for out, e in enumerate(range(lo, hi)):
            i += int(self.offsets[e])
            rows[out] = i
            i += 1
        keep = self.values[lo:hi] != 0.0
        return rows[keep], self.values[lo:hi][keep], hi - lo

    def read_row(self, i: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Read one row (a column of ``W**T`` — backward-pass order).

        Row coordinates exist only implicitly as prefix sums of run
        lengths, so *every column must be walked from its start* until
        it reaches row ``i``; the returned cost is the sum of those
        prefixes.  This is the Section II-D failure mode: the access
        that costs ``nnz(column)`` in the forward order costs a large
        fraction of ``n_entries`` in the transposed order.
        """
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range")
        cols: list[int] = []
        vals: list[float] = []
        touched = 0
        for j in range(self.shape[1]):
            lo, hi = int(self.col_pointers[j]), int(self.col_pointers[j + 1])
            r = 0
            for e in range(lo, hi):
                touched += 1
                r += int(self.offsets[e])
                if r == i and self.values[e] != 0.0:
                    cols.append(j)
                    vals.append(float(self.values[e]))
                if r >= i:
                    # Entries are row-sorted within a column; once past
                    # row i nothing below can match, but the decoder
                    # has already touched everything up to here.
                    break
                r += 1
        return (
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
            touched,
        )

    def transpose_reencode_cost(self) -> int:
        """Elements touched to re-encode as CSC of ``W**T``.

        The only way to serve the backward pass at streaming speed is
        to build a second copy in transposed layout: decode everything
        (``n_entries``), scatter to dense scratch, then scan the dense
        space to re-encode (``rows * cols``).
        """
        rows, cols = self.shape
        return self.n_entries + rows * cols


@dataclass
class SCNNFilterBank:
    """SCNN's compressed conv filter layout, grouped by input channel.

    For each input channel ``c``, the kernels of *all* output channels
    are concatenated (in ``k``-major, then row-major kernel order) and
    run-length encoded.  The input-stationary forward dataflow streams
    one input-channel group at a time; the gradient-stationary
    backward order needs all kernels of one *output* channel, which
    are scattered across every group.
    """

    weight_shape: tuple[int, int, int, int]  # (K, C, R, S)
    group_pointers: np.ndarray  # (C + 1,) offsets into values
    values: np.ndarray
    positions: np.ndarray  # flat (k, r, s) position of each value

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SCNNFilterBank":
        if dense.ndim != 4:
            raise ValueError(
                f"SCNN layout encodes (K, C, R, S) tensors, got {dense.ndim}-D"
            )
        k, c, r, s = dense.shape
        pointers = np.zeros(c + 1, dtype=np.int64)
        values: list[float] = []
        positions: list[int] = []
        # Group by input channel: all output channels' kernels adjacent.
        by_input = dense.transpose(1, 0, 2, 3).reshape(c, k * r * s)
        for ci in range(c):
            row = by_input[ci]
            nz = np.nonzero(row)[0]
            values.extend(row[nz].tolist())
            positions.extend(nz.tolist())
            pointers[ci + 1] = len(values)
        return cls(
            weight_shape=(k, c, r, s),
            group_pointers=pointers,
            values=np.asarray(values, dtype=np.float64),
            positions=np.asarray(positions, dtype=np.int64),
        )

    @property
    def nnz(self) -> int:
        return int(self.group_pointers[-1])

    def to_dense(self) -> np.ndarray:
        k, c, r, s = self.weight_shape
        by_input = np.zeros((c, k * r * s), dtype=np.float64)
        for ci in range(c):
            lo, hi = self.group_pointers[ci], self.group_pointers[ci + 1]
            by_input[ci, self.positions[lo:hi]] = self.values[lo:hi]
        return by_input.reshape(c, k, r, s).transpose(1, 0, 2, 3)

    def storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> dict[str, int]:
        k, c, r, s = self.weight_shape
        position_bits = max(1, int(np.ceil(np.log2(max(2, k * r * s)))))
        return {
            "values": self.nnz * value_bits,
            "positions": self.nnz * position_bits,
            "pointers": (c + 1) * pointer_bits,
        }

    def total_storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> int:
        return sum(self.storage_bits(value_bits, pointer_bits).values())

    def read_input_group(self, c: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Stream the group for one input channel (forward order)."""
        if not 0 <= c < self.weight_shape[1]:
            raise IndexError(f"input channel {c} out of range")
        lo, hi = int(self.group_pointers[c]), int(self.group_pointers[c + 1])
        return self.positions[lo:hi], self.values[lo:hi], hi - lo

    def read_output_group(self, k: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Gather all kernels of one output channel (backward order).

        Output channel ``k`` owns positions ``[k*R*S, (k+1)*R*S)``
        within every input-channel group, but because group contents
        are packed by sparsity the decoder must scan each group to
        find them — cost is the full bank, per output channel.
        """
        kk, c, r, s = self.weight_shape
        if not 0 <= k < kk:
            raise IndexError(f"output channel {k} out of range")
        lo_pos, hi_pos = k * r * s, (k + 1) * r * s
        vals: list[float] = []
        pos: list[int] = []
        touched = 0
        for ci in range(c):
            glo, ghi = int(self.group_pointers[ci]), int(self.group_pointers[ci + 1])
            for e in range(glo, ghi):
                touched += 1
                p = int(self.positions[e])
                if lo_pos <= p < hi_pos:
                    pos.append(ci * r * s + (p - lo_pos))
                    vals.append(float(self.values[e]))
                if p >= hi_pos:
                    break
        return (
            np.asarray(pos, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
            touched,
        )


@dataclass
class FormatCosts:
    """Elements touched per training phase, plus storage, per format.

    ``forward``/``backward``/``weight_update`` are totals for streaming
    the whole tensor once in that phase's access order.  The weight
    update phase writes gradients back in the *same* order weights are
    read (the QE unit filters them in flight), so its read cost equals
    the forward cost for every format; the difference across formats
    is whether in-place update is possible at all (``updatable``).
    """

    format_name: str
    forward: int
    backward: int
    weight_update: int
    storage_bits: int
    updatable: bool
    notes: str = ""
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def backward_penalty(self) -> float:
        """Backward cost relative to forward (1.0 = access-order neutral)."""
        return self.backward / self.forward if self.forward else float("inf")


def csb_costs(tensor, value_bits: int = 32) -> FormatCosts:
    """Access costs of a :class:`~repro.sparse.csb.CSBTensor`.

    Every phase streams exactly the packed non-zeros: the backward
    pass reverses block contents in flight (conv) or re-packs blocks
    piecewise (fc), both touching each stored value once.
    """
    nnz = tensor.nnz
    return FormatCosts(
        format_name="CSB",
        forward=nnz,
        backward=nnz,
        weight_update=nnz,
        storage_bits=tensor.total_storage_bits(value_bits),
        updatable=True,
        notes="all phases stream packed values; rotation/transpose in flight",
    )


def _eie_costs(dense: np.ndarray, index_bits: int, value_bits: int) -> FormatCosts:
    mat = EIEMatrix.from_dense(dense, index_bits=index_bits)
    rows, _ = mat.shape
    # Backward: one W**T column per row, each a full-bank scan, capped
    # by the cheaper strategy of a one-off transposed re-encode.
    per_row_total = sum(mat.read_row(i)[2] for i in range(rows))
    reencode = mat.transpose_reencode_cost() + mat.n_entries
    backward = min(per_row_total, reencode)
    strategy = "per-row scans" if per_row_total <= reencode else "transpose re-encode"
    return FormatCosts(
        format_name=f"EIE-CSC/{index_bits}b",
        forward=mat.n_entries,
        backward=backward,
        weight_update=mat.n_entries,
        storage_bits=mat.total_storage_bits(value_bits),
        updatable=False,
        notes=f"backward via {strategy}; updates need full re-encode",
        extras={
            "padding_entries": mat.padding_entries,
            "per_row_total": per_row_total,
            "reencode": reencode,
        },
    )


def _scnn_costs(dense: np.ndarray, value_bits: int) -> FormatCosts:
    bank = SCNNFilterBank.from_dense(dense)
    k = dense.shape[0]
    per_output_total = sum(bank.read_output_group(ki)[2] for ki in range(k))
    kk, c, r, s = bank.weight_shape
    reencode = bank.nnz + kk * c * r * s + bank.nnz
    backward = min(per_output_total, reencode)
    strategy = (
        "per-output scans" if per_output_total <= reencode else "re-encode by output"
    )
    return FormatCosts(
        format_name="SCNN-RLC",
        forward=bank.nnz,
        backward=backward,
        weight_update=bank.nnz,
        storage_bits=bank.total_storage_bits(value_bits),
        updatable=False,
        notes=f"backward via {strategy}; updates need full re-encode",
        extras={"per_output_total": per_output_total, "reencode": reencode},
    )


def access_costs(
    dense: np.ndarray,
    value_bits: int = 32,
    eie_index_bits: int = 4,
    fc_block_size: int = 8,
) -> list[FormatCosts]:
    """Tabulate per-phase access costs of CSB vs. the rival formats.

    ``dense`` is a weight tensor: ``(K, C, R, S)`` conv weights are
    compared as CSB vs. SCNN (and EIE on the flattened matrix view the
    way EIE would store an im2col'd layer); fc matrices as CSB vs. EIE.
    """
    from repro.sparse.csb import CSBTensor

    results = [
        csb_costs(
            CSBTensor.from_dense(dense, fc_block_size=fc_block_size), value_bits
        )
    ]
    if dense.ndim == 4:
        results.append(_scnn_costs(dense, value_bits))
        k = dense.shape[0]
        results.append(
            _eie_costs(dense.reshape(k, -1), eie_index_bits, value_bits)
        )
    elif dense.ndim == 2:
        results.append(_eie_costs(dense, eie_index_bits, value_bits))
    else:
        raise ValueError(f"no rival formats for {dense.ndim}-D tensors")
    return results
