"""Zero-free activation storage for cross-phase reuse (Section IV-A).

During training, each layer's input activations are needed twice: once
immediately (forward pass of the next layer) and once much later (the
weight-update pass, after the whole forward and backward sweeps).
Procrustes therefore keeps activations "uncompressed for immediate
reuse and in a compressed format for long-term reuse" — the same idea
as Gist [21], with the compressed copy exploiting relu-induced zeros.

:class:`CompressedActivations` is that long-term copy: a CSB-style
(mask + packed values) encoding over per-sample channel slabs.  The
mask is all that the weight-update pass needs to *address* iacts, and
the packed values stream in the same order the wu dataflow consumes
them, so decompression is a scatter by mask — no pointer chasing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CompressedActivations", "relu_density"]


def relu_density(acts: np.ndarray) -> float:
    """Fraction of non-zero entries (post-relu activation density)."""
    if acts.size == 0:
        return 0.0
    return float(np.count_nonzero(acts) / acts.size)


@dataclass
class CompressedActivations:
    """A zero-free activation tensor for forward-to-wu reuse.

    Attributes
    ----------
    shape:
        Dense ``(N, C, H, W)`` shape.
    slab_pointers:
        ``(N*C + 1,)`` offsets into ``values``; one slab is one
        sample's channel plane, the granularity at which the weight
        update pass fetches iacts.
    masks:
        ``(N*C, H*W)`` non-zero bitmap.
    values:
        Packed non-zero values in slab order.
    """

    shape: tuple[int, int, int, int]
    slab_pointers: np.ndarray
    masks: np.ndarray
    values: np.ndarray

    @classmethod
    def from_dense(cls, acts: np.ndarray) -> "CompressedActivations":
        if acts.ndim != 4:
            raise ValueError(
                f"activations must be (N, C, H, W), got {acts.ndim}-D"
            )
        n, c, h, w = acts.shape
        slabs = acts.reshape(n * c, h * w)
        masks = slabs != 0.0
        counts = masks.sum(axis=1)
        pointers = np.zeros(n * c + 1, dtype=np.int64)
        np.cumsum(counts, out=pointers[1:])
        return cls(
            shape=(n, c, h, w),
            slab_pointers=pointers,
            masks=masks,
            values=slabs[masks],
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.slab_pointers[-1])

    @property
    def dense_size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def density(self) -> float:
        return self.nnz / self.dense_size if self.dense_size else 0.0

    def slab(self, sample: int, channel: int) -> np.ndarray:
        """Decompress one (sample, channel) plane — the wu fetch unit."""
        n, c, h, w = self.shape
        if not (0 <= sample < n and 0 <= channel < c):
            raise IndexError(f"slab ({sample}, {channel}) out of range")
        index = sample * c + channel
        lo, hi = self.slab_pointers[index], self.slab_pointers[index + 1]
        plane = np.zeros(h * w, dtype=self.values.dtype)
        plane[self.masks[index]] = self.values[lo:hi]
        return plane.reshape(h, w)

    def to_dense(self) -> np.ndarray:
        n, c, h, w = self.shape
        slabs = np.zeros((n * c, h * w), dtype=self.values.dtype)
        slabs[self.masks] = self.values
        return slabs.reshape(n, c, h, w)

    # ------------------------------------------------------------------
    # storage accounting (feeds the footprint model)
    # ------------------------------------------------------------------
    def storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> dict[str, int]:
        n, c, h, w = self.shape
        return {
            "values": self.nnz * value_bits,
            "masks": n * c * h * w,
            "pointers": (n * c + 1) * pointer_bits,
        }

    def total_storage_bits(self, value_bits: int = 32, pointer_bits: int = 32) -> int:
        return sum(self.storage_bits(value_bits, pointer_bits).values())

    def compression_ratio(self, value_bits: int = 32) -> float:
        """Dense bits over compressed bits (>1 when compression wins)."""
        return (
            self.dense_size * value_bits
            / self.total_storage_bits(value_bits)
        )


def storage_bits_at_density(
    dense_count: int,
    density: float,
    value_bits: int = 32,
    pointer_bits: int = 32,
    slab_size: int = 64,
) -> int:
    """Analytic CSB-style activation storage without materializing data.

    Used by the footprint model to sweep whole networks: ``values``
    scale with density, the mask costs one bit per dense position, and
    pointers one word per ``slab_size`` positions.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must lie in [0, 1] (got {density})")
    if dense_count < 0:
        raise ValueError("dense_count must be >= 0")
    values = int(round(dense_count * density)) * value_bits
    masks = dense_count
    pointers = (dense_count // max(1, slab_size) + 1) * pointer_bits
    return values + masks + pointers
