"""Sparse weight representations: CSB (Figure 8) and inference rivals."""

from repro.sparse.activations import (
    CompressedActivations,
    relu_density,
    storage_bits_at_density,
)
from repro.sparse.blocks import BlockGrid, conv_grid, fc_grid
from repro.sparse.csb import CSBTensor
from repro.sparse.rivals import (
    EIEMatrix,
    FormatCosts,
    SCNNFilterBank,
    access_costs,
    csb_costs,
)

__all__ = [
    "CompressedActivations",
    "relu_density",
    "storage_bits_at_density",
    "BlockGrid",
    "conv_grid",
    "fc_grid",
    "CSBTensor",
    "EIEMatrix",
    "SCNNFilterBank",
    "FormatCosts",
    "access_costs",
    "csb_costs",
]
