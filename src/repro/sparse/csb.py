"""Compressed sparse block (CSB) weight representation (Figure 8).

Three decoupled components:

* **weight array** — the non-zero values of every block, packed
  contiguously in block order;
* **pointer array** — indexed by grid coordinates; entry ``b`` gives
  the weight-array offset of block ``b`` (the density of a work tile
  is the difference of adjacent pointers, which is how the load
  balancer sizes tiles without touching the data);
* **mask array** — one bit per dense position of each block,
  identifying where the packed values belong.

Unlike the CSC-style formats of inference accelerators (EIE, SCNN),
this layout supports the *training* access patterns: kernels can be
rotated 180 degrees for the backward pass and fc matrices transposed
piecewise, because every block is a self-contained fixed dense region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.blocks import BlockGrid, conv_grid, fc_grid

__all__ = ["CSBTensor"]


@dataclass
class CSBTensor:
    """A sparse tensor in compressed-sparse-block form."""

    grid: BlockGrid
    pointers: np.ndarray  # (n_blocks + 1,) int64 offsets into values
    masks: np.ndarray  # (n_blocks, block_size) bool
    values: np.ndarray  # (nnz,) packed non-zero values

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, grid: BlockGrid | None = None,
                   fc_block_size: int = 8) -> "CSBTensor":
        """Encode a dense tensor; zeros are dropped.

        The grid defaults to kernel blocks for 4-D tensors and square
        ``fc_block_size`` fragments for matrices.
        """
        if grid is None:
            if dense.ndim == 4:
                grid = conv_grid(dense.shape)
            elif dense.ndim == 2:
                grid = fc_grid(dense.shape, block_size=fc_block_size)
            else:
                raise ValueError(
                    f"no default grid for {dense.ndim}-D tensors"
                )
        blocks = grid.to_blocks(dense)
        masks = blocks != 0.0
        counts = masks.sum(axis=1)
        pointers = np.zeros(grid.n_blocks + 1, dtype=np.int64)
        np.cumsum(counts, out=pointers[1:])
        values = blocks[masks]
        return cls(grid=grid, pointers=pointers, masks=masks, values=values)

    # ------------------------------------------------------------------
    # structural validation (failure injection / corruption checks)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the three arrays are mutually consistent.

        The decoupled pointer/mask/value layout (Section IV-B) admits
        corruption modes a dense tensor cannot have: pointers that run
        backwards, mask popcounts that disagree with pointer deltas,
        or a value array of the wrong length.  Raises ``ValueError``
        describing the first inconsistency found.
        """
        if self.pointers.shape != (self.grid.n_blocks + 1,):
            raise ValueError(
                f"pointer array has shape {self.pointers.shape}, expected "
                f"{(self.grid.n_blocks + 1,)}"
            )
        if self.masks.shape != (self.grid.n_blocks, self.grid.block_size):
            raise ValueError(
                f"mask array has shape {self.masks.shape}, expected "
                f"{(self.grid.n_blocks, self.grid.block_size)}"
            )
        if self.pointers[0] != 0:
            raise ValueError(f"pointer array must start at 0, got {self.pointers[0]}")
        deltas = np.diff(self.pointers)
        if (deltas < 0).any():
            block = int(np.argmax(deltas < 0))
            raise ValueError(f"pointers decrease at block {block}")
        counts = self.masks.sum(axis=1)
        if not np.array_equal(deltas, counts):
            block = int(np.argmax(deltas != counts))
            raise ValueError(
                f"block {block}: mask popcount {counts[block]} != "
                f"pointer delta {deltas[block]}"
            )
        if self.values.shape != (int(self.pointers[-1]),):
            raise ValueError(
                f"value array has {self.values.shape[0]} entries, "
                f"pointers imply {int(self.pointers[-1])}"
            )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.pointers[-1])

    @property
    def dense_size(self) -> int:
        return int(np.prod(self.grid.dense_shape))

    @property
    def density(self) -> float:
        return self.nnz / self.dense_size if self.dense_size else 0.0

    def block_nnz(self) -> np.ndarray:
        """Non-zeros per block, from pointer differences (Section IV-B)."""
        return np.diff(self.pointers)

    def block_values(self, index: int) -> np.ndarray:
        """Packed non-zero values of one block."""
        return self.values[self.pointers[index] : self.pointers[index + 1]]

    def gather_block(self, index: int) -> np.ndarray:
        """Decompress one block to its dense region shape."""
        dense = np.zeros(self.grid.block_size, dtype=self.values.dtype)
        dense[self.masks[index]] = self.block_values(index)
        return dense.reshape(self.grid.block_shape)

    def to_dense(self) -> np.ndarray:
        """Full decompression."""
        blocks = np.zeros(
            (self.grid.n_blocks, self.grid.block_size), dtype=self.values.dtype
        )
        blocks[self.masks] = self.values
        return self.grid.from_blocks(blocks)

    # ------------------------------------------------------------------
    # storage accounting (for the DRAM/GLB traffic model)
    # ------------------------------------------------------------------
    def storage_bits(
        self, value_bits: int = 32, pointer_bits: int = 32
    ) -> dict[str, int]:
        """Bits used by each component of the representation."""
        return {
            "values": self.nnz * value_bits,
            "masks": self.grid.n_blocks * self.grid.block_size,
            "pointers": (self.grid.n_blocks + 1) * pointer_bits,
        }

    def total_storage_bits(
        self, value_bits: int = 32, pointer_bits: int = 32
    ) -> int:
        return sum(self.storage_bits(value_bits, pointer_bits).values())

    def compression_ratio(self, value_bits: int = 32) -> float:
        """Dense bits over CSB bits."""
        dense_bits = self.dense_size * value_bits
        return dense_bits / self.total_storage_bits(value_bits)

    # ------------------------------------------------------------------
    # training-time access patterns (Section IV-B requirements)
    # ------------------------------------------------------------------
    def rotate_180(self) -> "CSBTensor":
        """Rotate every conv kernel block 180 degrees (backward pass).

        Because packed values follow the mask's scan order and a 180
        degree rotation exactly reverses that order, each block's
        values simply reverse in place — no decompression needed, which
        is what lets the hardware rotate blocks on the fly while
        fetching them from the GLB.
        """
        if self.grid.kind != "conv":
            raise ValueError("rotate_180 applies to conv grids only")
        masks = self.masks[:, ::-1].copy()
        values = np.empty_like(self.values)
        for b in range(self.grid.n_blocks):
            lo, hi = self.pointers[b], self.pointers[b + 1]
            values[lo:hi] = self.values[lo:hi][::-1]
        return CSBTensor(
            grid=self.grid,
            pointers=self.pointers.copy(),
            masks=masks,
            values=values,
        )

    def transpose(self) -> "CSBTensor":
        """Transpose an fc matrix piecewise (backward pass for fc).

        The block grid transposes, and every block transposes
        internally; pointer recomputation is a permutation of block
        order, so the weight array is only re-packed, never searched.
        """
        if self.grid.kind != "fc":
            raise ValueError("transpose applies to fc grids only")
        rows, cols = self.grid.dense_shape
        gr, gc = self.grid.grid_shape
        br, bc = self.grid.block_shape
        new_grid = BlockGrid(
            dense_shape=(cols, rows),
            grid_shape=(gc, gr),
            block_shape=(bc, br),
            kind="fc",
        )
        new_masks = np.zeros(
            (new_grid.n_blocks, new_grid.block_size), dtype=bool
        )
        counts = np.zeros(new_grid.n_blocks, dtype=np.int64)
        # First pass: masks and counts.
        for bi in range(gr):
            for bj in range(gc):
                old = self.masks[self.grid.block_index(bi, bj)]
                transposed = old.reshape(br, bc).T.reshape(-1)
                new_index = new_grid.block_index(bj, bi)
                new_masks[new_index] = transposed
                counts[new_index] = transposed.sum()
        pointers = np.zeros(new_grid.n_blocks + 1, dtype=np.int64)
        np.cumsum(counts, out=pointers[1:])
        values = np.empty_like(self.values)
        # Second pass: re-pack values in the transposed scan order.
        for bi in range(gr):
            for bj in range(gc):
                old_index = self.grid.block_index(bi, bj)
                block = self.gather_block(old_index).T
                new_index = new_grid.block_index(bj, bi)
                lo = pointers[new_index]
                packed = block.reshape(-1)[new_masks[new_index]]
                values[lo : lo + packed.size] = packed
        return CSBTensor(
            grid=new_grid, pointers=pointers, masks=new_masks, values=values
        )

    # ------------------------------------------------------------------
    # work-tile density queries (for the load balancer)
    # ------------------------------------------------------------------
    def tile_nnz(self, axis: int, tile: int) -> np.ndarray:
        """Non-zeros per tile of ``tile`` consecutive grid rows/columns.

        ``axis`` selects the grid dimension being tiled.  Used to size
        PE work tiles from pointer arithmetic alone.
        """
        per_block = self.block_nnz().reshape(self.grid.grid_shape)
        if axis < 0 or axis >= per_block.ndim:
            raise ValueError(f"axis {axis} out of range")
        n = per_block.shape[axis]
        n_tiles = -(-n // tile)
        pad = n_tiles * tile - n
        if pad:
            pad_widths = [(0, 0)] * per_block.ndim
            pad_widths[axis] = (0, pad)
            per_block = np.pad(per_block, pad_widths)
        moved = np.moveaxis(per_block, axis, 0)
        moved = moved.reshape(n_tiles, tile, -1).sum(axis=(1, 2))
        return moved
