"""Campaign specifications: one training recipe, fully reproducible.

A :class:`CampaignSpec` pins everything that determines a DropBack
training run on the mini model zoo — model, optimizer mode, schedule
constants, dataset recipe, and seed — the same way a
:class:`~repro.sweep.spec.SweepSpec` pins a grid: the spec alone
rebuilds the run bit for bit.  Its canonical-JSON key material (the
exact mechanism the sweep cache uses) addresses the campaign's
recorded trajectory in the :class:`~repro.campaign.trajectory.TrajectoryStore`,
so re-running a campaign with an identical spec is a cache hit, and
campaigns are shareable across sweep points and explorer candidates
that embed the same recipe.

``CampaignSpec.sweep_spec`` bridges to the sweep engine: it builds a
grid :class:`SweepSpec` over campaign axes (seeds, schedules, models)
whose points evaluate through the registered ``campaign`` evaluator,
so ``repro.sweep`` fans whole training campaigns out exactly like any
other experiment family.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Sequence

from repro.sweep.cache import cache_key
from repro.sweep.spec import SweepSpec, canonical_json

__all__ = ["CAMPAIGN_VERSION", "CampaignSpec"]

#: Version tag folded into every trajectory key; bump when the
#: recording schema or the training semantics change incompatibly.
CAMPAIGN_VERSION = "campaign-v1"

#: Optimizer modes a campaign accepts (mirrors ``train_mini``).
MODES = ("sgd", "dropback", "dropback-decay", "procrustes")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines one mini training campaign.

    Parameters mirror :func:`repro.harness.training_experiments.train_mini`
    plus the synthetic-dataset recipe (``n_classes`` /
    ``samples_per_class`` / ``image_size`` / ``data_seed``), so the
    dataset is part of the key: change the data, get a new trajectory.
    """

    model: str = "vgg-s"
    mode: str = "procrustes"
    epochs: int = 6
    sparsity_factor: float = 5.0
    lr: float = 0.08
    init_decay: float = 0.9
    decay_zero_after: int = 60
    batch_size: int = 16
    seed: int = 0
    n_classes: int = 6
    samples_per_class: int = 60
    image_size: int = 16
    data_seed: int = 7

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES} (got {self.mode!r})"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1 (got {self.epochs})")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 (got {self.batch_size})"
            )
        if self.image_size < 8:
            raise ValueError(
                f"image_size must be >= 8 (got {self.image_size}); the "
                "mini models pool spatial dims three times"
            )
        if self.sparsity_factor <= 1.0:
            raise ValueError(
                f"sparsity_factor must exceed 1 (got {self.sparsity_factor})"
            )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def params(self) -> dict[str, Any]:
        """The spec as a flat JSON-able parameter mapping."""
        return asdict(self)

    def key_material(self) -> dict[str, Any]:
        """Everything that addresses this campaign's trajectory."""
        return {"campaign": CAMPAIGN_VERSION, "params": self.params()}

    def key(self) -> str:
        """Content digest of the campaign (SHA-256 hex)."""
        return cache_key(self.key_material())

    def canonical(self) -> str:
        """Canonical JSON of the key material (stable across runs)."""
        return canonical_json(self.key_material())

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def smoke(cls, seed: int = 0) -> "CampaignSpec":
        """The seconds-long seeded mini campaign CI exercises nightly."""
        return cls(
            model="vgg-s",
            mode="procrustes",
            epochs=3,
            sparsity_factor=5.0,
            batch_size=8,
            seed=seed,
            n_classes=4,
            samples_per_class=24,
            image_size=8,
            decay_zero_after=12,
        )

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`params` output (e.g. sweep points)."""
        return cls(**dict(params))

    def with_(self, **overrides: Any) -> "CampaignSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def sweep_spec(
        self,
        name: str,
        axes: Mapping[str, Sequence[Any]],
        fixed: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> SweepSpec:
        """A grid :class:`SweepSpec` fanning this campaign out.

        Every field of this spec not named as an axis rides along as a
        fixed parameter; ``axes`` vary seeds, schedules, models —
        anything the ``campaign`` evaluator accepts.  Extra ``fixed``
        entries (e.g. a replay ``mapping``) are merged on top.
        """
        base = self.params()
        for axis in axes:
            base.pop(axis, None)
        base.pop("seed", None)  # the sweep point's seed drives training
        base.update(fixed or {})
        return SweepSpec.grid(
            name,
            "campaign",
            dict(axes),
            fixed=base,
            base_seed=kwargs.pop("base_seed", self.seed),
            **kwargs,
        )
