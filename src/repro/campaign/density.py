"""The measured density source: trajectories behind the analytic seam.

:class:`TrajectoryDensitySource` implements the
:class:`repro.workloads.density.DensitySource` protocol over a
recorded :class:`~repro.campaign.trajectory.Trajectory`, so anything
written against the interface — harness experiments, evaluators,
capacity checks — can swap the hand-calibrated analytic arrays for
densities an actual training run produced, per epoch or at the
training endpoint.

:func:`trajectory_source_for` is the convenience entry: give it a
:class:`~repro.campaign.spec.CampaignSpec` (and optionally a store)
and it trains-or-loads the campaign and wraps the result.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec
from repro.campaign.trajectory import Trajectory, TrajectoryStore
from repro.workloads.sparsity import NetworkSparsity

__all__ = ["TrajectoryDensitySource", "trajectory_source_for"]


class TrajectoryDensitySource:
    """Measured, epoch-resolved densities from a training campaign.

    ``profile(epoch)`` returns that epoch's measured profile;
    ``profile()`` (no epoch) returns the **final** epoch — the
    end-of-training sparsity the static experiments care about, which
    is what makes this a drop-in for the analytic source.
    """

    def __init__(self, trajectory: Trajectory) -> None:
        self.trajectory = trajectory

    @property
    def name(self) -> str:
        return self.trajectory.name

    @property
    def n_epochs(self) -> int:
        return self.trajectory.n_epochs

    def profile(self, epoch: int | None = None) -> NetworkSparsity:
        if epoch is None:
            return self.trajectory.final_profile()
        if not 0 <= epoch < self.trajectory.n_epochs:
            raise IndexError(
                f"epoch {epoch} out of range "
                f"[0, {self.trajectory.n_epochs})"
            )
        return self.trajectory.profile(epoch)


def trajectory_source_for(
    spec: CampaignSpec,
    store: TrajectoryStore | None = None,
    config=None,
) -> TrajectoryDensitySource:
    """Train (or load) the campaign for ``spec`` and wrap its trajectory.

    Without an explicit ``store``, the one the active (or given)
    :class:`repro.api.config.RuntimeConfig` names is used when
    configured — its ``campaign_cache_dir``, a ``cache_root`` tier, or
    the layered ``REPRO_CAMPAIGN_CACHE_DIR`` variable — so repeated
    callers across a sweep share one training run.
    """
    from repro.campaign.runner import run_campaign

    store = (
        store if store is not None else TrajectoryStore.from_config(config)
    )
    return TrajectoryDensitySource(run_campaign(spec, store=store).trajectory)
