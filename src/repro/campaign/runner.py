"""Run a training campaign and record its density trajectory.

:func:`run_campaign` closes the loop the analytic profiles only
approximate: it trains a mini-zoo model with the DropBack optimizer
(:mod:`repro.core`) through :class:`repro.nn.trainer.Trainer`, and at
every epoch boundary snapshots what the hardware model needs —
surviving-weight masks per layer (collapsed to per-channel densities
via :func:`~repro.workloads.sparsity.profile_from_masks`) and the
epoch's mean post-ReLU activation densities, mapped onto each layer's
*input* as the weight-update phase sees it.  The result is a
:class:`~repro.campaign.trajectory.Trajectory` keyed by the producing
:class:`~repro.campaign.spec.CampaignSpec`; with a
:class:`~repro.campaign.trajectory.TrajectoryStore` attached, an
identical spec never trains twice.

Layer geometries are **derived from the live network**, not
hand-written: :func:`observe_network` wraps one probe forward pass and
records, for every conv/fc layer in execution order, its input extent
and which ReLU feeds it.  That keeps the trajectory aligned with the
model actually trained, whatever mini architecture the zoo builds.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.campaign.spec import CampaignSpec
from repro.campaign.trajectory import (
    EpochRecord,
    LayerDensityRecord,
    Trajectory,
    TrajectoryStore,
)
from repro.core.dropback import DropbackConfig, DropbackOptimizer
from repro.models.zoo import MINI_MODELS
from repro.nn.data import make_blob_images
from repro.nn.layers import Conv2d, Layer, Linear, ReLU
from repro.nn.model import Network
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.workloads.layer_spec import LayerSpec
from repro.workloads.sparsity import profile_from_masks

__all__ = [
    "CampaignResult",
    "build_optimizer",
    "observe_network",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignResult:
    """One campaign's outcome: the trajectory, and where it came from."""

    spec: CampaignSpec
    trajectory: Trajectory
    cached: bool  # True when served from the TrajectoryStore


def build_optimizer(model: Network, spec: CampaignSpec):
    """The optimizer a campaign mode calls for (mirrors ``train_mini``).

    ``sgd`` is the dense momentum baseline (cooler lr, see
    :func:`repro.harness.training_experiments.train_mini` for the
    rationale); the sparse modes run plain-SGD DropBack with exact or
    quantile selection and optional initial-weight decay.
    """
    if spec.mode == "sgd":
        return SGD(model.parameters(), lr=0.25 * spec.lr, momentum=0.9)
    selection = "quantile" if spec.mode == "procrustes" else "sort"
    decay = 1.0 if spec.mode == "dropback" else spec.init_decay
    config = DropbackConfig(
        sparsity_factor=spec.sparsity_factor,
        lr=spec.lr,
        momentum=0.0,
        selection=selection,
        init_decay=decay,
        init_decay_zero_after=(None if decay == 1.0 else spec.decay_zero_after),
    )
    return DropbackOptimizer(model.parameters(), config)


def observe_network(
    model: Network, sample: np.ndarray
) -> tuple[list[LayerSpec], dict[str, str | None]]:
    """Derive layer specs and the ReLU→layer feed map from one forward.

    Wraps every conv/fc/ReLU ``forward`` for a single probe pass and
    records (a) each conv/fc layer's input extent — which, with its
    static attributes, fully determines its :class:`LayerSpec` — and
    (b) the most recently executed ReLU before each conv/fc, i.e. whose
    output density is that layer's input-activation density.  Returns
    ``(specs_in_execution_order, {layer_name: relu_name_or_None})``.
    """
    shapes: dict[str, tuple[int, ...]] = {}
    order: list[Layer] = []
    wrapped = [
        layer
        for layer in model.all_layers()
        if isinstance(layer, (Conv2d, Linear, ReLU))
    ]
    originals = {}

    def instrument(layer):
        original = layer.forward

        def recorded(x, training=True):
            if layer.name not in shapes:
                shapes[layer.name] = x.shape
                order.append(layer)
            return original(x, training=training)

        return original, recorded

    for layer in wrapped:
        originals[layer], layer.forward = instrument(layer)
    try:
        model.forward(sample, training=False)
    finally:
        for layer, original in originals.items():
            layer.forward = original

    specs: list[LayerSpec] = []
    iact_relu: dict[str, str | None] = {}
    last_relu: str | None = None
    for layer in order:
        if isinstance(layer, ReLU):
            last_relu = layer.name
            continue
        iact_relu[layer.name] = last_relu
        if isinstance(layer, Conv2d):
            shape = shapes[layer.name]
            specs.append(
                LayerSpec(
                    name=layer.name,
                    c=layer.in_channels,
                    k=layer.out_channels,
                    r=layer.kernel,
                    s=layer.kernel,
                    h=int(shape[2]),
                    w=int(shape[3]),
                    stride=layer.stride,
                    padding=layer.padding,
                    groups=layer.groups,
                    kind="conv",
                )
            )
        else:  # Linear
            specs.append(
                LayerSpec(
                    name=layer.name,
                    c=layer.in_features,
                    k=layer.out_features,
                    r=1,
                    s=1,
                    h=1,
                    w=1,
                    kind="fc",
                )
            )
    return specs, iact_relu


class _EpochRecorder:
    """The ``on_epoch_end`` hook: snapshot densities at each boundary."""

    def __init__(
        self,
        spec: CampaignSpec,
        layer_specs: list[LayerSpec],
        iact_relu: dict[str, str | None],
    ) -> None:
        self.spec = spec
        self.layer_specs = layer_specs
        self.iact_relu = iact_relu
        self.records: list[EpochRecord] = []
        self._consumed: dict[str, int] = {}
        self._iterations_seen = 0

    def _epoch_iact(self, trainer: Trainer) -> dict[str, float]:
        """Mean ReLU density over *this* epoch, mapped to layer inputs."""
        epoch_means: dict[str, float] = {}
        for relu, values in trainer.activation_densities.items():
            start = self._consumed.get(relu, 0)
            fresh = values[start:]
            if fresh:
                epoch_means[relu] = float(np.mean(fresh))
            self._consumed[relu] = len(values)
        return {
            layer: epoch_means.get(relu, 1.0) if relu else 1.0
            for layer, relu in self.iact_relu.items()
        }

    def __call__(self, trainer: Trainer, epoch: int) -> None:
        _metrics.inc("campaign.epochs")
        _trace.add_event("campaign.epoch", epoch=epoch)
        optimizer = trainer.optimizer
        if isinstance(optimizer, DropbackOptimizer):
            masks = {
                name.removesuffix(".weight"): mask
                for name, mask in optimizer.masks().items()
            }
            achieved = float(optimizer.achieved_sparsity_factor())
        else:
            masks = {}  # dense baseline: every layer at density 1
            achieved = 1.0
        profile = profile_from_masks(
            self.spec.model,
            self.layer_specs,
            masks,
            iact_densities=self._epoch_iact(trainer),
        )
        history = trainer.history
        iterations = history.iterations - self._iterations_seen
        self._iterations_seen = history.iterations
        self.records.append(
            EpochRecord(
                epoch=epoch,
                iterations=iterations,
                train_loss=float(history.train_loss[-1]),
                train_accuracy=float(history.train_accuracy[-1]),
                val_accuracy=float(history.val_accuracy[-1]),
                achieved_sparsity=achieved,
                layers=tuple(
                    LayerDensityRecord(
                        name=ls.layer.name,
                        weight_density=ls.weight_density,
                        out_channel_density=ls.out_channel_density,
                        in_channel_density=ls.in_channel_density,
                        iact_density=ls.iact_density,
                    )
                    for ls in profile.layers
                ),
            )
        )


def run_campaign(
    spec: CampaignSpec,
    store: TrajectoryStore | None = None,
    force: bool = False,
    config=None,
) -> CampaignResult:
    """Train per ``spec`` (or load) and return the recorded trajectory.

    With a ``store``, the campaign key is checked first and the fresh
    trajectory is persisted after training; ``force=True`` retrains
    even on a hit (and overwrites the stored record).  Passing a
    :class:`repro.api.config.RuntimeConfig` as ``config`` (with no
    explicit ``store``) resolves the store from its campaign cache
    directory — the explicit-threading equivalent of the old
    ``REPRO_CAMPAIGN_CACHE_DIR`` peek.  Training is fully seeded —
    model init, dataset, minibatch order, and sampling all derive from
    the spec — so two runs of one spec produce identical trajectories,
    which is what makes the store sound.
    """
    with _trace.span(
        "campaign.run",
        model=spec.model,
        mode=spec.mode,
        epochs=spec.epochs,
    ) as run_span:
        result = _run_campaign(spec, store, force, config)
        run_span.set_attribute("cached", result.cached)
        if result.cached:
            _metrics.inc("campaign.cache_hits")
        else:
            _metrics.inc("campaign.trained")
        return result


def _run_campaign(
    spec: CampaignSpec,
    store: TrajectoryStore | None,
    force: bool,
    config,
) -> CampaignResult:
    if store is None and config is not None:
        store = TrajectoryStore.from_config(config)
    if store is not None and not force:
        cached = store.get(spec)
        if cached is not None:
            return CampaignResult(spec=spec, trajectory=cached, cached=True)
    train, val = make_blob_images(
        n_classes=spec.n_classes,
        samples_per_class=spec.samples_per_class,
        size=spec.image_size,
        seed=spec.data_seed,
    )
    try:
        builder = MINI_MODELS[spec.model]
    except KeyError:
        raise KeyError(
            f"unknown model {spec.model!r}; choose from {sorted(MINI_MODELS)}"
        ) from None
    kwargs: dict[str, Any] = {"n_classes": train.n_classes, "seed": spec.seed}
    if "image_size" in inspect.signature(builder).parameters:
        # Only the fixed-head builders (VGG's Flatten->Linear) need the
        # spatial extent; the pooled-head minis are size-agnostic.
        kwargs["image_size"] = spec.image_size
    model = builder(**kwargs)
    layer_specs, iact_relu = observe_network(model, train.images[:1])
    optimizer = build_optimizer(model, spec)
    recorder = _EpochRecorder(spec, layer_specs, iact_relu)
    trainer = Trainer(
        model,
        optimizer,
        train,
        val,
        batch_size=spec.batch_size,
        seed=spec.seed,
        on_epoch_end=recorder,
    )
    trainer.run(spec.epochs)
    trajectory = Trajectory(
        name=f"{spec.model}/{spec.mode}",
        model=spec.model,
        mode=spec.mode,
        specs=tuple(layer_specs),
        records=tuple(recorder.records),
        key=spec.key(),
    )
    if store is not None:
        store.put(spec, trajectory)
    return CampaignResult(spec=spec, trajectory=trajectory, cached=False)
