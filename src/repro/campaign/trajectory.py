"""Measured density trajectories and their content-addressed store.

A :class:`Trajectory` is what a training campaign actually measured:
for every epoch, each layer's surviving-weight density, its per-channel
density spread (what drives load imbalance), and the post-ReLU
input-activation density the weight-update phase exploits — plus the
accuracy/sparsity curves the paper's Figures 15/16 plot.  Each epoch
converts back into a :class:`~repro.workloads.sparsity.NetworkSparsity`
profile, so the whole hardware-model stack (``evalcore``, ``simulate``,
sweeps, the explorer) can replay training-time sparsity exactly as it
evolved instead of assuming a static analytic array.

The :class:`TrajectoryStore` persists trajectories under the sweep
engine's content-addressed :class:`~repro.sweep.cache.ResultCache`,
keyed by the producing :class:`~repro.campaign.spec.CampaignSpec`'s
key material.  Identical specs — across processes, sweep points, or
explorer candidates that embed the same training recipe — therefore
share one stored training run; re-running a campaign is a cache hit,
not a re-train.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping, TYPE_CHECKING

import numpy as np

from repro.obs.logs import get_logger, log_event
from repro.sweep.cache import CacheStats, ResultCache
from repro.workloads.layer_spec import LayerSpec
from repro.workloads.sparsity import LayerSparsity, NetworkSparsity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports sweep)
    from repro.campaign.spec import CampaignSpec

_logger = get_logger("repro.campaign.trajectory")

__all__ = [
    "EpochRecord",
    "LayerDensityRecord",
    "Trajectory",
    "TrajectoryStore",
]

#: Floor applied to stored densities so replayed profiles satisfy the
#: ``LayerSparsity`` validity range even when a layer pruned to nothing.
MIN_DENSITY = 1e-4


@dataclass(frozen=True)
class LayerDensityRecord:
    """One layer's measured densities at one epoch boundary."""

    name: str
    weight_density: float
    out_channel_density: np.ndarray
    in_channel_density: np.ndarray
    iact_density: float


@dataclass(frozen=True)
class EpochRecord:
    """Everything measured at the end of one training epoch."""

    epoch: int  # 1-based, matching TrainingHistory
    iterations: int  # optimizer steps taken within this epoch
    train_loss: float
    train_accuracy: float
    val_accuracy: float
    achieved_sparsity: float
    layers: tuple[LayerDensityRecord, ...]


@dataclass(frozen=True)
class Trajectory:
    """A whole campaign's per-epoch density records.

    ``specs`` are the trained network's layer geometries (derived from
    the live model, not hand-written), aligned by name with every
    epoch's ``layers``; ``key`` is the producing campaign's content
    digest (empty for hand-built trajectories).
    """

    name: str
    model: str
    mode: str
    specs: tuple[LayerSpec, ...]
    records: tuple[EpochRecord, ...]
    key: str = ""

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError(f"trajectory {self.name!r} has no epochs")
        spec_names = [s.name for s in self.specs]
        for record in self.records:
            names = [layer.name for layer in record.layers]
            if names != spec_names:
                raise ValueError(
                    f"epoch {record.epoch}: layer records {names} do not "
                    f"match specs {spec_names}"
                )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        return len(self.records)

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.records)

    def val_accuracy_curve(self) -> list[float]:
        return [r.val_accuracy for r in self.records]

    def sparsity_curve(self) -> list[float]:
        return [r.achieved_sparsity for r in self.records]

    def density_curve(self) -> list[float]:
        """Network-level surviving-weight density per epoch."""
        weights = np.array([s.weight_count for s in self.specs], dtype=float)
        out = []
        for record in self.records:
            densities = np.array(
                [layer.weight_density for layer in record.layers]
            )
            out.append(float((weights * densities).sum() / weights.sum()))
        return out

    def profile(self, epoch: int) -> NetworkSparsity:
        """Epoch ``epoch`` (0-based index) as a sparsity profile."""
        record = self.records[epoch]
        layers = tuple(
            LayerSparsity(
                layer=spec,
                weight_density=max(layer.weight_density, MIN_DENSITY),
                out_channel_density=np.clip(
                    np.asarray(layer.out_channel_density, dtype=float),
                    MIN_DENSITY,
                    1.0,
                ),
                in_channel_density=np.clip(
                    np.asarray(layer.in_channel_density, dtype=float),
                    MIN_DENSITY,
                    1.0,
                ),
                iact_density=max(layer.iact_density, MIN_DENSITY),
            )
            for spec, layer in zip(self.specs, record.layers)
        )
        return NetworkSparsity(
            name=f"{self.name}@{record.epoch}", layers=layers
        )

    def final_profile(self) -> NetworkSparsity:
        return self.profile(self.n_epochs - 1)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def constant(
        cls,
        profile: NetworkSparsity,
        epochs: int,
        iterations_per_epoch: int,
        mode: str = "analytic",
    ) -> "Trajectory":
        """A flat trajectory holding one profile at every epoch.

        This is the bridge back to the analytic world: replaying a
        constant trajectory built from an analytic profile must
        reproduce the static ``simulate()`` numbers bit for bit (the
        parity tests pin this), because the profile arrays pass through
        unchanged into the same evaluation core.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1 (got {epochs})")
        layers = tuple(
            LayerDensityRecord(
                name=ls.layer.name,
                weight_density=ls.weight_density,
                out_channel_density=ls.out_channel_density,
                in_channel_density=ls.in_channel_density,
                iact_density=ls.iact_density,
            )
            for ls in profile.layers
        )
        records = tuple(
            EpochRecord(
                epoch=e + 1,
                iterations=iterations_per_epoch,
                train_loss=0.0,
                train_accuracy=0.0,
                val_accuracy=0.0,
                achieved_sparsity=profile.sparsity_factor(),
                layers=layers,
            )
            for e in range(epochs)
        )
        return cls(
            name=profile.name,
            model=profile.name,
            mode=mode,
            specs=tuple(ls.layer for ls in profile.layers),
            records=records,
        )

    # ------------------------------------------------------------------
    # (de)serialization — plain JSON, exact float round-trip
    # ------------------------------------------------------------------
    def to_values(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "model": self.model,
            "mode": self.mode,
            "key": self.key,
            "specs": [asdict(s) for s in self.specs],
            "records": [
                {
                    "epoch": r.epoch,
                    "iterations": r.iterations,
                    "train_loss": r.train_loss,
                    "train_accuracy": r.train_accuracy,
                    "val_accuracy": r.val_accuracy,
                    "achieved_sparsity": r.achieved_sparsity,
                    "layers": [
                        {
                            "name": layer.name,
                            "weight_density": layer.weight_density,
                            "out_channel_density": np.asarray(
                                layer.out_channel_density
                            ).tolist(),
                            "in_channel_density": np.asarray(
                                layer.in_channel_density
                            ).tolist(),
                            "iact_density": layer.iact_density,
                        }
                        for layer in r.layers
                    ],
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_values(cls, values: Mapping[str, Any]) -> "Trajectory":
        specs = tuple(LayerSpec(**s) for s in values["specs"])
        records = tuple(
            EpochRecord(
                epoch=int(r["epoch"]),
                iterations=int(r["iterations"]),
                train_loss=float(r["train_loss"]),
                train_accuracy=float(r["train_accuracy"]),
                val_accuracy=float(r["val_accuracy"]),
                achieved_sparsity=float(r["achieved_sparsity"]),
                layers=tuple(
                    LayerDensityRecord(
                        name=layer["name"],
                        weight_density=float(layer["weight_density"]),
                        out_channel_density=np.asarray(
                            layer["out_channel_density"], dtype=float
                        ),
                        in_channel_density=np.asarray(
                            layer["in_channel_density"], dtype=float
                        ),
                        iact_density=float(layer["iact_density"]),
                    )
                    for layer in r["layers"]
                ),
            )
            for r in values["records"]
        )
        return cls(
            name=str(values["name"]),
            model=str(values["model"]),
            mode=str(values["mode"]),
            specs=specs,
            records=records,
            key=str(values.get("key", "")),
        )


class TrajectoryStore:
    """Content-addressed trajectory persistence (sweep-cache backed).

    Keys are :meth:`CampaignSpec.key_material` — the same canonical-JSON
    + SHA-256 scheme every sweep point uses — so a store directory is
    self-describing, shareable between processes, and safe to grow
    incrementally (atomic writes come from :class:`ResultCache`).
    """

    #: The historical environment knob behind the process-default
    #: store; it layers into :class:`repro.api.config.RuntimeConfig`
    #: via ``RuntimeConfig.from_env`` (this module never reads it).
    ENV_VAR = "REPRO_CAMPAIGN_CACHE_DIR"

    def __init__(self, root: str | os.PathLike) -> None:
        self._cache = ResultCache(root)

    @property
    def root(self) -> Path:
        return self._cache.root

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def get(self, spec: "CampaignSpec") -> Trajectory | None:
        """The stored trajectory for ``spec``, or ``None``.

        Torn or bit-rotted records are quarantined by the underlying
        :class:`ResultCache` checksum check; a record that decodes and
        verifies but fails trajectory validation (a semantic-corruption
        case the byte checksum cannot see, e.g. a store written by an
        incompatible version) is quarantined here the same way — the
        caller re-trains instead of crashing mid-campaign.
        """
        key_material = spec.key_material()
        record = self._cache.get(key_material)
        if record is None:
            return None
        try:
            return Trajectory.from_values(record["values"])
        except (KeyError, TypeError, ValueError):
            # ResultCache._quarantine counts the cache.corrupt metric;
            # this event adds the campaign-level context it can't see.
            self._cache.quarantine(key_material)
            log_event(
                _logger,
                "cache.quarantine",
                tier="trajectory",
                campaign=spec.name,
                reason="semantic validation failed",
            )
            warnings.warn(
                f"quarantined undecodable trajectory record for campaign "
                f"{spec.name!r}; it will be re-trained",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def put(self, spec: "CampaignSpec", trajectory: Trajectory) -> Path:
        return self._cache.put(spec.key_material(), trajectory.to_values())

    def __contains__(self, spec: "CampaignSpec") -> bool:
        return spec.key_material() in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    @classmethod
    def from_config(cls, config=None) -> "TrajectoryStore | None":
        """The store a :class:`~repro.api.config.RuntimeConfig` names.

        ``config`` defaults to the process-active config, whose
        campaign directory may come from an explicit
        ``campaign_cache_dir``, derive from ``cache_root``
        (``<root>/campaign``), or layer in from the historical
        ``REPRO_CAMPAIGN_CACHE_DIR`` variable.  ``None`` when no
        directory is configured.
        """
        from repro.api.config import get_config

        config = config if config is not None else get_config()
        root = config.effective_campaign_cache_dir()
        return cls(root) if root else None

    @classmethod
    def from_env(cls) -> "TrajectoryStore | None":
        """Deprecated alias for :meth:`from_config` (kept so historical
        callers keep working; the active config already layers
        ``REPRO_CAMPAIGN_CACHE_DIR`` in)."""
        return cls.from_config()
