"""Replay a measured trajectory through the accelerator model.

:func:`replay_trajectory` turns a campaign's per-epoch density records
into what the paper's headline claims are actually about: the cost of
the *whole training run* on a given architecture point.  Each epoch's
profile drives one :func:`repro.dataflow.simulator.simulate` call —
the same single-pass evaluation core every figure uses, so latency and
energy agree on the sampled non-zeros, and the layer-level memo makes
adjacent epochs (whose layers differ only in density) share whatever
work they can.  Per-iteration costs are then scaled by the epoch's
recorded iteration count and accumulated into per-epoch curves and
whole-run totals.

A constant trajectory built from an analytic profile replays to
exactly the static ``simulate()`` numbers (pinned by the parity
tests), so the measured path is a strict generalization of the
analytic one, not a parallel implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.campaign.trajectory import Trajectory
from repro.dataflow.simulator import SimulationResult, simulate
from repro.hw.config import ArchConfig
from repro.hw.energy import EnergyTable
from repro.report.export import experiment_record
from repro.workloads.phases import PHASES

__all__ = ["EpochCost", "ReplayResult", "replay_trajectory"]


@dataclass(frozen=True)
class EpochCost:
    """One epoch's accelerator cost under the replayed condition."""

    epoch: int
    iterations: int
    cycles_per_iteration: float
    energy_j_per_iteration: float
    val_accuracy: float
    achieved_sparsity: float

    @property
    def cycles(self) -> float:
        return self.cycles_per_iteration * self.iterations

    @property
    def energy_j(self) -> float:
        return self.energy_j_per_iteration * self.iterations


@dataclass
class ReplayResult:
    """A whole campaign's latency/energy under one architecture point."""

    trajectory: str  # trajectory name (model/mode)
    campaign_key: str
    mapping: str
    arch: str
    n: int
    sparse: bool
    balance: bool
    seed: int
    epochs: list[EpochCost] = field(default_factory=list)

    @property
    def run_cycles(self) -> float:
        """Whole-training-run cycles (the end-to-end headline number)."""
        return sum(e.cycles for e in self.epochs)

    @property
    def run_energy_j(self) -> float:
        return sum(e.energy_j for e in self.epochs)

    @property
    def total_iterations(self) -> int:
        return sum(e.iterations for e in self.epochs)

    def curves(self) -> dict[str, list[float]]:
        """Per-epoch series, ready for plotting/export."""
        return {
            "cycles_per_iteration": [
                e.cycles_per_iteration for e in self.epochs
            ],
            "energy_j_per_iteration": [
                e.energy_j_per_iteration for e in self.epochs
            ],
            "cycles": [e.cycles for e in self.epochs],
            "energy_j": [e.energy_j for e in self.epochs],
            "val_accuracy": [e.val_accuracy for e in self.epochs],
            "achieved_sparsity": [e.achieved_sparsity for e in self.epochs],
        }

    def to_record(self) -> dict[str, Any]:
        """Canonical :func:`experiment_record` payload (deterministic).

        Contains no wall-clock or host-dependent fields, so the record
        hashes identically across re-runs of the same campaign — the
        property the CLI smoke check and nightly CI pin.
        """
        return experiment_record(
            f"campaign-{self.trajectory.replace('/', '-')}-{self.mapping}",
            {
                "trajectory": self.trajectory,
                "campaign_key": self.campaign_key,
                "mapping": self.mapping,
                "arch": self.arch,
                "n": self.n,
                "sparse": self.sparse,
                "balance": self.balance,
                "seed": self.seed,
            },
            {
                "epochs": [e.epoch for e in self.epochs],
                "iterations": [e.iterations for e in self.epochs],
                **self.curves(),
                "run_cycles": self.run_cycles,
                "run_energy_j": self.run_energy_j,
                "total_iterations": self.total_iterations,
            },
            notes=(
                f"{len(self.epochs)}-epoch trajectory replayed on "
                f"{self.arch} / {self.mapping}"
            ),
        )

    def save(self, results_dir) -> None:
        """Persist through :class:`repro.report.ResultsDirectory`."""
        record = self.to_record()
        results_dir.save_record(record)
        curves = self.curves()
        headers = ["epoch", "iterations", *curves]
        rows = [
            [e.epoch, e.iterations, *(curves[k][i] for k in curves)]
            for i, e in enumerate(self.epochs)
        ]
        results_dir.save_table(record["experiment"], "epochs", headers, rows)


def replay_trajectory(
    trajectory: Trajectory,
    mapping: str = "KN",
    arch: ArchConfig | None = None,
    n: int = 16,
    sparse: bool = True,
    balance: bool = True,
    table: EnergyTable | None = None,
    seed: int = 0,
    phases: tuple[str, ...] = PHASES,
    config=None,
) -> ReplayResult:
    """Evaluate every epoch's profile; return curves and run totals.

    ``n`` is the training minibatch the accelerator processes per
    iteration (a campaign's ``batch_size`` for measured trajectories).
    Per-epoch per-iteration numbers come from the same ``simulate()``
    the static experiments call, with the same seed semantics —
    ``config`` (a :class:`repro.api.config.RuntimeConfig`) threads
    through to it unchanged.
    """
    from repro.hw.config import PROCRUSTES_16x16

    arch = arch or PROCRUSTES_16x16
    result = ReplayResult(
        trajectory=trajectory.name,
        campaign_key=trajectory.key,
        mapping=mapping,
        arch=arch.name,
        n=n,
        sparse=sparse,
        balance=balance,
        seed=seed,
    )
    for index, record in enumerate(trajectory.records):
        sim: SimulationResult = simulate(
            trajectory.profile(index),
            mapping,
            arch=arch,
            n=n,
            sparse=sparse,
            balance=balance,
            table=table,
            seed=seed,
            phases=phases,
            config=config,
        )
        result.epochs.append(
            EpochCost(
                epoch=record.epoch,
                iterations=record.iterations,
                cycles_per_iteration=sim.total_cycles,
                energy_j_per_iteration=sim.total_energy_j,
                val_accuracy=record.val_accuracy,
                achieved_sparsity=record.achieved_sparsity,
            )
        )
    return result
