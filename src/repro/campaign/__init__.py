"""Training-in-the-loop campaigns: train, record densities, replay.

The campaign subsystem closes the loop between the training stack
(``repro.nn`` + ``repro.core``) and the hardware model
(``repro.dataflow`` + ``repro.hw``): a :class:`CampaignSpec` names a
DropBack training recipe, :func:`run_campaign` executes it and records
the per-layer per-epoch weight/activation density
:class:`Trajectory` into a content-addressed :class:`TrajectoryStore`,
and :func:`replay_trajectory` walks the trajectory through the
single-pass evaluation core to produce end-to-end training
latency/energy — per-epoch curves and whole-run totals — for any
architecture point.  See ``docs/campaign.md`` for the walkthrough.
"""

from repro.campaign.density import (
    TrajectoryDensitySource,
    trajectory_source_for,
)
from repro.campaign.replay import EpochCost, ReplayResult, replay_trajectory
from repro.campaign.runner import (
    CampaignResult,
    build_optimizer,
    observe_network,
    run_campaign,
)
from repro.campaign.spec import CAMPAIGN_VERSION, CampaignSpec
from repro.campaign.trajectory import (
    EpochRecord,
    LayerDensityRecord,
    Trajectory,
    TrajectoryStore,
)

__all__ = [
    "CAMPAIGN_VERSION",
    "CampaignResult",
    "CampaignSpec",
    "EpochCost",
    "EpochRecord",
    "LayerDensityRecord",
    "ReplayResult",
    "Trajectory",
    "TrajectoryDensitySource",
    "TrajectoryStore",
    "build_optimizer",
    "observe_network",
    "replay_trajectory",
    "run_campaign",
    "trajectory_source_for",
]
